"""Micro-kernel workloads: the controlled building blocks.

These five generators isolate single memory behaviours (streaming, uniform
random, Zipfian hot sets, pointer chasing, stencils) and are used by unit
tests, examples and as components of the SPEC/GAP/DNN/YCSB proxies.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import Trace, TraceGenerator


def _zipf_ranks(rng: np.random.Generator, n: int, count: int, theta: float) -> np.ndarray:
    """Draw ``count`` ranks in [0, n) with a Zipf(theta) popularity skew.

    Uses the standard inverse-CDF approximation over a precomputed
    normalization, the same method YCSB's ScrambledZipfian uses.
    """
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = 1.0 / np.power(ranks, theta)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    draws = rng.random(count)
    return np.searchsorted(cdf, draws).astype(np.int64)


class StreamWorkload(TraceGenerator):
    """Sequential sweep over the footprint (STREAM-like, lbm-like)."""

    def __init__(self, *args, write_fraction: float = 0.3, stride: int = 64, **kwargs):
        super().__init__(*args, **kwargs)
        self.write_fraction = write_fraction
        self.stride = stride

    def generate(self, n_accesses: int) -> Trace:
        lines = self.footprint_bytes // self.stride
        idx = (np.arange(n_accesses, dtype=np.int64) % lines) * self.stride
        writes = self.rng.random(n_accesses) < self.write_fraction
        return Trace(
            name=self.name,
            addrs=idx.astype(np.uint64),
            writes=writes,
            igaps=self.rng.integers(2, 12, n_accesses, dtype=np.uint32),
            cores=(np.arange(n_accesses) % self.cores).astype(np.uint16),
            footprint_bytes=self.footprint_bytes,
            default_profile="medium",
        )


class RandomWorkload(TraceGenerator):
    """Uniform random 64 B accesses: the locality worst case."""

    def __init__(self, *args, write_fraction: float = 0.2, **kwargs):
        super().__init__(*args, **kwargs)
        self.write_fraction = write_fraction

    def generate(self, n_accesses: int) -> Trace:
        lines = self.footprint_bytes // 64
        idx = self.rng.integers(0, lines, n_accesses, dtype=np.int64) * 64
        writes = self.rng.random(n_accesses) < self.write_fraction
        return Trace(
            name=self.name,
            addrs=idx.astype(np.uint64),
            writes=writes,
            igaps=self.rng.integers(5, 30, n_accesses, dtype=np.uint32),
            cores=self.rng.integers(0, self.cores, n_accesses).astype(np.uint16),
            footprint_bytes=self.footprint_bytes,
            default_profile="medium",
        )


def block_footprint(
    block: int, lines_per_block: int, coverage: float, seed: int
) -> np.ndarray:
    """The *persistent* hot-line footprint of a block.

    Real programs touch a stable subset of each page across its residency
    generations — the premise of footprint caches and of Baryon's layout-
    stabilization insight. We derive a contiguous (wrapping) run of
    ``coverage * lines_per_block`` lines from a per-block hash, so the
    same block always exposes the same footprint.
    """
    h = (block * 0x9E3779B97F4A7C15 + seed * 0xBF58476D1CE4E5B9) & ((1 << 64) - 1)
    h ^= h >> 31
    start = h % lines_per_block
    length = max(1, int(round(lines_per_block * coverage)))
    # Mild per-block size variation (+/- 25%).
    length = max(1, min(lines_per_block, length + (h >> 8) % 3 - 1))
    return (start + np.arange(length)) % lines_per_block


class _Episode:
    """One in-flight block episode: a walk over the block's footprint."""

    __slots__ = ("block", "footprint", "pos", "remaining")

    def __init__(self, block: int, footprint: np.ndarray, length: int, offset: int):
        self.block = block
        self.footprint = footprint
        self.pos = offset
        self.remaining = length

    def next_line(self) -> int:
        line = int(self.footprint[self.pos % len(self.footprint)])
        self.pos += 1
        self.remaining -= 1
        return line


class EpisodeMixin:
    """Shared episode-interleaving machinery for hot-block generators.

    Maintains ``active`` concurrent episodes (mimicking the interleaved
    streams of 16 cores); each step advances a random episode one access.
    Episode length exceeds the footprint size so lines repeat — the
    within-residency reuse that makes caching worthwhile.

    Popularity is drawn at *super-block* (16 kB) granularity and each
    episode touches the persistent footprints of several blocks of that
    super-block: real hot regions (heap arenas, array tiles) are larger
    than one 2 kB block, which is exactly the spatial structure that lets
    sub-blocked designs share one physical block across neighbours
    (Baryon's Rule 1, Unison's page footprints).
    """

    def _episode_addrs(
        self,
        n_accesses: int,
        blocks: int,
        theta: float,
        coverage: float,
        active: int = 24,
        revisit: float = 1.75,
    ) -> np.ndarray:
        rng = self.rng
        g = self.geometry
        lines_per_block = g.block_size // 64
        blocks_per_super = g.super_block_blocks
        supers = max(1, blocks // blocks_per_super)
        perm_stride = 2654435761 % supers or 1
        pool = _zipf_ranks(rng, supers, max(1024, n_accesses // 8), theta)
        pool_pos = 0

        def new_episode() -> _Episode:
            nonlocal pool_pos, pool
            if pool_pos >= len(pool):
                pool = _zipf_ranks(rng, supers, len(pool), theta)
                pool_pos = 0
            super_id = (int(pool[pool_pos]) * perm_stride) % supers
            pool_pos += 1
            # A stable hot subset of the super-block's blocks (2-5 of 8),
            # derived from the super id so residency generations repeat.
            h = (super_id * 0x9E3779B97F4A7C15 + self.seed) & ((1 << 64) - 1)
            n_blocks = 2 + (h >> 17) % 4
            base = super_id * blocks_per_super
            hot_blocks = sorted(
                {base + ((h >> (5 * i)) % blocks_per_super) for i in range(n_blocks)}
            )
            # Concatenate the blocks' line footprints into one walk.
            walk = []
            for block in hot_blocks:
                footprint = block_footprint(
                    block, lines_per_block, coverage, self.seed
                )
                walk.extend(block * lines_per_block + line for line in footprint)
            walk = np.asarray(walk, dtype=np.int64)
            length = max(2, int(rng.integers(1, int(len(walk) * revisit * 2))))
            return _Episode(0, walk, length, int(rng.integers(0, len(walk))))

        episodes = [new_episode() for _ in range(active)]
        addrs = np.empty(n_accesses, dtype=np.uint64)
        for i in range(n_accesses):
            e = episodes[int(rng.integers(0, active))]
            addrs[i] = e.next_line() * 64
            if e.remaining <= 0:
                episodes[episodes.index(e)] = new_episode()
        return addrs


class ZipfWorkload(EpisodeMixin, TraceGenerator):
    """Zipf-skewed block popularity with episodic footprint locality."""

    def __init__(
        self,
        *args,
        write_fraction: float = 0.25,
        theta: float = 0.9,
        coverage: float = 0.45,
        active: int = 24,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        self.write_fraction = write_fraction
        self.theta = theta
        self.coverage = coverage
        self.active = active

    def generate(self, n_accesses: int) -> Trace:
        blocks = max(1, self.footprint_bytes // self.geometry.block_size)
        addrs = self._episode_addrs(
            n_accesses, blocks, self.theta, self.coverage, self.active
        )
        writes = self.rng.random(n_accesses) < self.write_fraction
        return Trace(
            name=self.name,
            addrs=addrs,
            writes=writes,
            igaps=self.rng.integers(3, 20, n_accesses, dtype=np.uint32),
            cores=self.rng.integers(0, self.cores, n_accesses).astype(np.uint16),
            footprint_bytes=self.footprint_bytes,
            default_profile="medium",
        )


class PointerChaseWorkload(TraceGenerator):
    """Linked-list traversal: dependent random reads (mcf-like)."""

    def __init__(self, *args, node_bytes: int = 64, locality: float = 0.0, **kwargs):
        super().__init__(*args, **kwargs)
        self.node_bytes = node_bytes
        self.locality = locality

    def generate(self, n_accesses: int) -> Trace:
        nodes = max(2, self.footprint_bytes // self.node_bytes)
        # A random permutation cycle visits every node before repeating.
        order = self.rng.permutation(nodes)
        addrs = np.empty(n_accesses, dtype=np.uint64)
        pos = 0
        for i in range(n_accesses):
            node = int(order[pos % nodes])
            if self.locality and self.rng.random() < self.locality:
                # A short local detour: neighbouring node access.
                node = min(nodes - 1, node + int(self.rng.integers(1, 4)))
            addrs[i] = self._line(node * self.node_bytes)
            pos += 1
        writes = self.rng.random(n_accesses) < 0.1
        return Trace(
            name=self.name,
            addrs=addrs,
            writes=writes,
            igaps=self.rng.integers(8, 40, n_accesses, dtype=np.uint32),
            cores=self.rng.integers(0, self.cores, n_accesses).astype(np.uint16),
            footprint_bytes=self.footprint_bytes,
            default_profile="medium",
        )


class StencilWorkload(TraceGenerator):
    """2D 5-point stencil sweep: streaming with near reuse (lbm/fotonik)."""

    def __init__(self, *args, row_bytes: int = 1 << 16, write_fraction: float = 0.5, **kwargs):
        super().__init__(*args, **kwargs)
        self.row_bytes = row_bytes
        self.write_fraction = write_fraction

    def generate(self, n_accesses: int) -> Trace:
        rows = max(3, self.footprint_bytes // self.row_bytes)
        cols = self.row_bytes // 64
        addrs = []
        writes = []
        i = 0
        r, c = 1, 0
        while i < n_accesses:
            center = (r * cols + c) * 64
            for off in (0, -cols * 64, cols * 64, -64, 64):
                addr = center + off
                if 0 <= addr < self.footprint_bytes:
                    addrs.append(addr)
                    writes.append(False)
                    i += 1
            addrs.append(center)
            writes.append(True)
            i += 1
            c += 1
            if c >= cols:
                c = 0
                r = r + 1 if r + 1 < rows - 1 else 1
        n = len(addrs)
        return Trace(
            name=self.name,
            addrs=np.asarray(addrs, dtype=np.uint64),
            writes=np.asarray(writes, dtype=bool),
            igaps=self.rng.integers(1, 8, n, dtype=np.uint32),
            cores=(np.arange(n) % self.cores).astype(np.uint16),
            footprint_bytes=self.footprint_bytes,
            default_profile="medium",
        )
