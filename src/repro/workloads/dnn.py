"""Neural-network inference proxies (OneDNN resnet50 / resnext50).

Inference sweeps each layer's weights sequentially (read-only, reused
across batches) and streams activations (read the input tensor, write the
output tensor, ping-pong buffers). The memory system therefore sees:

* large sequential read streams with strong cross-batch reuse (weights);
* medium streams with producer-consumer reuse (activations);
* ReLU outputs carry many zeros/small values (compressible; we tag
  activation regions ``zero_heavy``), while fp32 weights compress less.

resnext50 differs from resnet50 by more, smaller layers (grouped
convolutions) — modelled as more layers with smaller weight tensors.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.workloads.base import Trace, TraceGenerator

MODELS = {
    # (number of layers, weight fraction of footprint)
    "resnet50": (16, 0.6),
    "resnext50": (32, 0.55),
}


class DnnInferenceWorkload(TraceGenerator):
    """Layer-by-layer inference over synthetic tensor address maps."""

    def __init__(self, model: str, footprint_bytes: int, seed: int = 1, **kwargs):
        if model not in MODELS:
            raise ConfigurationError(f"model must be one of {sorted(MODELS)}")
        super().__init__(model, footprint_bytes, seed, **kwargs)
        self.model = model
        self.n_layers, weight_fraction = MODELS[model]
        self.weight_bytes = int(footprint_bytes * weight_fraction)
        self.act_bytes = footprint_bytes - self.weight_bytes

    def _layers(self) -> List[Tuple[int, int]]:
        """(weight_base, weight_size) per layer, geometric size taper."""
        sizes = np.geomspace(4.0, 1.0, self.n_layers)
        sizes = sizes / sizes.sum() * self.weight_bytes
        out = []
        base = 0
        for s in sizes:
            size = max(4096, int(s) & ~63)
            out.append((base, size))
            base += size
        return out

    def generate(self, n_accesses: int) -> Trace:
        rng = self.rng
        layers = self._layers()
        act_base = self.weight_bytes
        act_half = self.act_bytes // 2
        addrs = []
        writes = []
        layer_idx = 0
        while len(addrs) < n_accesses:
            wbase, wsize = layers[layer_idx % len(layers)]
            ping = (layer_idx % 2) * act_half
            pong = ((layer_idx + 1) % 2) * act_half
            # One tile of the layer: weights + input acts read, output
            # written. Activation tensors are consumed in im2col rows, so
            # reads/writes walk short sequential runs, not isolated lines.
            tile = 64
            wpos = int(rng.integers(0, max(1, wsize // 64))) * 64
            apos_in = int(rng.integers(0, max(1, act_half // 64))) * 64
            apos_out = int(rng.integers(0, max(1, act_half // 64))) * 64
            for t in range(tile):
                if len(addrs) >= n_accesses:
                    break
                addrs.append(self._line(wbase + (wpos + t * 64) % wsize))
                writes.append(False)
                if t % 2 == 0 and len(addrs) < n_accesses:
                    addrs.append(
                        self._line(act_base + ping + (apos_in + (t // 2) * 64) % act_half)
                    )
                    writes.append(False)
                if t % 4 == 0 and len(addrs) < n_accesses:
                    addrs.append(
                        self._line(act_base + pong + (apos_out + (t // 4) * 64) % act_half)
                    )
                    writes.append(True)
            layer_idx += 1
        n = len(addrs)
        trace = Trace(
            name=self.name,
            addrs=np.asarray(addrs, dtype=np.uint64),
            writes=np.asarray(writes, dtype=bool),
            igaps=rng.integers(1, 8, n, dtype=np.uint32),
            cores=(np.arange(n) % self.cores).astype(np.uint16),
            footprint_bytes=self.footprint_bytes,
            default_profile="low",
        )
        g = self.geometry
        weight_blocks = self.weight_bytes // g.block_size
        total_blocks = self.footprint_bytes // g.block_size
        trace.regions.append((0, weight_blocks, "low"))
        trace.regions.append((weight_blocks + 1, total_blocks, "zero_heavy"))
        return trace
