"""memcached + YCSB proxies (workloads A and B).

The paper loads 30 million 1 kB records (30 GB) and runs 30 million
queries: YCSB-A is 50%/50% read/update, YCSB-B 95%/5%, both with the
standard Zipfian (theta = 0.99) key popularity. A memcached GET walks the
hash index (one random bucket line) and then reads the value's cachelines
sequentially; a SET rewrites them. Values are ASCII-ish payloads that
compress well; the index region is pointer-dense and compresses less.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigurationError
from repro.workloads.base import Trace, TraceGenerator
from repro.workloads.synthetic import _zipf_ranks

WORKLOAD_WRITE_FRACTION = {"A": 0.5, "B": 0.05, "C": 0.0}


class YcsbWorkload(TraceGenerator):
    """Zipfian key-value store access with 1 kB records."""

    RECORD_BYTES = 1024
    #: A GET returns the whole 1 kB value and a SET rewrites it, so a
    #: query touches the record's full 16 cachelines sequentially.
    LINES_PER_READ = 16
    LINES_PER_UPDATE = 16

    def __init__(self, workload: str, footprint_bytes: int, seed: int = 1, **kwargs):
        workload = workload.upper()
        if workload not in WORKLOAD_WRITE_FRACTION:
            raise ConfigurationError("YCSB workload must be 'A', 'B' or 'C'")
        super().__init__(f"YCSB-{workload}", footprint_bytes, seed, **kwargs)
        self.workload = workload
        # 1/16 of the footprint is the hash index, the rest are records.
        self.index_bytes = footprint_bytes // 16
        self.value_bytes = footprint_bytes - self.index_bytes
        self.records = max(1, self.value_bytes // self.RECORD_BYTES)

    def generate(self, n_accesses: int) -> Trace:
        rng = self.rng
        write_fraction = WORKLOAD_WRITE_FRACTION[self.workload]
        lines_per_query = 1 + self.LINES_PER_READ
        n_queries = max(1, n_accesses // lines_per_query)
        ranks = _zipf_ranks(rng, self.records, n_queries, 0.99)
        perm_stride = 2654435761 % self.records or 1  # Fibonacci-hash scramble
        addrs = []
        writes = []
        value_base = self.index_bytes
        for q in range(n_queries):
            record = (int(ranks[q]) * perm_stride) % self.records
            is_update = rng.random() < write_fraction
            # Hash-index probe: one line in the index region.
            bucket = (record * 2654435761) % max(1, self.index_bytes // 64)
            addrs.append(bucket * 64)
            writes.append(False)
            record_base = value_base + record * self.RECORD_BYTES
            n_lines = self.LINES_PER_UPDATE if is_update else self.LINES_PER_READ
            start = int(rng.integers(0, self.RECORD_BYTES // 64 - n_lines + 1))
            for j in range(n_lines):
                addrs.append(record_base + (start + j) * 64)
                writes.append(is_update)
        n = len(addrs)
        trace = Trace(
            name=self.name,
            addrs=np.asarray(addrs, dtype=np.uint64),
            writes=np.asarray(writes, dtype=bool),
            igaps=rng.integers(4, 20, n, dtype=np.uint32),
            cores=rng.integers(0, self.cores, n).astype(np.uint16),
            footprint_bytes=self.footprint_bytes,
            default_profile="medium",
        )
        g = self.geometry
        index_blocks = self.index_bytes // g.block_size
        total_blocks = self.footprint_bytes // g.block_size
        trace.regions.append((0, index_blocks, "low"))
        trace.regions.append((index_blocks + 1, total_blocks, "high"))
        return trace
