"""The workload registry and consistent system scaling.

Python cannot cycle-simulate 5-billion-instruction runs over a 4 GB fast
memory, so every experiment runs at a *scaled* configuration: all
capacities (fast/slow memory, stage area, SRAM caches) shrink by the same
factor while latencies, bandwidth ratios, block/sub-block geometry and the
workloads' footprint-to-fast-memory ratios are preserved. This keeps every
dimensionless quantity the figures depend on (footprint pressure, stage
coverage, hit rates, bloat) faithful to the paper. The default scale of
1/256 gives a 16 MB fast memory and finishes a 14-workload sweep in
minutes.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from repro.common.config import (
    BaryonConfig,
    CacheGeometry,
    Geometry,
    HierarchyConfig,
    HybridLayout,
    SimulationConfig,
    StageConfig,
)
from repro.common.errors import ConfigurationError
from repro.workloads.base import Trace, WorkloadSpec
from repro.workloads.dnn import DnnInferenceWorkload
from repro.workloads.gap import GraphWorkload
from repro.workloads.spec import SpecProxyWorkload
from repro.workloads.ycsb import YcsbWorkload

GB = 1 << 30

#: The paper's workload suite: footprint factors follow the reported
#: footprints (5.8-34.6 GB against 4 GB of fast memory).
WORKLOADS: Dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in [
        WorkloadSpec("505.mcf_r", "spec", "SPEC mcf: pointer-chasing graph solver", 2.4, 0.15, "medium"),
        WorkloadSpec("519.lbm_r", "spec", "SPEC lbm: write-heavy fluid stencil", 1.6, 0.48, "incompressible"),
        WorkloadSpec("520.omnetpp_r", "spec", "SPEC omnetpp: event-queue simulator", 1.7, 0.35, "medium"),
        WorkloadSpec("549.fotonik3d_r", "spec", "SPEC fotonik3d: EM solver, CF 2.42", 3.3, 0.30, "high"),
        WorkloadSpec("557.xz_r", "spec", "SPEC xz: low spatial locality", 1.5, 0.25, "low"),
        WorkloadSpec("503.bwaves_r", "spec", "SPEC bwaves: compressible blocked solver", 2.8, 0.25, "high"),
        WorkloadSpec("554.roms_r", "spec", "SPEC roms: ocean-model stencils", 2.6, 0.35, "medium"),
        WorkloadSpec("pr.twitter", "gap", "GAP PageRank on twitter (hub-skewed)", 8.0, 0.10, "medium"),
        WorkloadSpec("pr.web", "gap", "GAP PageRank on web-sk (community-local)", 6.0, 0.10, "medium"),
        WorkloadSpec("cc.twitter", "gap", "GAP connected components on twitter", 8.0, 0.35, "medium"),
        WorkloadSpec("cc.web", "gap", "GAP connected components on web-sk", 6.0, 0.35, "medium"),
        WorkloadSpec("resnet50", "dnn", "OneDNN resnet50 inference, batch 64", 3.7, 0.20, "low"),
        WorkloadSpec("resnext50", "dnn", "OneDNN resnext50 inference, batch 64", 4.6, 0.20, "low"),
        WorkloadSpec("YCSB-A", "ycsb", "memcached, 50/50 read/update, Zipf .99", 7.5, 0.50, "high"),
        WorkloadSpec("YCSB-B", "ycsb", "memcached, 95/5 read/update, Zipf .99", 7.5, 0.05, "high"),
        WorkloadSpec("YCSB-C", "ycsb", "memcached, read-only, Zipf .99", 7.5, 0.0, "high"),
    ]
}

#: The representative per-domain subset used by the analysis figures
#: (Fig. 11-13 use one workload per domain plus the geometric mean).
REPRESENTATIVE = ["505.mcf_r", "520.omnetpp_r", "pr.twitter", "resnet50", "YCSB-A"]

DEFAULT_SCALE = 256


def scaled_system(
    scale: int = DEFAULT_SCALE,
    **baryon_overrides,
) -> Tuple[BaryonConfig, SimulationConfig]:
    """Build a (BaryonConfig, SimulationConfig) pair scaled by 1/scale.

    Everything with a capacity shrinks together; everything with a latency
    or a ratio stays at the Table I value.
    """
    if scale < 1:
        raise ConfigurationError("scale must be >= 1")
    base = BaryonConfig()
    layout = HybridLayout(
        fast_capacity=max(1 << 20, base.layout.fast_capacity // scale),
        slow_capacity=max(8 << 20, base.layout.slow_capacity // scale),
        associativity=base.layout.associativity,
    )
    stage = StageConfig(
        size_bytes=max(128 * 1024, base.stage.size_bytes // scale),
        ways=base.stage.ways,
        # The aging window is a *time* window: at 1/scale capacity each
        # stage set sees 1/scale of the paper's per-set access count, so
        # the 10000-access period must shrink with it or the MissCnt
        # counters never age and the commit policy degenerates.
        aging_period_accesses=max(64, base.stage.aging_period_accesses * 8 // scale),
    )
    baryon = dataclasses.replace(base, layout=layout, stage=stage, **baryon_overrides)

    hier = HierarchyConfig(
        cores=4,
        l1d=CacheGeometry("L1D", max(8 << 10, (64 << 10) // min(scale, 8)), 8, latency_cycles=4),
        l2=CacheGeometry("L2", max(32 << 10, (1 << 20) // min(scale, 16)), 8, latency_cycles=9),
        llc=CacheGeometry("LLC", max(128 << 10, (16 << 20) // scale), 16, latency_cycles=38),
    )
    sim = SimulationConfig(hierarchy=hier)
    return baryon, sim


def build_workload(
    name: str,
    fast_capacity: int,
    n_accesses: int = 200_000,
    seed: int = 1,
    geometry: Optional[Geometry] = None,
) -> Trace:
    """Generate the named workload's trace, sized against ``fast_capacity``."""
    try:
        spec = WORKLOADS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown workload {name!r}; choose from {sorted(WORKLOADS)}"
        ) from None
    footprint = int(fast_capacity * spec.footprint_factor)
    kwargs = dict(seed=seed)
    if geometry is not None:
        kwargs["geometry"] = geometry
    if spec.generator == "spec":
        gen = SpecProxyWorkload(spec.name, footprint, **kwargs)
    elif spec.generator == "gap":
        algorithm, graph_short = spec.name.split(".")
        graph = "twitter" if graph_short.startswith("twi") else "web"
        gen = GraphWorkload(algorithm, graph, footprint, **kwargs)
    elif spec.generator == "dnn":
        gen = DnnInferenceWorkload(spec.name, footprint, **kwargs)
    elif spec.generator == "ycsb":
        gen = YcsbWorkload(spec.name.split("-")[1], footprint, **kwargs)
    else:  # pragma: no cover - registry is static
        raise ConfigurationError(f"unknown generator {spec.generator}")
    return gen.generate(n_accesses)
