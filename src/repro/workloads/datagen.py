"""Real-content data generation and the content-backed compressibility oracle.

For validation and examples we can back the controller with *actual bytes*
instead of the statistical oracle: :class:`ContentStore` lazily materializes
block contents with controllable value patterns (zero runs, small-delta
integers, pointers, random), and :class:`ContentBackedCompressibility`
answers the controller's oracle interface by really running FPC/BDI over
those bytes. This closes the loop between the synthetic profiles and the
real algorithms — the calibration test asserts the two agree on average CF.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.common.config import Geometry
from repro.compression.engine import CompressionEngine


class ContentStore:
    """Lazily generated, mutable block contents.

    ``pattern`` picks the value distribution:

    * ``"zeros"`` — all-zero blocks;
    * ``"small_ints"`` — 32-bit integers near zero (FPC-friendly);
    * ``"deltas"`` — 64-bit values around a common base (BDI-friendly);
    * ``"text"`` — ASCII-range bytes (moderately compressible);
    * ``"random"`` — incompressible noise.

    Contents are deterministic per (block, pattern, seed) and writes
    mutate real bytes, so recompression outcomes are genuine.
    """

    PATTERNS = ("zeros", "small_ints", "deltas", "text", "random")

    def __init__(
        self,
        pattern: str = "deltas",
        geometry: Optional[Geometry] = None,
        seed: int = 1,
    ) -> None:
        if pattern not in self.PATTERNS:
            raise ValueError(f"pattern must be one of {self.PATTERNS}")
        self.pattern = pattern
        self.geometry = geometry or Geometry()
        self.seed = seed
        self._blocks: Dict[int, bytearray] = {}
        self._pattern_overrides: Dict[int, str] = {}

    def set_region_pattern(self, first_block: int, last_block: int, pattern: str) -> None:
        if pattern not in self.PATTERNS:
            raise ValueError(f"pattern must be one of {self.PATTERNS}")
        for block in range(first_block, last_block + 1):
            self._pattern_overrides[block] = pattern

    def block(self, block_id: int) -> bytearray:
        data = self._blocks.get(block_id)
        if data is None:
            data = self._materialize(block_id)
            self._blocks[block_id] = data
        return data

    def _materialize(self, block_id: int) -> bytearray:
        size = self.geometry.block_size
        pattern = self._pattern_overrides.get(block_id, self.pattern)
        rng = np.random.default_rng((self.seed << 32) ^ block_id)
        if pattern == "zeros":
            return bytearray(size)
        if pattern == "small_ints":
            words = rng.integers(-40, 40, size // 4, dtype=np.int32)
            return bytearray(words.astype(">i4").tobytes())
        if pattern == "deltas":
            base = int(rng.integers(1 << 40, 1 << 44))
            values = base + rng.integers(-100, 100, size // 8, dtype=np.int64)
            return bytearray(values.astype(">i8").tobytes())
        if pattern == "text":
            return bytearray(rng.integers(32, 110, size, dtype=np.uint8).tobytes())
        return bytearray(rng.integers(0, 256, size, dtype=np.uint8).tobytes())

    def write(self, block_id: int, offset: int, payload: bytes) -> None:
        """Mutate real content (used to exercise write overflows)."""
        data = self.block(block_id)
        data[offset : offset + len(payload)] = payload

    def scramble_line(self, block_id: int, offset: int, rng_seed: int = 0) -> None:
        """Overwrite one cacheline with noise — a worst-case write."""
        rng = np.random.default_rng(rng_seed ^ block_id ^ offset)
        line = self.geometry.cacheline_size
        self.write(block_id, offset, rng.integers(0, 256, line, dtype=np.uint8).tobytes())


class ContentBackedCompressibility:
    """The controller's oracle interface, answered by real FPC/BDI runs.

    Write handling: ``note_write`` scrambles part of the written sub-block
    with probability ``write_noise`` (modelling value changes that hurt
    compressibility) and always reports content change so the controller
    re-checks fit against the *actual* new bytes.
    """

    def __init__(
        self,
        store: Optional[ContentStore] = None,
        engine: Optional[CompressionEngine] = None,
        write_noise: float = 0.05,
        seed: int = 1,
    ) -> None:
        self.store = store or ContentStore()
        self.engine = engine or CompressionEngine(geometry=self.store.geometry)
        self.write_noise = write_noise
        self._rng = np.random.default_rng(seed)
        self.geometry = self.store.geometry

    def _range_bytes(self, block_id: int, start_sub: int, n_sub: int) -> bytes:
        sbs = self.geometry.sub_block_size
        data = self.store.block(block_id)
        return bytes(data[start_sub * sbs : (start_sub + n_sub) * sbs])

    def fits(
        self, block_id: int, start_sub: int, n_sub: int, cacheline_aligned: bool = True
    ) -> bool:
        if n_sub == 1:
            return True
        data = self._range_bytes(block_id, start_sub, n_sub)
        return self.engine.fits(data)

    def is_zero(self, block_id: int, start_sub: int, n_sub: int) -> bool:
        return self.engine.is_zero(self._range_bytes(block_id, start_sub, n_sub))

    def max_cf(
        self, block_id: int, sub_index: int, cacheline_aligned: bool = True
    ) -> int:
        data = bytes(self.store.block(block_id))
        return self.engine.achievable_cf(data, sub_index)

    def note_write(self, block_id: int, sub_index: int) -> bool:
        if self._rng.random() < self.write_noise:
            offset = sub_index * self.geometry.sub_block_size
            self.store.scramble_line(block_id, offset, int(self._rng.integers(1 << 30)))
        return True

    def version_of(self, block_id: int) -> int:
        return 0
