"""SPEC CPU2017 proxies: the paper's five memory-bound benchmarks plus two.

Each proxy mimics the published memory characterization of its benchmark
(footprint, locality, write mix) plus the compressibility the paper
reports for it (e.g. 549.fotonik3d_r's average CF of 2.42,
519.lbm_r's ~1.0):

=============== =========================================== =============
proxy           behaviour                                   profile
=============== =========================================== =============
505.mcf_r       pointer chasing over arc arrays + scans     medium
519.lbm_r       write-heavy fluid stencil streams           incompressible
520.omnetpp_r   Zipf-skewed event-queue/heap churn          medium
549.fotonik3d_r large streaming stencil, very compressible  high
557.xz_r        low-spatial-locality dictionary matching    low
503.bwaves_r    compressible blocked solver (extension)     high
554.roms_r      ocean-model stencils (extension)            medium
=============== =========================================== =============
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.common.errors import ConfigurationError
from repro.workloads.base import Trace, TraceGenerator
from repro.workloads.synthetic import EpisodeMixin

#: Per-benchmark behaviour knobs.
SPEC_PARAMS: Dict[str, Dict] = {
    "505.mcf_r": {
        "profile": "medium",
        "write_fraction": 0.15,
        "mix": {"chase": 0.55, "scan": 0.35, "hot": 0.10},
        "igap": (6, 30),
    },
    "519.lbm_r": {
        "profile": "incompressible",
        "write_fraction": 0.48,
        "mix": {"scan": 0.85, "hot": 0.15},
        "igap": (2, 10),
        "sweep_frac": 0.8,
    },
    "520.omnetpp_r": {
        "profile": "medium",
        "write_fraction": 0.35,
        "mix": {"zipf": 0.70, "scan": 0.10, "hot": 0.20},
        "igap": (4, 18),
    },
    "549.fotonik3d_r": {
        "profile": "high",
        "write_fraction": 0.30,
        # The solver re-sweeps field arrays whose working set sits between
        # the raw and the compressed fast-memory capacity — modelled as a
        # dense working-set region ("ws") straddling that band.
        "mix": {"scan": 0.25, "ws": 0.60, "hot": 0.15},
        "igap": (2, 9),
        "ws_frac": 0.55,
    },
    "557.xz_r": {
        "profile": "low",
        "write_fraction": 0.25,
        "mix": {"window": 0.75, "scan": 0.15, "hot": 0.10},
        "igap": (5, 25),
    },
    "503.bwaves_r": {
        "profile": "high",
        "write_fraction": 0.25,
        # Blocked implicit solver: dense working-set sweeps over very
        # compressible double-precision fields.
        "mix": {"scan": 0.30, "ws": 0.55, "hot": 0.15},
        "igap": (2, 10),
        "ws_frac": 0.6,
    },
    "554.roms_r": {
        "profile": "medium",
        "write_fraction": 0.35,
        # Ocean-model stencils: streaming with moderate reuse windows.
        "mix": {"scan": 0.45, "ws": 0.40, "hot": 0.15},
        "igap": (2, 10),
        "ws_frac": 0.5,
    },
}


class SpecProxyWorkload(EpisodeMixin, TraceGenerator):
    """Mixture-of-behaviours generator parameterized per benchmark.

    The hot/zipf components are *episode-based*: blocks expose persistent
    footprints that episodes revisit (see
    :func:`repro.workloads.synthetic.block_footprint`), which is how real
    programs behave at page granularity and what makes footprint caching
    and stage-and-commit meaningful. The chase/window components stay
    line-granular by design: that irregularity is exactly mcf's and xz's
    character.
    """

    def __init__(self, benchmark: str, footprint_bytes: int, seed: int = 1, **kwargs):
        if benchmark not in SPEC_PARAMS:
            raise ConfigurationError(
                f"unknown SPEC proxy {benchmark!r}; choose from {sorted(SPEC_PARAMS)}"
            )
        super().__init__(benchmark, footprint_bytes, seed, **kwargs)
        self.params = SPEC_PARAMS[benchmark]

    def generate(self, n_accesses: int) -> Trace:
        p = self.params
        rng = self.rng
        lines = self.footprint_bytes // 64
        blocks = max(1, self.footprint_bytes // self.geometry.block_size)
        behaviours = list(p["mix"].items())
        names = [b for b, _ in behaviours]
        weights = np.asarray([w for _, w in behaviours])
        weights = weights / weights.sum()
        choices = rng.choice(len(names), size=n_accesses, p=weights)

        # Pre-draw the streams each behaviour consumes.
        addrs = np.empty(n_accesses, dtype=np.uint64)
        episodic = {
            "hot": self._episode_addrs(
                n_accesses, max(1, blocks // 40), theta=0.6, coverage=0.5
            ),
            "zipf": self._episode_addrs(n_accesses, blocks, theta=0.95, coverage=0.45),
            # Dense, near-uniform working-set region (iterative kernels):
            # blocks are fully touched, popularity is flat, and the region
            # size (ws_frac * footprint) is what the capacity story hinges
            # on — compressible data fit it in fast memory, raw data don't.
            "ws": self._episode_addrs(
                n_accesses,
                max(1, int(blocks * p.get("ws_frac", 0.5))),
                theta=0.3,
                coverage=0.9,
            ),
        }
        episodic_pos = {k: 0 for k in episodic}
        # Iterative solvers re-sweep their field arrays: the scan walks a
        # window of sweep_frac * footprint repeatedly (4 passes), then
        # shifts — giving the reuse-at-distance that makes compression's
        # capacity gain visible, as in the real multi-sweep kernels.
        sweep_frac = p.get("sweep_frac", 1.0)
        sweep_lines = max(1, int(lines * sweep_frac))
        sweep_passes = 4
        sweep_origin = 0
        scan_pos = 0
        window_base = 0
        window_lines = max(64, lines // 200)
        # mcf's arcs are ~192 B structs: each chase step reads 3
        # consecutive lines of a node. The network-simplex traversal
        # clusters visits within arc segments (tree-adjacent arcs), so
        # the chase works a ~64-arc segment before jumping — the source
        # of mcf's measurable page-footprint locality.
        chase_arcs = max(1, lines // 3)
        chase_segment = 64
        chase_seg_base = 0
        chase_visits_left = 0
        chase_run = 0
        chase_line = 0
        # xz's dictionary matches copy sequential runs inside the window.
        window_run = 0
        window_line = 0
        for i in range(n_accesses):
            kind = names[choices[i]]
            if kind == "scan":
                addrs[i] = ((sweep_origin + scan_pos % sweep_lines) % lines) * 64
                scan_pos += 1
                if scan_pos >= sweep_lines * sweep_passes:
                    scan_pos = 0
                    sweep_origin = (sweep_origin + sweep_lines) % lines
            elif kind in episodic:
                addrs[i] = episodic[kind][episodic_pos[kind]]
                episodic_pos[kind] += 1
            elif kind == "chase":
                if chase_run == 0:
                    if chase_visits_left == 0:
                        chase_seg_base = int(
                            rng.integers(0, max(1, chase_arcs - chase_segment))
                        )
                        chase_visits_left = int(rng.integers(16, 48))
                    arc = chase_seg_base + int(rng.integers(0, chase_segment))
                    chase_visits_left -= 1
                    chase_line = arc * 3
                    chase_run = 3
                addrs[i] = (chase_line % lines) * 64
                chase_line += 1
                chase_run -= 1
            elif kind == "window":
                if i % 256 == 0:
                    window_base = int(rng.integers(0, max(1, lines - window_lines)))
                if window_run == 0:
                    window_line = window_base + int(rng.integers(0, window_lines))
                    window_run = int(rng.integers(3, 14))
                addrs[i] = (window_line % lines) * 64
                window_line += 1
                window_run -= 1
            else:  # pragma: no cover - mix keys are validated above
                raise ConfigurationError(f"unknown behaviour {kind}")
        writes = rng.random(n_accesses) < p["write_fraction"]
        lo, hi = p["igap"]
        return Trace(
            name=self.name,
            addrs=addrs,
            writes=writes,
            igaps=rng.integers(lo, hi, n_accesses, dtype=np.uint32),
            cores=rng.integers(0, self.cores, n_accesses).astype(np.uint16),
            footprint_bytes=self.footprint_bytes,
            default_profile=p["profile"],
        )
