"""Trace representation and the generator interface."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.common.config import Geometry
from repro.common.errors import ConfigurationError
from repro.compression.synthetic import PROFILE_LIBRARY, CompressibilityProfile


@dataclass
class Trace:
    """A memory access trace in structure-of-arrays form.

    ``igaps[i]`` is the count of non-memory instructions between access
    ``i-1`` and ``i`` (drives the core-timing model); ``cores[i]`` is the
    issuing core. ``regions`` carries (first_block, last_block, profile
    name) triples describing data compressibility, applied to a
    controller's oracle with :meth:`apply_compressibility`.
    """

    name: str
    addrs: np.ndarray
    writes: np.ndarray
    igaps: np.ndarray
    cores: np.ndarray
    footprint_bytes: int = 0
    regions: List[Tuple[int, int, str]] = field(default_factory=list)
    default_profile: str = "medium"

    def __post_init__(self) -> None:
        n = len(self.addrs)
        if not (len(self.writes) == len(self.igaps) == len(self.cores) == n):
            raise ConfigurationError("trace arrays must have equal length")

    def __len__(self) -> int:
        return len(self.addrs)

    @property
    def write_fraction(self) -> float:
        if len(self) == 0:
            return 0.0
        return float(np.count_nonzero(self.writes)) / len(self)

    def apply_compressibility(self, oracle) -> None:
        """Install this trace's compressibility regions into an oracle.

        A no-op for oracles without profile support (e.g. the null oracle
        of compression-free designs, or content-backed oracles whose
        compressibility comes from real bytes).
        """
        if not hasattr(oracle, "set_default_profile"):
            return
        oracle.set_default_profile(self._profile(self.default_profile))
        for first, last, profile_name in self.regions:
            oracle.add_region(first, last, self._profile(profile_name))

    @staticmethod
    def _profile(name: str) -> CompressibilityProfile:
        try:
            return PROFILE_LIBRARY[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown compressibility profile {name!r}; "
                f"choose from {sorted(PROFILE_LIBRARY)}"
            ) from None

    def replay_view(self) -> "Trace":
        """An immutable view of this trace for replay across designs.

        The matrix runner generates each (workload, seed) stream once and
        hands every design a replay view: the arrays are numpy views
        (no copy) with the writeable flag cleared, so a design cannot
        perturb the stream another design will replay — the "every design
        sees an identical stream" guarantee is enforced, not just
        documented.
        """

        def frozen(array: np.ndarray) -> np.ndarray:
            view = array[:]
            view.flags.writeable = False
            return view

        return Trace(
            name=self.name,
            addrs=frozen(self.addrs),
            writes=frozen(self.writes),
            igaps=frozen(self.igaps),
            cores=frozen(self.cores),
            footprint_bytes=self.footprint_bytes,
            regions=list(self.regions),
            default_profile=self.default_profile,
        )

    def slice(self, start: int, end: int) -> "Trace":
        """A view-like sub-trace (arrays are numpy slices, not copies)."""
        return Trace(
            name=self.name,
            addrs=self.addrs[start:end],
            writes=self.writes[start:end],
            igaps=self.igaps[start:end],
            cores=self.cores[start:end],
            footprint_bytes=self.footprint_bytes,
            regions=self.regions,
            default_profile=self.default_profile,
        )

    # -- persistence ---------------------------------------------------------
    def save(self, path) -> None:
        """Write the trace (arrays + metadata) to a ``.npz`` file, so
        expensive generations can be reused across runs and shared."""
        region_array = np.asarray(
            [(f, l, p) for f, l, p in self.regions], dtype=object
        )
        np.savez_compressed(
            path,
            addrs=self.addrs,
            writes=self.writes,
            igaps=self.igaps,
            cores=self.cores,
            name=np.asarray(self.name),
            footprint=np.asarray(self.footprint_bytes),
            default_profile=np.asarray(self.default_profile),
            regions=region_array,
        )

    @staticmethod
    def load(path) -> "Trace":
        """Inverse of :meth:`save`."""
        with np.load(path, allow_pickle=True) as data:
            regions = [
                (int(f), int(l), str(p)) for f, l, p in data["regions"]
            ] if data["regions"].size else []
            return Trace(
                name=str(data["name"]),
                addrs=data["addrs"],
                writes=data["writes"],
                igaps=data["igaps"],
                cores=data["cores"],
                footprint_bytes=int(data["footprint"]),
                regions=regions,
                default_profile=str(data["default_profile"]),
            )


class TraceBuilder:
    """Incremental trace construction for generators written as loops."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._addrs: List[int] = []
        self._writes: List[bool] = []
        self._igaps: List[int] = []
        self._cores: List[int] = []
        self.regions: List[Tuple[int, int, str]] = []
        self.default_profile = "medium"
        self.footprint_bytes = 0

    def add(self, addr: int, write: bool = False, igap: int = 0, core: int = 0) -> None:
        self._addrs.append(addr)
        self._writes.append(write)
        self._igaps.append(igap)
        self._cores.append(core)

    def add_region(self, first_block: int, last_block: int, profile: str) -> None:
        self.regions.append((first_block, last_block, profile))

    def __len__(self) -> int:
        return len(self._addrs)

    def build(self) -> Trace:
        return Trace(
            name=self.name,
            addrs=np.asarray(self._addrs, dtype=np.uint64),
            writes=np.asarray(self._writes, dtype=bool),
            igaps=np.asarray(self._igaps, dtype=np.uint32),
            cores=np.asarray(self._cores, dtype=np.uint16),
            footprint_bytes=self.footprint_bytes,
            regions=self.regions,
            default_profile=self.default_profile,
        )


@dataclass(frozen=True)
class WorkloadSpec:
    """Registry entry: how to build one named workload proxy.

    ``footprint_factor`` scales the data footprint relative to the
    fast-memory capacity (the paper's workloads use 1.5x to 8.6x of the
    4 GB fast memory); ``description`` records what real workload the
    proxy stands in for.
    """

    name: str
    generator: str
    description: str
    footprint_factor: float
    write_fraction: float
    profile: str
    params: Dict[str, float] = field(default_factory=dict)


class TraceGenerator(abc.ABC):
    """Base class for workload proxies.

    Sub-classes implement :meth:`generate`; shared helpers translate
    logical structures (arrays, records, graphs) to byte addresses.
    """

    def __init__(
        self,
        name: str,
        footprint_bytes: int,
        seed: int = 1,
        cores: int = 16,
        geometry: Optional[Geometry] = None,
    ) -> None:
        if footprint_bytes <= 0:
            raise ConfigurationError("footprint must be positive")
        self.name = name
        self.footprint_bytes = footprint_bytes
        self.seed = seed
        self.cores = cores
        self.geometry = geometry or Geometry()
        self.rng = np.random.default_rng(seed)

    @abc.abstractmethod
    def generate(self, n_accesses: int) -> Trace:
        """Produce a trace of approximately ``n_accesses`` accesses."""

    def _line(self, addr: int) -> int:
        """Align to the 64 B access granularity."""
        return int(addr) - (int(addr) % self.geometry.cacheline_size)
