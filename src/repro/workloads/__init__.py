"""Workload generators: the memory behaviour of the paper's benchmarks.

The paper evaluates SPEC CPU2017 (rate mode, 16 copies), GAP graph
algorithms on real-world graphs, OneDNN neural-network inference and
memcached/YCSB. We cannot run those binaries here, so each workload is
reproduced as a *trace generator* that mimics its memory behaviour — the
properties the memory system actually sees:

* footprint relative to fast-memory capacity,
* spatial locality (sub-block footprints) and temporal reuse,
* read/write mix,
* data compressibility (attached as per-region profiles consumed by the
  shared :class:`~repro.compression.synthetic.SyntheticCompressibility`
  oracle).

The registry in :mod:`repro.workloads.suite` lists the full proxy suite
and builds consistently scaled (workload, system) pairs.
"""

from repro.workloads.base import Trace, TraceBuilder, TraceGenerator, WorkloadSpec
from repro.workloads.datagen import ContentBackedCompressibility, ContentStore
from repro.workloads.dnn import DnnInferenceWorkload
from repro.workloads.gap import GraphWorkload
from repro.workloads.spec import SpecProxyWorkload
from repro.workloads.suite import WORKLOADS, build_workload, scaled_system
from repro.workloads.synthetic import (
    PointerChaseWorkload,
    RandomWorkload,
    StencilWorkload,
    StreamWorkload,
    ZipfWorkload,
)
from repro.workloads.ycsb import YcsbWorkload

__all__ = [
    "ContentBackedCompressibility",
    "ContentStore",
    "DnnInferenceWorkload",
    "GraphWorkload",
    "PointerChaseWorkload",
    "RandomWorkload",
    "SpecProxyWorkload",
    "StencilWorkload",
    "StreamWorkload",
    "Trace",
    "TraceBuilder",
    "TraceGenerator",
    "WORKLOADS",
    "WorkloadSpec",
    "YcsbWorkload",
    "ZipfWorkload",
    "build_workload",
    "scaled_system",
]
