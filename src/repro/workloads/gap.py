"""GAP benchmark proxies: PageRank and Connected Components.

The paper runs GAP's ``pr`` and ``cc`` on the twitter and web-sk-2005
graphs. We synthesize power-law graphs with matching structure — twitter:
heavy-tailed hub degrees and essentially random edge destinations;
web-sk: strong community locality (most edges stay near the source) — and
generate the exact access pattern of a CSR pull-style iteration:

    for u in nodes:            # sequential: offsets + own rank
        for v in neigh(u):     # sequential: edge list
            read rank[v]       # the random gather that dominates
        write rank[u]

``cc`` touches labels read-write symmetric, so it writes more.

Rank/label arrays are doubles with many near-equal values (compressible);
edge lists are delta-encoded-friendly integers (medium).
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ConfigurationError
from repro.workloads.base import Trace, TraceGenerator
from repro.workloads.synthetic import _zipf_ranks

GRAPHS = {
    # (degree skew theta, edge locality: fraction of near-source targets)
    "twitter": (1.05, 0.05),
    "web": (0.8, 0.75),
}


class GraphWorkload(TraceGenerator):
    """CSR pull-iteration access pattern over a synthetic power-law graph."""

    def __init__(
        self,
        algorithm: str,
        graph: str,
        footprint_bytes: int,
        seed: int = 1,
        **kwargs,
    ):
        if algorithm not in ("pr", "cc"):
            raise ConfigurationError("algorithm must be 'pr' or 'cc'")
        if graph not in GRAPHS:
            raise ConfigurationError(f"graph must be one of {sorted(GRAPHS)}")
        super().__init__(f"{algorithm}.{graph[:3]}", footprint_bytes, seed, **kwargs)
        self.algorithm = algorithm
        self.graph = graph
        # Footprint split mirrors real power-law graphs: per-vertex arrays
        # (ranks/labels/offsets) are a small sliver next to the edge lists
        # (twitter: ~0.5 GB of ranks vs ~30 GB of edges), so the gather
        # target can largely reside in fast memory while edges stream.
        self.rank_bytes = max(1 << 16, footprint_bytes // 16)
        self.edge_bytes = footprint_bytes - self.rank_bytes
        self.nodes = max(16, self.rank_bytes // 8)
        self.avg_degree = max(1, self.edge_bytes // 4 // self.nodes)

    def generate(self, n_accesses: int) -> Trace:
        theta, locality = GRAPHS[self.graph]
        rng = self.rng
        write_fraction = 0.5 if self.algorithm == "cc" else 0.0

        addrs = []
        writes = []
        rank_base = 0
        edge_base = self.rank_bytes
        # Degrees follow the hub skew; destinations are drawn lazily. Hub
        # popularity is drawn at *rank-line group* granularity: crawl
        # order correlates ids with degree in real web/social graphs, so
        # hot vertices cluster within cachelines/sub-blocks of the rank
        # array — the spatial-value locality Baryon's range fetch exploits.
        nodes_per_group = 32  # one 256 B sub-block of 8 B ranks
        hub_groups = max(1, self.nodes // nodes_per_group)
        node = int(rng.integers(0, self.nodes))
        hub_pool = _zipf_ranks(rng, hub_groups, 4096, theta)
        hub_pos = 0
        edge_cursor = 0
        while len(addrs) < n_accesses:
            # Sequential: read this node's offset/rank entry.
            addrs.append(self._line(rank_base + (node % self.nodes) * 8))
            writes.append(False)
            degree = 1 + int(rng.geometric(1.0 / self.avg_degree))
            degree = min(degree, 64)
            for _ in range(degree):
                if len(addrs) >= n_accesses:
                    break
                # Sequential edge-list read.
                addrs.append(self._line(edge_base + (edge_cursor * 4) % self.edge_bytes))
                writes.append(False)
                edge_cursor += 1
                if len(addrs) >= n_accesses:
                    break
                # The gather: read rank[v] for a (possibly remote) target.
                # GAP sorts adjacency lists, so consecutive neighbours of
                # one node walk ascending ids — short runs of nearby rank
                # lines rather than isolated probes.
                if rng.random() < locality:
                    target = (node + int(rng.integers(1, 512))) % self.nodes
                else:
                    group = int(hub_pool[hub_pos % len(hub_pool)])
                    target = (
                        group * nodes_per_group
                        + int(rng.integers(0, nodes_per_group))
                    ) % self.nodes
                    hub_pos += 1
                    if hub_pos % len(hub_pool) == 0:
                        hub_pool = _zipf_ranks(rng, hub_groups, 4096, theta)
                run = int(rng.integers(1, 4))
                for step in range(run):
                    if len(addrs) >= n_accesses:
                        break
                    neighbour = (target + step * 8) % self.nodes
                    addrs.append(self._line(rank_base + neighbour * 8))
                    # CC propagates labels eagerly: neighbour labels are
                    # rewritten when the component id shrinks.
                    writes.append(
                        self.algorithm == "cc" and rng.random() < write_fraction
                    )
            if len(addrs) < n_accesses:
                # Write back this node's new rank/label.
                addrs.append(self._line(rank_base + (node % self.nodes) * 8))
                writes.append(True)
            node += 1

        n = len(addrs)
        igaps = rng.integers(2, 14, n, dtype=np.uint32)
        trace = Trace(
            name=self.name,
            addrs=np.asarray(addrs, dtype=np.uint64),
            writes=np.asarray(writes, dtype=bool),
            igaps=igaps,
            cores=rng.integers(0, self.cores, n).astype(np.uint16),
            footprint_bytes=self.footprint_bytes,
            default_profile="medium",
        )
        # Rank arrays compress well (similar doubles); edges are medium.
        g = self.geometry
        trace.regions.append((0, self.rank_bytes // g.block_size, "high"))
        trace.regions.append(
            (
                self.rank_bytes // g.block_size + 1,
                self.footprint_bytes // g.block_size,
                "medium",
            )
        )
        return trace
