"""Simulation-as-a-service: async job server over the matrix runner.

The ROADMAP's serving milestone: capacity-planning queries become cached
API calls instead of fresh multi-second simulations. The package splits
into transport-free pieces (:mod:`repro.serve.jobs` — specs, config
materialization, job execution; :mod:`repro.serve.cache` — the
fingerprint-keyed result cache) and the stdlib-only HTTP layer
(:mod:`repro.serve.server`, :mod:`repro.serve.client`).

Design invariants:

* a served result is **bit-identical** to a cold serial run — the cache
  stores the exact per-cell checkpoint payloads the runner would have
  produced, keyed by
  :func:`~repro.resilience.checkpoint.cell_fingerprint`, and every
  entry's SHA-256 digest is re-verified on read;
* one :class:`~repro.parallel.runner.CellExecutor` is shared by every
  job, so the fork pool survives across requests;
* SIGTERM drains gracefully through the same stop-event machinery the
  CLI's interrupt guard uses: the in-flight job checkpoints and reports
  ``interrupted``, queued jobs are cancelled, and a re-submitted job
  resumes from the cache.
"""

from repro.serve.cache import ResultCache
from repro.serve.client import ServeClient, ServeError
from repro.serve.jobs import Job, JobSpec, build_configs, run_job
from repro.serve.server import JobServer

__all__ = [
    "Job",
    "JobServer",
    "JobSpec",
    "ResultCache",
    "ServeClient",
    "ServeError",
    "build_configs",
    "run_job",
]
