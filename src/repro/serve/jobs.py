"""Job specs, config materialization, and job execution.

A *job* is one matrix request: workloads × designs (× seeds) at a given
access count against a scaled system configuration plus optional
sub-config overrides. :func:`build_configs` turns the spec into the
exact ``(BaryonConfig, SimulationConfig)`` pair a local run would use —
the capacity-planning example routes its *local* mode through the same
function, which is what makes server results bit-identical to cold
serial runs by construction.

:func:`run_job` is the transport-free execution path the HTTP server
calls from a worker thread: look every cell up in the
:class:`~repro.serve.cache.ResultCache`, write the hits into the job's
checkpoint as a preload, hand the plan to
:func:`~repro.parallel.runner.run_plan` (which resumes past the cached
cells and simulates only the misses on the shared
:class:`~repro.parallel.runner.CellExecutor`), then warm the cache with
the newly simulated cells.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field
from time import time as _wall
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.experiments import DESIGNS
from repro.common.config import BaryonConfig, SimulationConfig
from repro.common.errors import CheckpointCorruptError, ConfigurationError
from repro.obs.progress import ProgressTracker
from repro.parallel.plan import Cell, plan_cells
from repro.parallel.runner import CellExecutor, MatrixOutcome, run_plan
from repro.parallel.telemetry import SweepTelemetry
from repro.resilience.checkpoint import (
    cell_fingerprint,
    load_checkpoint,
    plan_fingerprint,
    salvage_checkpoint,
    write_checkpoint,
)
from repro.serve.cache import ResultCache
from repro.workloads import WORKLOADS, scaled_system

#: BaryonConfig fields that are themselves frozen dataclasses and may be
#: overridden field-by-field from a job spec.
_SUB_CONFIGS = (
    "geometry", "layout", "stage", "remap_cache",
    "compression", "commit", "timings",
)

#: Scalar BaryonConfig fields a spec may override directly.
_SCALAR_FIELDS = (
    "compressed_writeback", "two_level_replacement", "compression_enabled",
    "share_physical_blocks", "fast_replacement",
)

#: Job lifecycle states.
JOB_STATES = (
    "queued", "running", "done", "failed", "interrupted", "cancelled",
)


@dataclass(frozen=True)
class JobSpec:
    """One matrix request, JSON-shaped.

    ``overrides`` maps a :data:`_SUB_CONFIGS` name to a dict of field
    replacements (e.g. ``{"stage": {"size_bytes": 262144}}``) or a
    :data:`_SCALAR_FIELDS` name to its value; ``sim_overrides`` does the
    same for :class:`~repro.common.config.SimulationConfig` fields.
    """

    workloads: Tuple[str, ...]
    designs: Tuple[str, ...]
    n_accesses: int = 20_000
    seed: int = 1
    seeds: Optional[Tuple[int, ...]] = None
    scale: int = 256
    overrides: Tuple[Tuple[str, Any], ...] = ()
    sim_overrides: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "JobSpec":
        """Validate and freeze a JSON job body."""
        if not isinstance(raw, dict):
            raise ConfigurationError("job spec must be a JSON object")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(raw) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown job spec field(s): {', '.join(unknown)}"
            )
        workloads = tuple(raw.get("workloads") or ())
        designs = tuple(raw.get("designs") or ())
        if not workloads or not designs:
            raise ConfigurationError(
                "job spec needs non-empty 'workloads' and 'designs'"
            )
        for workload in workloads:
            if workload not in WORKLOADS:
                raise ConfigurationError(
                    f"unknown workload {workload!r}; choose from "
                    f"{', '.join(sorted(WORKLOADS))}"
                )
        for design in designs:
            if design not in DESIGNS:
                raise ConfigurationError(
                    f"unknown design {design!r}; choose from "
                    f"{', '.join(DESIGNS)}"
                )
        n_accesses = int(raw.get("n_accesses", 20_000))
        if n_accesses < 1:
            raise ConfigurationError("n_accesses must be >= 1")
        scale = int(raw.get("scale", 256))
        seeds = raw.get("seeds")
        overrides = _freeze(raw.get("overrides") or {})
        sim_overrides = _freeze(raw.get("sim_overrides") or {})
        return cls(
            workloads=workloads,
            designs=designs,
            n_accesses=n_accesses,
            seed=int(raw.get("seed", 1)),
            seeds=tuple(int(s) for s in seeds) if seeds else None,
            scale=scale,
            overrides=overrides,
            sim_overrides=sim_overrides,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "workloads": list(self.workloads),
            "designs": list(self.designs),
            "n_accesses": self.n_accesses,
            "seed": self.seed,
            "seeds": list(self.seeds) if self.seeds is not None else None,
            "scale": self.scale,
            "overrides": _thaw(self.overrides),
            "sim_overrides": _thaw(self.sim_overrides),
        }


def _freeze(mapping: Dict[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    """Hashable, deterministic form of a (possibly nested) override map."""
    if not isinstance(mapping, dict):
        raise ConfigurationError("overrides must be a JSON object")
    items: List[Tuple[str, Any]] = []
    for key in sorted(mapping):
        value = mapping[key]
        items.append((key, _freeze(value) if isinstance(value, dict) else value))
    return tuple(items)


def _thaw(frozen: Tuple[Tuple[str, Any], ...]) -> Dict[str, Any]:
    return {
        key: _thaw(value) if isinstance(value, tuple) else value
        for key, value in frozen
    }


def build_configs(spec: JobSpec) -> Tuple[BaryonConfig, SimulationConfig]:
    """Materialize the exact config pair this spec describes.

    Both the server and the capacity-planning example's local mode call
    this, so a given spec always simulates the identical system — the
    precondition for fingerprint-keyed caching.
    """
    config, sim_config = scaled_system(spec.scale)
    for name, value in _thaw(spec.overrides).items():
        if name in _SUB_CONFIGS:
            if not isinstance(value, dict):
                raise ConfigurationError(
                    f"override {name!r} must be an object of field values"
                )
            try:
                sub = dataclasses.replace(getattr(config, name), **value)
            except TypeError as err:
                raise ConfigurationError(
                    f"bad {name!r} override: {err}"
                ) from err
            config = dataclasses.replace(config, **{name: sub})
        elif name in _SCALAR_FIELDS:
            config = dataclasses.replace(config, **{name: value})
        else:
            raise ConfigurationError(
                f"unknown config override {name!r}; sub-configs: "
                f"{', '.join(_SUB_CONFIGS)}; scalars: "
                f"{', '.join(_SCALAR_FIELDS)}"
            )
    sim_updates = _thaw(spec.sim_overrides)
    if sim_updates:
        try:
            sim_config = dataclasses.replace(sim_config, **sim_updates)
        except TypeError as err:
            raise ConfigurationError(f"bad sim override: {err}") from err
    return config, sim_config


@dataclass
class Job:
    """One submitted job and everything its status endpoint reports."""

    id: str
    spec: JobSpec
    workdir: str
    state: str = "queued"
    submitted_ts: float = field(default_factory=_wall)
    started_ts: Optional[float] = None
    finished_ts: Optional[float] = None
    error: Optional[str] = None
    cache_hits: int = 0
    cells: int = 0
    plan: List[Cell] = field(default_factory=list)
    fingerprint: Optional[str] = None
    cell_keys: Dict[int, str] = field(default_factory=dict)
    tracker: Optional[ProgressTracker] = None
    outcome: Optional[MatrixOutcome] = None

    @property
    def checkpoint_path(self) -> str:
        return os.path.join(self.workdir, "job.ckpt")

    def status(self) -> Dict[str, Any]:
        """The JSON body of ``GET /jobs/<id>``."""
        body: Dict[str, Any] = {
            "id": self.id,
            "state": self.state,
            "cells": self.cells,
            "cache_hits": self.cache_hits,
            "submitted_ts": self.submitted_ts,
            "started_ts": self.started_ts,
            "finished_ts": self.finished_ts,
            "error": self.error,
            "spec": self.spec.to_dict(),
        }
        if self.tracker is not None:
            body["progress"] = self.tracker.snapshot()
        if self.outcome is not None:
            body["outcome"] = {
                "results": len(self.outcome.results),
                "failed": len(self.outcome.failed),
                "quarantined": len(self.outcome.quarantined),
                "interrupted": self.outcome.interrupted,
                "resumed": self.outcome.resumed,
                "retries": self.outcome.retries,
                "elapsed_s": self.outcome.elapsed_s,
                "audit_ok": (
                    self.outcome.audit["ok"]
                    if self.outcome.audit is not None else None
                ),
            }
        return body

    def result_records(self) -> List[Dict[str, Any]]:
        """Per-cell result lines available *right now* (JSONL stream).

        Reads the job's own checkpoint, so a running job streams each
        cell the moment it is durably recorded; damaged bytes (only
        possible mid-crash) degrade to the digest-verified subset.
        """
        if self.fingerprint is None or not os.path.exists(self.checkpoint_path):
            return []
        try:
            payloads = load_checkpoint(self.checkpoint_path, self.fingerprint)
        except CheckpointCorruptError:
            try:
                payloads, _ = salvage_checkpoint(
                    self.checkpoint_path, self.fingerprint
                )
            except ConfigurationError:
                return []
        except ConfigurationError:
            return []
        by_index = {cell.index: cell for cell in self.plan}
        records: List[Dict[str, Any]] = []
        for index in sorted(payloads):
            cell = by_index.get(index)
            if cell is None:
                continue
            payload = payloads[index]
            records.append({
                "index": index,
                "workload": cell.workload,
                "design": cell.design,
                "seed": cell.seed,
                "cached": index in self._preloaded,
                "result": payload.get("result", {}),
            })
        return records

    # indices served from the cache (set by run_job before simulation)
    _preloaded: frozenset = frozenset()


def run_job(
    job: Job,
    executor: CellExecutor,
    cache: ResultCache,
    stop_event,
    *,
    max_attempts: int = 2,
    heartbeat_every: int = 1000,
) -> MatrixOutcome:
    """Execute one job on the shared executor, cache-first.

    Every cell is first looked up by its
    :func:`~repro.resilience.checkpoint.cell_fingerprint`; hits are
    rewritten (index-adjusted) into the job's checkpoint, which
    ``run_plan`` then resumes — cached cells are never re-simulated, and
    a drain (``stop_event``) mid-job leaves that same checkpoint
    resumable. Newly simulated cells warm the cache afterwards.
    """
    spec = job.spec
    plan = plan_cells(
        spec.workloads, spec.designs, seed=spec.seed, seeds=spec.seeds,
    )
    config, sim_config = build_configs(spec)
    fingerprint = plan_fingerprint(plan, spec.n_accesses, config, sim_config)
    os.makedirs(job.workdir, exist_ok=True)
    job.plan = plan
    job.cells = len(plan)
    job.fingerprint = fingerprint

    preload: Dict[int, Dict[str, Any]] = {}
    for cell in plan:
        key = cell_fingerprint(
            cell.workload, cell.design, cell.seed,
            spec.n_accesses, config, sim_config,
        )
        job.cell_keys[cell.index] = key
        payload = cache.get(key)
        if payload is not None:
            hit = dict(payload)
            hit["index"] = cell.index
            preload[cell.index] = hit
    job.cache_hits = len(preload)
    job._preloaded = frozenset(preload)
    if preload:
        write_checkpoint(job.checkpoint_path, fingerprint, preload)

    job.tracker = ProgressTracker(total_cells=len(plan))
    telemetry = SweepTelemetry(
        progress=job.tracker, heartbeat_every=heartbeat_every,
    )
    outcome = run_plan(
        plan, config, sim_config, n_accesses=spec.n_accesses,
        max_attempts=max_attempts,
        checkpoint=job.checkpoint_path, resume=job.checkpoint_path,
        telemetry=telemetry,
        executor=executor, stop_event=stop_event,
    )
    job.outcome = outcome

    # Warm the cache with what this job had to simulate itself.
    try:
        payloads = load_checkpoint(job.checkpoint_path, fingerprint)
    except (CheckpointCorruptError, ConfigurationError):
        payloads = {}
    for index, payload in payloads.items():
        if index not in preload and index in job.cell_keys:
            cache.put(job.cell_keys[index], payload)
    return outcome
