"""Tiny urllib client for the job server.

No third-party HTTP stack: ``urllib.request`` against the stdlib server
in :mod:`repro.serve.server`. The convenience :meth:`ServeClient.run`
wraps the whole submit → poll → fetch-results cycle so callers (the
capacity-planning example, the CI smoke job) stay one-liners.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Optional
from urllib import error as urlerror
from urllib import request as urlrequest

TERMINAL_STATES = frozenset({"done", "failed", "interrupted", "cancelled"})


class ServeError(RuntimeError):
    """HTTP-level or job-level failure; carries the status code when the
    server answered at all."""

    def __init__(self, message: str, status: Optional[int] = None) -> None:
        super().__init__(message)
        self.status = status


class ServeClient:
    def __init__(self, base_url: str, timeout_s: float = 10.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    # -- raw endpoints ------------------------------------------------------
    def healthz(self) -> Dict[str, Any]:
        return self._json("GET", "/healthz")

    def metrics(self) -> str:
        return self._raw("GET", "/metrics").decode("utf-8")

    def submit(self, spec: Dict[str, Any]) -> str:
        """Submit a job-spec dict; returns the job id."""
        reply = self._json("POST", "/jobs", body=spec)
        return reply["id"]

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._json("GET", f"/jobs/{job_id}")

    def results(self, job_id: str) -> List[Dict[str, Any]]:
        """All finished-cell records (JSONL body, parsed)."""
        raw = self._raw("GET", f"/jobs/{job_id}/results")
        return [
            json.loads(line)
            for line in raw.decode("utf-8").splitlines()
            if line.strip()
        ]

    # -- convenience --------------------------------------------------------
    def wait(
        self, job_id: str, *, timeout_s: float = 300.0,
        poll_s: float = 0.005, max_poll_s: float = 0.25,
    ) -> Dict[str, Any]:
        """Poll status until the job reaches a terminal state.

        The poll interval starts tight and backs off geometrically, so a
        cache-served job is confirmed done within milliseconds while a
        long simulation settles into a lazy ~4 Hz poll.
        """
        deadline = time.monotonic() + timeout_s
        interval = poll_s
        while True:
            status = self.job(job_id)
            if status["state"] in TERMINAL_STATES:
                return status
            if time.monotonic() >= deadline:
                raise ServeError(
                    f"job {job_id} still {status['state']} "
                    f"after {timeout_s:.0f}s"
                )
            time.sleep(interval)
            interval = min(max_poll_s, interval * 1.6)

    def run(
        self, spec: Dict[str, Any], *, timeout_s: float = 300.0
    ) -> Dict[str, Any]:
        """Submit, wait, and return ``{"status": ..., "records": [...]}``;
        raises :class:`ServeError` unless the job finished ``done``."""
        job_id = self.submit(spec)
        status = self.wait(job_id, timeout_s=timeout_s)
        if status["state"] != "done":
            raise ServeError(
                f"job {job_id} ended {status['state']}: "
                f"{status.get('error') or 'no error detail'}"
            )
        return {"status": status, "records": self.results(job_id)}

    # -- plumbing -----------------------------------------------------------
    def _raw(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> bytes:
        data = None
        headers = {}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urlrequest.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urlrequest.urlopen(req, timeout=self.timeout_s) as reply:
                return reply.read()
        except urlerror.HTTPError as err:
            detail = err.read().decode("utf-8", "replace")
            try:
                detail = json.loads(detail).get("error", detail)
            except ValueError:
                pass
            raise ServeError(
                f"{method} {path} -> {err.code}: {detail}", status=err.code
            ) from err
        except urlerror.URLError as err:
            raise ServeError(f"{method} {path}: {err.reason}") from err

    def _json(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        return json.loads(self._raw(method, path, body).decode("utf-8"))
