"""Stdlib-only asyncio HTTP job server.

Endpoints (HTTP/1.1, one request per connection):

* ``POST /jobs`` — submit a :class:`~repro.serve.jobs.JobSpec` body;
  202 with the job id, 503 when the bounded queue is full or the server
  is draining, 400 on a bad spec.
* ``GET /jobs`` — summary list of every known job.
* ``GET /jobs/<id>`` — full status: lifecycle state, cache hits, the
  heartbeat-fed per-cell progress snapshot, and the outcome summary.
* ``GET /jobs/<id>/results`` — results as JSONL, one line per finished
  cell; ``?wait=1`` streams lines as cells land until the job reaches a
  terminal state.
* ``GET /metrics`` — Prometheus text exposition (server, cache, and
  executor counters) through :mod:`repro.obs.metrics`.
* ``GET /healthz`` — liveness + drain flag.

Jobs run one at a time on a single worker task: the simulation itself
already parallelizes across the shared
:class:`~repro.parallel.runner.CellExecutor`'s pool, so admitting a
second concurrent job would only thrash the same workers. SIGTERM and
SIGINT begin a graceful drain — the PR 8 interrupt machinery, driven
through ``run_plan``'s ``stop_event``: the in-flight job stops
dispatching, drains within its grace window, and leaves its checkpoint
resumable; queued jobs are cancelled; new submissions get 503.
"""

from __future__ import annotations

import asyncio
import json
import signal
import tempfile
import threading
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.common.errors import ConfigurationError
from repro.common.stats import CounterGroup
from repro.obs.metrics import MetricsRegistry
from repro.parallel.runner import CellExecutor
from repro.serve.cache import ResultCache
from repro.serve.jobs import Job, JobSpec, run_job

import os

#: Largest request body the server will read.
MAX_BODY_BYTES = 1 << 20

#: Poll cadence of the streaming results endpoint.
STREAM_POLL_S = 0.1

_TERMINAL_STATES = frozenset({"done", "failed", "interrupted", "cancelled"})


class JobServer:
    """One bounded job queue + one shared executor behind HTTP."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8642,
        *,
        jobs: int = 1,
        workdir: Optional[str] = None,
        cache_dir: Optional[str] = None,
        cache_entries: int = 4096,
        queue_limit: int = 8,
        heartbeat_every: int = 1000,
        max_attempts: int = 2,
    ) -> None:
        self.host = host
        self.port = port
        self.workdir = workdir or tempfile.mkdtemp(prefix="repro-serve-")
        os.makedirs(self.workdir, exist_ok=True)
        self.cache = ResultCache(
            cache_dir or os.path.join(self.workdir, "cache"),
            capacity_entries=cache_entries,
        )
        self.executor = CellExecutor(jobs=jobs)
        self.heartbeat_every = heartbeat_every
        self.max_attempts = max_attempts
        self.queue_limit = queue_limit
        self.stats = CounterGroup("serve.http")
        self.stop_event = threading.Event()
        self.draining = False
        self._jobs: Dict[str, Job] = {}
        self._order: list = []
        self._next_id = 1
        self._queue: Optional[asyncio.Queue] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle ----------------------------------------------------------
    async def serve(
        self, *, install_signal_handlers: bool = True, on_ready=None
    ) -> None:
        """Listen until a drain completes (SIGTERM/SIGINT or
        :meth:`begin_drain`). ``on_ready(self)`` fires once the socket is
        bound — by then ``self.port`` is the real port even for port 0."""
        loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue(maxsize=self.queue_limit)
        self._shutdown = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port,
        )
        if self.port == 0:
            self.port = self._server.sockets[0].getsockname()[1]
        if install_signal_handlers:
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(sig, self.begin_drain)
                except (NotImplementedError, RuntimeError):
                    pass
        if on_ready is not None:
            on_ready(self)
        worker = asyncio.create_task(self._job_worker())
        try:
            await self._shutdown.wait()
            # Let the in-flight job drain (run_plan honours stop_event
            # within its grace window), then stop accepting connections.
            await worker
        finally:
            worker.cancel()
            self._server.close()
            await self._server.wait_closed()
            self.executor.close()

    def begin_drain(self) -> None:
        """Graceful SIGTERM path: stop admitting, stop dispatching,
        cancel the queue, keep status endpoints honest until exit."""
        if self.draining:
            return
        self.draining = True
        self.stats.inc("drains")
        self.stop_event.set()
        if self._queue is not None:
            while True:
                try:
                    job = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if job is not None:
                    job.state = "cancelled"
                    self.stats.inc("jobs_cancelled")
            # Sentinel wakes the worker even when nothing is queued.
            self._queue.put_nowait(None)
        if self._shutdown is not None:
            self._shutdown.set()

    # -- job execution ------------------------------------------------------
    async def _job_worker(self) -> None:
        while True:
            job = await self._queue.get()
            if job is None:
                return
            if self.draining or job.state == "cancelled":
                if job.state != "cancelled":
                    job.state = "cancelled"
                    self.stats.inc("jobs_cancelled")
                continue
            job.state = "running"
            job.started_ts = _now()
            try:
                outcome = await asyncio.to_thread(
                    run_job, job, self.executor, self.cache, self.stop_event,
                    max_attempts=self.max_attempts,
                    heartbeat_every=self.heartbeat_every,
                )
            except Exception as err:  # noqa: BLE001 - job isolation barrier
                job.state = "failed"
                job.error = f"{type(err).__name__}: {err}"
                self.stats.inc("jobs_failed")
            else:
                self.stats.inc("cells_cached", job.cache_hits)
                self.stats.inc(
                    "cells_simulated", len(outcome.results) - job.cache_hits,
                )
                if outcome.interrupted:
                    job.state = "interrupted"
                    self.stats.inc("jobs_interrupted")
                elif outcome.failed:
                    job.state = "failed"
                    job.error = (
                        f"{len(outcome.failed)} cell(s) failed; see results"
                    )
                    self.stats.inc("jobs_failed")
                else:
                    job.state = "done"
                    self.stats.inc("jobs_done")
            finally:
                job.finished_ts = _now()

    # -- HTTP ---------------------------------------------------------------
    async def _handle_client(self, reader, writer) -> None:
        try:
            request = await self._read_request(reader)
            if request is not None:
                method, path, query, body = request
                await self._route(writer, method, path, query, body)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as err:  # noqa: BLE001 - connection isolation
            try:
                _write_json(writer, 500, {
                    "error": f"{type(err).__name__}: {err}",
                })
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader
    ) -> Optional[Tuple[str, str, Dict[str, list], bytes]]:
        request_line = await reader.readline()
        if not request_line.strip():
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length < 0 or length > MAX_BODY_BYTES:
            return None
        body = await reader.readexactly(length) if length else b""
        split = urlsplit(target)
        return method, split.path, parse_qs(split.query), body

    async def _route(
        self, writer, method: str, path: str,
        query: Dict[str, list], body: bytes,
    ) -> None:
        self.stats.inc("requests")
        if path == "/healthz" and method == "GET":
            _write_json(writer, 200, {"ok": True, "draining": self.draining})
        elif path == "/metrics" and method == "GET":
            _write_text(writer, 200, self._metrics_text(),
                        content_type="text/plain; version=0.0.4")
        elif path == "/jobs" and method == "POST":
            self._submit(writer, body)
        elif path == "/jobs" and method == "GET":
            _write_json(writer, 200, {
                "jobs": [self._jobs[jid].status() for jid in self._order],
            })
        elif path.startswith("/jobs/") and method == "GET":
            await self._job_endpoint(writer, path, query)
        else:
            _write_json(writer, 404, {"error": f"no route for {method} {path}"})

    def _submit(self, writer, body: bytes) -> None:
        if self.draining:
            _write_json(writer, 503, {"error": "server is draining"})
            return
        try:
            spec = JobSpec.from_dict(json.loads(body.decode("utf-8")))
        except (ValueError, ConfigurationError) as err:
            self.stats.inc("jobs_rejected")
            _write_json(writer, 400, {"error": str(err)})
            return
        job_id = f"job-{self._next_id:06d}"
        job = Job(
            id=job_id, spec=spec,
            workdir=os.path.join(self.workdir, job_id),
        )
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            self.stats.inc("jobs_rejected")
            _write_json(writer, 503, {
                "error": f"job queue is full ({self.queue_limit})",
            })
            return
        self._next_id += 1
        self._jobs[job_id] = job
        self._order.append(job_id)
        self.stats.inc("jobs_submitted")
        _write_json(writer, 202, {"id": job_id, "state": job.state})

    async def _job_endpoint(
        self, writer, path: str, query: Dict[str, list]
    ) -> None:
        parts = path.strip("/").split("/")
        job = self._jobs.get(parts[1]) if len(parts) >= 2 else None
        if job is None:
            _write_json(writer, 404, {"error": "unknown job id"})
            return
        if len(parts) == 2:
            _write_json(writer, 200, job.status())
        elif len(parts) == 3 and parts[2] == "results":
            wait = query.get("wait", ["0"])[0] not in ("0", "", "false")
            await self._stream_results(writer, job, wait)
        else:
            _write_json(writer, 404, {"error": f"no route for {path}"})

    async def _stream_results(self, writer, job: Job, wait: bool) -> None:
        """JSONL results; with ``wait`` the connection stays open and
        lines appear as the running job checkpoints each cell."""
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Connection: close\r\n\r\n"
        )
        sent: set = set()
        while True:
            records = await asyncio.to_thread(job.result_records)
            for record in records:
                if record["index"] in sent:
                    continue
                sent.add(record["index"])
                writer.write(
                    json.dumps(record, separators=(",", ":")).encode("utf-8")
                    + b"\n"
                )
            await writer.drain()
            if not wait or job.state in _TERMINAL_STATES:
                return
            await asyncio.sleep(STREAM_POLL_S)

    # -- metrics ------------------------------------------------------------
    def _metrics_text(self) -> str:
        registry = MetricsRegistry()
        registry.ingest_counter_group(
            "repro_serve_events_total", self.stats,
            help="Job server lifecycle counters",
        )
        registry.ingest_counter_group(
            "repro_serve_cache_total", self.cache.stats,
            help="Result cache reads/writes by outcome",
        )
        states = CounterGroup("serve.jobs")
        for job_id in self._order:
            states.inc(self._jobs[job_id].state)
        registry.ingest_counter_group(
            "repro_serve_jobs", states, label="state",
            help="Known jobs by lifecycle state",
        )
        return registry.to_prometheus()


def _now() -> float:
    from time import time
    return time()


def _write_json(writer, status: int, payload: Dict[str, Any]) -> None:
    _write_text(
        writer, status,
        json.dumps(payload, separators=(",", ":")),
        content_type="application/json",
    )


_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    500: "Internal Server Error", 503: "Service Unavailable",
}


def _write_text(
    writer, status: int, text: str,
    content_type: str = "text/plain",
) -> None:
    body = text.encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    writer.write(
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n".encode("latin-1") + body
    )
