"""Fingerprint-keyed result cache backing the job server.

Each entry is one finished cell payload stored as a **single-cell
checkpoint file** (the v2 line-oriented format from
:mod:`repro.resilience.checkpoint`), whose header fingerprint is the
cell's own :func:`~repro.resilience.checkpoint.cell_fingerprint`. That
buys the cache the checkpoint machinery wholesale:

* durable writes (temp file + fsync + rename) — a crashed server never
  publishes a torn entry;
* per-payload SHA-256 digests re-verified on every read;
* the salvage path for damaged files — a corrupted entry is dropped (or
  partially recovered) and the cell is transparently re-simulated,
  never served wrong.

Entries are sharded into 256 subdirectories by the first fingerprint
byte so a busy cache does not degenerate into one giant directory.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

from repro.common.errors import CheckpointCorruptError, ConfigurationError
from repro.common.stats import CounterGroup
from repro.resilience.checkpoint import (
    load_checkpoint,
    salvage_checkpoint,
    write_checkpoint,
)

#: Index every cached payload is stored under inside its entry file; the
#: job layer rewrites it to the cell's plan index on the way out.
_ENTRY_INDEX = 0


class ResultCache:
    """Cross-job cell-result cache keyed by ``cell_fingerprint``.

    ``capacity_entries`` bounds the number of entries; when an insert
    pushes past it, the oldest entries (by mtime) are pruned. ``stats``
    is a :class:`~repro.common.stats.CounterGroup` with ``hit`` /
    ``miss`` / ``store`` / ``corrupt_dropped`` / ``evicted`` /
    ``store_errors`` counters, exported on the server's ``/metrics``.
    """

    def __init__(self, root: str, capacity_entries: int = 4096) -> None:
        if capacity_entries < 1:
            raise ConfigurationError("cache capacity_entries must be >= 1")
        self.root = root
        self.capacity_entries = capacity_entries
        self.stats = CounterGroup("serve.cache")
        os.makedirs(root, exist_ok=True)
        self._entries = sum(1 for _ in self._iter_paths())

    # -- layout -------------------------------------------------------------
    def entry_path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.ckpt")

    def _iter_paths(self):
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".ckpt"):
                    yield os.path.join(shard_dir, name)

    def __len__(self) -> int:
        return self._entries

    # -- read/write ---------------------------------------------------------
    def get(self, key: str) -> Optional[Dict]:
        """The cached payload for ``key``, or ``None``.

        A damaged entry is first run through salvage; when the payload
        cannot be digest-verified the entry is deleted and the miss is
        counted as ``corrupt_dropped`` — the caller re-simulates.
        """
        path = self.entry_path(key)
        if not os.path.exists(path):
            self.stats.inc("miss")
            return None
        try:
            payloads = load_checkpoint(path, key)
        except CheckpointCorruptError:
            try:
                payloads, _ = salvage_checkpoint(path, key)
            except ConfigurationError:
                payloads = {}
        except ConfigurationError:
            # Wrong magic/version/fingerprint: not trustworthy at all.
            payloads = {}
        payload = payloads.get(_ENTRY_INDEX)
        if payload is None:
            self._drop(path)
            self.stats.inc("miss")
            self.stats.inc("corrupt_dropped")
            return None
        self.stats.inc("hit")
        return payload

    def put(self, key: str, payload: Dict) -> bool:
        """Store one finished cell payload; returns ``False`` when the
        write failed (disk trouble degrades the cache, never the job)."""
        entry = dict(payload)
        entry["index"] = _ENTRY_INDEX
        path = self.entry_path(key)
        created = not os.path.exists(path)
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            write_checkpoint(path, key, {_ENTRY_INDEX: entry})
        except OSError:
            self.stats.inc("store_errors")
            return False
        self.stats.inc("store")
        if created:
            self._entries += 1
            if self._entries > self.capacity_entries:
                self._prune()
        return True

    # -- maintenance --------------------------------------------------------
    def _drop(self, path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            return
        self._entries = max(0, self._entries - 1)

    def _prune(self) -> None:
        """Delete oldest entries (by mtime) down to capacity."""
        aged = []
        for path in self._iter_paths():
            try:
                aged.append((os.path.getmtime(path), path))
            except OSError:
                continue
        self._entries = len(aged)
        excess = self._entries - self.capacity_entries
        if excess <= 0:
            return
        for _, path in sorted(aged)[:excess]:
            self._drop(path)
            self.stats.inc("evicted")
