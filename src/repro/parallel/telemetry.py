"""Sweep-scale telemetry configuration for the matrix runner.

:class:`SweepTelemetry` is the parent-side bundle ``run_plan`` (and
``run_matrix``/``run_matrix_sharded`` through their ``telemetry``
keyword) accepts: a span tracer for the sweep→cell→phase tree, a
progress tracker consuming worker heartbeats, and switches for
worker-side span/metrics collection. :class:`WorkerTelemetry` is the
small picklable spec actually shipped to fork workers through the pool
initializer — workers never see the parent's tracer objects, only
booleans and the heartbeat cadence, and report back through plain-dict
payload fields (``spans``, ``metrics``) plus the heartbeat queue.

Everything defaults to off; a ``telemetry=None`` sweep takes the exact
pre-telemetry code path (same payloads, same deadline bookkeeping), so
counters and timings of untelemetered runs are untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.obs.progress import ProgressTracker
from repro.obs.spans import SpanTracer

if TYPE_CHECKING:  # import cycle guard: chaos lives in repro.resilience
    from repro.resilience.chaos import ChaosPlan

#: Default simulated accesses between worker heartbeats. Small enough
#: that a stuck cell is noticed within a second on typical simulation
#: rates, large enough that beat overhead is unmeasurable.
DEFAULT_HEARTBEAT_EVERY = 2000


@dataclass
class WorkerTelemetry:
    """Picklable per-worker telemetry spec (pool initializer payload).

    ``chaos`` carries the worker-side slice of an orchestration
    :class:`~repro.resilience.chaos.ChaosPlan` (kill/hang/heartbeat
    chaos); the runner attaches it for pool workers only — worker chaos
    must never run in the parent process.
    """

    spans: bool = False
    metrics: bool = False
    heartbeat_every: int = DEFAULT_HEARTBEAT_EVERY
    chaos: Optional["ChaosPlan"] = None


@dataclass
class SweepTelemetry:
    """Parent-side telemetry wiring for one matrix run.

    ``spans``
        A :class:`~repro.obs.spans.SpanTracer` receiving the sweep span
        tree (parent phases plus adopted worker spans).
    ``progress``
        A :class:`~repro.obs.progress.ProgressTracker` fed every
        heartbeat / cell_done / cell_failed event live.
    ``collect_metrics``
        Ship each worker's :class:`~repro.obs.MetricsRegistry` snapshot
        back and merge them shard-labeled into ``MatrixOutcome.metrics``.
    ``worker_spans``
        Let workers record their own phase spans (``cell.trace``,
        ``cell.simulate``, ``sim.*``) for adoption; requires ``spans``.
    ``heartbeat_every``
        Simulated accesses between worker heartbeats; ``0`` disables the
        heartbeat channel entirely (progress and heartbeat-based
        deadlines then degrade to cell-start deadlines).
    """

    spans: Optional[SpanTracer] = None
    progress: Optional[ProgressTracker] = None
    collect_metrics: bool = False
    worker_spans: bool = True
    heartbeat_every: int = DEFAULT_HEARTBEAT_EVERY

    @property
    def wants_heartbeats(self) -> bool:
        return self.heartbeat_every > 0

    def worker_spec(self) -> WorkerTelemetry:
        """The picklable subset a worker process needs."""
        return WorkerTelemetry(
            spans=self.spans is not None and self.worker_spans,
            metrics=self.collect_metrics,
            heartbeat_every=self.heartbeat_every,
        )
