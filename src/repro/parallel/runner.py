"""Process-pool execution of experiment matrix plans.

The runner turns a deterministic cell plan (:mod:`repro.parallel.plan`)
into a :class:`MatrixOutcome`:

* cells are dispatched to a ``fork`` process pool (``jobs`` workers);
  each worker serializes its :class:`~repro.sim.results.SimResult` and
  per-component counter snapshots back as plain dicts (pickle-free
  payloads, transport-agnostic);
* the parent folds the shards with the ``CounterGroup.merge`` /
  ``RatioStat.merge`` aggregation APIs.

Crash safety (``repro.resilience``):

* a cell that raises comes back as a **tagged error payload** carrying
  the worker's formatted traceback instead of poisoning the fold;
* every cell has a **deadline** (``cell_timeout_s``): a worker killed
  mid-cell (its task is silently lost by ``multiprocessing.Pool``) is
  detected when the deadline lapses and the cell is **requeued**, up to
  ``max_attempts`` total attempts — exhausted cells land in
  ``MatrixOutcome.failed`` rather than aborting the matrix;
* with ``checkpoint=path`` the parent atomically rewrites a fingerprinted
  JSON checkpoint after every finished cell, and ``resume=path`` preloads
  finished cells from it, so an interrupted sweep continues where it
  died and reproduces the uninterrupted matrix exactly (every cell is a
  pure function of its own seed).

When ``jobs <= 1``, the plan has a single cell, or the platform lacks
``fork`` (e.g. some macOS/Windows configurations), execution gracefully
falls back to the same code path in-process — results are identical
either way because every cell derives all randomness from its own seed.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import traceback
from collections import OrderedDict
from dataclasses import dataclass, field
from time import monotonic, perf_counter, sleep
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.common.config import BaryonConfig, SimulationConfig
from repro.common.stats import CounterGroup, RatioStat
from repro.parallel.plan import Cell
from repro.resilience.checkpoint import (
    load_checkpoint,
    plan_fingerprint,
    write_checkpoint,
)
from repro.sim.results import SimResult
from repro.workloads import build_workload
from repro.workloads.base import Trace

#: Bound on the per-process trace cache (distinct (workload, seed,
#: length, capacity) streams kept alive at once).
TRACE_CACHE_CAPACITY = 32

#: Default wall-clock budget per cell attempt. Deliberately generous —
#: it includes pool queue wait, and its job is dead-worker detection,
#: not fine-grained scheduling.
DEFAULT_CELL_TIMEOUT_S = 600.0

_trace_cache: "OrderedDict[Tuple, Trace]" = OrderedDict()

# Per-worker execution context installed by the pool initializer; the
# in-process path passes the context explicitly instead.
_worker_context: Optional[Tuple[BaryonConfig, SimulationConfig, int]] = None


def fork_available() -> bool:
    """True when the platform supports ``fork`` worker processes."""
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_jobs(jobs: Optional[int], n_cells: int) -> int:
    """Effective worker count: clamp to the plan size, fall back to
    in-process execution when parallelism is unavailable or pointless."""
    if jobs is None or jobs <= 0:
        jobs = os.cpu_count() or 1
    if jobs <= 1 or n_cells <= 1 or not fork_available():
        return 1
    return min(jobs, n_cells)


def clear_trace_cache() -> None:
    """Drop the process-local trace cache (tests and benchmarks)."""
    _trace_cache.clear()


def _cell_trace(
    cell: Cell, config: BaryonConfig, n_accesses: int
) -> Tuple[Trace, bool]:
    """The cell's replay stream, generated at most once per process.

    Returns ``(replay_view, generated)`` — the view is immutable, so a
    cached stream cannot be perturbed by one design before another
    replays it.
    """
    key = (*cell.trace_key, n_accesses, config.layout.fast_capacity)
    cached = _trace_cache.get(key)
    generated = cached is None
    if cached is None:
        cached = build_workload(
            cell.workload,
            config.layout.fast_capacity,
            n_accesses=n_accesses,
            seed=cell.seed,
        )
        _trace_cache[key] = cached
        if len(_trace_cache) > TRACE_CACHE_CAPACITY:
            _trace_cache.popitem(last=False)
    else:
        _trace_cache.move_to_end(key)
    return cached.replay_view(), generated


def _execute_cell(
    cell: Cell,
    config: BaryonConfig,
    sim_config: SimulationConfig,
    n_accesses: int,
    attempt: int = 1,
) -> Dict[str, Any]:
    """Run one cell and package its result + counter shards as dicts.

    ``attempt`` is 1-based and carries no semantics here — the cell is a
    pure function of its seed, so a retry is bit-identical — but it lets
    fault-injection test doubles behave attempt-dependently.
    """
    from repro.analysis.experiments import run_cell

    trace, generated = _cell_trace(cell, config, n_accesses)
    result, controller = run_cell(
        cell.workload,
        cell.design,
        config,
        sim_config,
        n_accesses=n_accesses,
        seed=cell.seed,
        trace=trace,
    )
    inner = getattr(controller, "_inner", controller)
    devices: Dict[str, int] = {}
    if getattr(inner, "devices", None) is not None:
        for device in (inner.devices.fast, inner.devices.slow):
            for key, value in device.stats.as_dict().items():
                devices[f"{device.name}.{key}"] = value
    compression: Dict[str, int] = {}
    engine = getattr(getattr(inner, "oracle", None), "engine", None)
    if engine is not None:
        compression = engine.stats.as_dict()
    resilience: Dict[str, int] = {}
    for attr, prefix in (("faults", "fault"), ("recovery", "recovery"), ("checker", "checker")):
        component = getattr(inner, attr, None)
        if component is not None:
            for key, value in component.stats.as_dict().items():
                resilience[f"{prefix}.{key}"] = value
    return {
        "index": cell.index,
        "result": result.to_dict(),
        "controller": inner.stats.as_dict(),
        "devices": devices,
        "compression": compression,
        "resilience": resilience,
        "generated_trace": generated,
    }


def _error_payload(index: int, attempt: int, err: BaseException,
                   traceback_text: Optional[str]) -> Dict[str, Any]:
    return {
        "index": index,
        "error": {
            "type": type(err).__name__,
            "message": str(err),
            "traceback": traceback_text,
            "attempt": attempt,
        },
    }


def _safe_execute(
    cell: Cell,
    config: BaryonConfig,
    sim_config: SimulationConfig,
    n_accesses: int,
    attempt: int,
) -> Dict[str, Any]:
    """Run one cell; exceptions become tagged error payloads with the
    worker-side traceback, never a poisoned fold."""
    try:
        return _execute_cell(cell, config, sim_config, n_accesses, attempt)
    except Exception as err:
        return _error_payload(cell.index, attempt, err, traceback.format_exc())


def _init_worker(
    config: BaryonConfig, sim_config: SimulationConfig, n_accesses: int
) -> None:
    global _worker_context
    _worker_context = (config, sim_config, n_accesses)


def _worker_cell(task: Tuple[Cell, int]) -> Dict[str, Any]:
    assert _worker_context is not None, "worker used before initialization"
    cell, attempt = task
    config, sim_config, n_accesses = _worker_context
    return _safe_execute(cell, config, sim_config, n_accesses, attempt)


@dataclass
class MatrixOutcome:
    """Results of a plan plus merged counter shards and runner telemetry.

    ``counters``/``device_counters``/``compression_counters``/
    ``resilience_counters`` are the fold of every cell's per-component
    snapshots through :meth:`~repro.common.stats.CounterGroup.merge`;
    ``serve`` merges the per-cell served-fast ratios with
    :meth:`~repro.common.stats.RatioStat.merge`. ``traces_generated``
    counts actual generations — ``cells - traces_generated`` streams
    were replayed from cache. ``failed`` maps a cell key to its final
    error record (type, message, worker traceback, attempts) for cells
    that exhausted their retry budget; ``retries`` counts requeued
    attempts and ``resumed`` counts cells preloaded from a checkpoint.
    """

    results: Dict[Tuple, SimResult] = field(default_factory=dict)
    counters: CounterGroup = field(
        default_factory=lambda: CounterGroup("matrix.controller")
    )
    device_counters: CounterGroup = field(
        default_factory=lambda: CounterGroup("matrix.devices")
    )
    compression_counters: CounterGroup = field(
        default_factory=lambda: CounterGroup("matrix.compression")
    )
    resilience_counters: CounterGroup = field(
        default_factory=lambda: CounterGroup("matrix.resilience")
    )
    serve: RatioStat = field(default_factory=lambda: RatioStat("matrix.serve"))
    failed: Dict[Tuple, Dict[str, Any]] = field(default_factory=dict)
    cells: int = 0
    jobs: int = 1
    elapsed_s: float = 0.0
    traces_generated: int = 0
    retries: int = 0
    resumed: int = 0


def _group(name: str, snapshot: Dict[str, int]) -> CounterGroup:
    group = CounterGroup(name)
    for key, value in snapshot.items():
        group.inc(key, value)
    return group


def _fold(
    plan: Sequence[Cell],
    payloads: List[Dict[str, Any]],
    jobs: int,
    elapsed_s: float,
) -> MatrixOutcome:
    outcome = MatrixOutcome(cells=len(plan), jobs=jobs, elapsed_s=elapsed_s)
    by_index = {cell.index: cell for cell in plan}
    for payload in payloads:
        cell = by_index[payload["index"]]
        result = SimResult.from_dict(payload["result"])
        outcome.results[cell.key] = result
        outcome.counters.merge(_group("cell", payload["controller"]))
        outcome.device_counters.merge(_group("cell", payload["devices"]))
        outcome.compression_counters.merge(_group("cell", payload["compression"]))
        outcome.resilience_counters.merge(
            _group("cell", payload.get("resilience", {}))
        )
        shard = RatioStat("cell")
        shard.hits = result.served_fast
        shard.total = result.memory_accesses
        outcome.serve.merge(shard)
        outcome.traces_generated += bool(payload["generated_trace"])
    return outcome


def _run_serial(
    cells: Sequence[Cell],
    config: BaryonConfig,
    sim_config: SimulationConfig,
    n_accesses: int,
    max_attempts: int,
    note_success,
    failures: Dict[int, Dict[str, Any]],
) -> int:
    retries = 0
    for cell in cells:
        payload: Dict[str, Any] = {}
        for attempt in range(1, max_attempts + 1):
            payload = _safe_execute(cell, config, sim_config, n_accesses, attempt)
            if "error" not in payload:
                break
            if attempt < max_attempts:
                retries += 1
        if "error" in payload:
            failures[cell.index] = payload["error"]
        else:
            note_success(cell.index, payload)
    return retries


def _run_pool(
    cells: Sequence[Cell],
    config: BaryonConfig,
    sim_config: SimulationConfig,
    n_accesses: int,
    effective: int,
    max_attempts: int,
    cell_timeout_s: float,
    note_success,
    failures: Dict[int, Dict[str, Any]],
) -> int:
    """Dispatch cells to a fork pool with deadlines and requeue.

    ``multiprocessing.Pool`` silently respawns a killed worker and the
    task it was running never completes — so a lapsed deadline *is* the
    dead-worker signal, and the cell is resubmitted (the respawned
    worker re-derives everything from the cell seed).
    """
    retries = 0
    ctx = multiprocessing.get_context("fork")
    by_index = {cell.index: cell for cell in cells}
    with ctx.Pool(
        processes=effective,
        initializer=_init_worker,
        initargs=(config, sim_config, n_accesses),
    ) as pool:

        def _submit(index: int, attempt: int):
            handle = pool.apply_async(_worker_cell, ((by_index[index], attempt),))
            return attempt, handle, monotonic() + cell_timeout_s

        inflight = {cell.index: _submit(cell.index, 1) for cell in cells}
        while inflight:
            progressed = False
            for index in list(inflight):
                attempt, handle, deadline = inflight[index]
                if handle.ready():
                    progressed = True
                    try:
                        payload = handle.get()
                    except Exception as err:
                        # Transport-level failure (e.g. unpicklable
                        # payload); same shape as a worker-side error.
                        payload = _error_payload(index, attempt, err, None)
                    if "error" not in payload:
                        note_success(index, payload)
                        del inflight[index]
                    elif attempt < max_attempts:
                        retries += 1
                        inflight[index] = _submit(index, attempt + 1)
                    else:
                        failures[index] = payload["error"]
                        del inflight[index]
                elif monotonic() > deadline:
                    progressed = True
                    if attempt < max_attempts:
                        retries += 1
                        inflight[index] = _submit(index, attempt + 1)
                    else:
                        failures[index] = {
                            "type": "TimeoutError",
                            "message": (
                                f"cell {index} exceeded {cell_timeout_s:.0f}s "
                                f"on attempt {attempt} (worker presumed dead)"
                            ),
                            "traceback": None,
                            "attempt": attempt,
                        }
                        del inflight[index]
            if inflight and not progressed:
                sleep(0.01)
    return retries


def run_plan(
    plan: Sequence[Cell],
    config: BaryonConfig,
    sim_config: SimulationConfig,
    n_accesses: int = 50_000,
    jobs: int = 1,
    *,
    max_attempts: int = 2,
    cell_timeout_s: float = DEFAULT_CELL_TIMEOUT_S,
    checkpoint: Optional[str] = None,
    resume: Optional[str] = None,
) -> MatrixOutcome:
    """Execute a cell plan, in-process or across a ``fork`` pool.

    The outcome is independent of ``jobs``, retries, and resumption —
    the parallel/serial equivalence tests pin this down. Failed cells
    (after ``max_attempts`` attempts each) are reported in
    ``MatrixOutcome.failed`` instead of aborting the whole matrix.

    ``checkpoint`` names a JSON file atomically rewritten after every
    finished cell; ``resume`` preloads finished cells from such a file
    (missing file: start fresh; malformed or wrong-plan file: raise
    :class:`~repro.common.errors.ConfigurationError`). The two may name
    the same path.
    """
    if max_attempts < 1:
        raise ValueError("max_attempts must be >= 1")
    start = perf_counter()
    effective = resolve_jobs(jobs, len(plan))
    fingerprint = plan_fingerprint(plan, n_accesses, config, sim_config)
    done: Dict[int, Dict[str, Any]] = {}
    resumed = 0
    if resume is not None and os.path.exists(resume):
        wanted = {cell.index for cell in plan}
        done = {
            index: payload
            for index, payload in load_checkpoint(resume, fingerprint).items()
            if index in wanted
        }
        resumed = len(done)
    pending = [cell for cell in plan if cell.index not in done]
    failures: Dict[int, Dict[str, Any]] = {}

    def note_success(index: int, payload: Dict[str, Any]) -> None:
        done[index] = payload
        if checkpoint is not None:
            write_checkpoint(checkpoint, fingerprint, done)

    if not pending:
        retries = 0
    elif effective <= 1:
        retries = _run_serial(
            pending, config, sim_config, n_accesses, max_attempts,
            note_success, failures,
        )
    else:
        retries = _run_pool(
            pending, config, sim_config, n_accesses, effective, max_attempts,
            cell_timeout_s, note_success, failures,
        )

    outcome = _fold(plan, list(done.values()), effective, perf_counter() - start)
    outcome.retries = retries
    outcome.resumed = resumed
    by_index = {cell.index: cell for cell in plan}
    for index, error in failures.items():
        outcome.failed[by_index[index].key] = dict(error)
    return outcome
