"""Process-pool execution of experiment matrix plans.

The runner turns a deterministic cell plan (:mod:`repro.parallel.plan`)
into a :class:`MatrixOutcome`:

* cells are sharded across a ``fork`` process pool (``jobs`` workers) in
  contiguous chunks, so cells replaying the same (workload, seed) stream
  land on the same worker and hit its per-process trace cache;
* each worker serializes its :class:`~repro.sim.results.SimResult` and
  per-component counter snapshots back as plain dicts (pickle-free
  payloads, transport-agnostic);
* the parent folds the shards with the ``CounterGroup.merge`` /
  ``RatioStat.merge`` aggregation APIs.

When ``jobs <= 1``, the plan has a single cell, or the platform lacks
``fork`` (e.g. some macOS/Windows configurations), execution gracefully
falls back to the same code path in-process — results are identical
either way because every cell derives all randomness from its own seed.
"""

from __future__ import annotations

import math
import multiprocessing
import os
from collections import OrderedDict
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.common.config import BaryonConfig, SimulationConfig
from repro.common.stats import CounterGroup, RatioStat
from repro.parallel.plan import Cell
from repro.sim.results import SimResult
from repro.workloads import build_workload
from repro.workloads.base import Trace

#: Bound on the per-process trace cache (distinct (workload, seed,
#: length, capacity) streams kept alive at once).
TRACE_CACHE_CAPACITY = 32

_trace_cache: "OrderedDict[Tuple, Trace]" = OrderedDict()

# Per-worker execution context installed by the pool initializer; the
# in-process path passes the context explicitly instead.
_worker_context: Optional[Tuple[BaryonConfig, SimulationConfig, int]] = None


def fork_available() -> bool:
    """True when the platform supports ``fork`` worker processes."""
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_jobs(jobs: Optional[int], n_cells: int) -> int:
    """Effective worker count: clamp to the plan size, fall back to
    in-process execution when parallelism is unavailable or pointless."""
    if jobs is None or jobs <= 0:
        jobs = os.cpu_count() or 1
    if jobs <= 1 or n_cells <= 1 or not fork_available():
        return 1
    return min(jobs, n_cells)


def clear_trace_cache() -> None:
    """Drop the process-local trace cache (tests and benchmarks)."""
    _trace_cache.clear()


def _cell_trace(
    cell: Cell, config: BaryonConfig, n_accesses: int
) -> Tuple[Trace, bool]:
    """The cell's replay stream, generated at most once per process.

    Returns ``(replay_view, generated)`` — the view is immutable, so a
    cached stream cannot be perturbed by one design before another
    replays it.
    """
    key = (*cell.trace_key, n_accesses, config.layout.fast_capacity)
    cached = _trace_cache.get(key)
    generated = cached is None
    if cached is None:
        cached = build_workload(
            cell.workload,
            config.layout.fast_capacity,
            n_accesses=n_accesses,
            seed=cell.seed,
        )
        _trace_cache[key] = cached
        if len(_trace_cache) > TRACE_CACHE_CAPACITY:
            _trace_cache.popitem(last=False)
    else:
        _trace_cache.move_to_end(key)
    return cached.replay_view(), generated


def _execute_cell(
    cell: Cell,
    config: BaryonConfig,
    sim_config: SimulationConfig,
    n_accesses: int,
) -> Dict[str, Any]:
    """Run one cell and package its result + counter shards as dicts."""
    from repro.analysis.experiments import run_cell

    trace, generated = _cell_trace(cell, config, n_accesses)
    result, controller = run_cell(
        cell.workload,
        cell.design,
        config,
        sim_config,
        n_accesses=n_accesses,
        seed=cell.seed,
        trace=trace,
    )
    inner = getattr(controller, "_inner", controller)
    devices: Dict[str, int] = {}
    if getattr(inner, "devices", None) is not None:
        for device in (inner.devices.fast, inner.devices.slow):
            for key, value in device.stats.as_dict().items():
                devices[f"{device.name}.{key}"] = value
    compression: Dict[str, int] = {}
    engine = getattr(getattr(inner, "oracle", None), "engine", None)
    if engine is not None:
        compression = engine.stats.as_dict()
    return {
        "index": cell.index,
        "result": result.to_dict(),
        "controller": inner.stats.as_dict(),
        "devices": devices,
        "compression": compression,
        "generated_trace": generated,
    }


def _init_worker(
    config: BaryonConfig, sim_config: SimulationConfig, n_accesses: int
) -> None:
    global _worker_context
    _worker_context = (config, sim_config, n_accesses)


def _worker_cell(cell: Cell) -> Dict[str, Any]:
    assert _worker_context is not None, "worker used before initialization"
    config, sim_config, n_accesses = _worker_context
    return _execute_cell(cell, config, sim_config, n_accesses)


@dataclass
class MatrixOutcome:
    """Results of a plan plus merged counter shards and runner telemetry.

    ``counters``/``device_counters``/``compression_counters`` are the
    fold of every cell's per-component snapshots through
    :meth:`~repro.common.stats.CounterGroup.merge`; ``serve`` merges the
    per-cell served-fast ratios with
    :meth:`~repro.common.stats.RatioStat.merge`. ``traces_generated``
    counts actual generations — ``cells - traces_generated`` streams
    were replayed from cache.
    """

    results: Dict[Tuple, SimResult] = field(default_factory=dict)
    counters: CounterGroup = field(
        default_factory=lambda: CounterGroup("matrix.controller")
    )
    device_counters: CounterGroup = field(
        default_factory=lambda: CounterGroup("matrix.devices")
    )
    compression_counters: CounterGroup = field(
        default_factory=lambda: CounterGroup("matrix.compression")
    )
    serve: RatioStat = field(default_factory=lambda: RatioStat("matrix.serve"))
    cells: int = 0
    jobs: int = 1
    elapsed_s: float = 0.0
    traces_generated: int = 0


def _group(name: str, snapshot: Dict[str, int]) -> CounterGroup:
    group = CounterGroup(name)
    for key, value in snapshot.items():
        group.inc(key, value)
    return group


def _fold(
    plan: Sequence[Cell],
    payloads: List[Dict[str, Any]],
    jobs: int,
    elapsed_s: float,
) -> MatrixOutcome:
    outcome = MatrixOutcome(cells=len(plan), jobs=jobs, elapsed_s=elapsed_s)
    by_index = {cell.index: cell for cell in plan}
    for payload in payloads:
        cell = by_index[payload["index"]]
        result = SimResult.from_dict(payload["result"])
        outcome.results[cell.key] = result
        outcome.counters.merge(_group("cell", payload["controller"]))
        outcome.device_counters.merge(_group("cell", payload["devices"]))
        outcome.compression_counters.merge(_group("cell", payload["compression"]))
        shard = RatioStat("cell")
        shard.hits = result.served_fast
        shard.total = result.memory_accesses
        outcome.serve.merge(shard)
        outcome.traces_generated += bool(payload["generated_trace"])
    return outcome


def run_plan(
    plan: Sequence[Cell],
    config: BaryonConfig,
    sim_config: SimulationConfig,
    n_accesses: int = 50_000,
    jobs: int = 1,
) -> MatrixOutcome:
    """Execute a cell plan, in-process or across a ``fork`` pool.

    Shards are chunked contiguously (``ceil(cells / jobs)`` per chunk)
    over the workload-major plan order, so every (workload, seed) stream
    is generated at most once per worker. The outcome is independent of
    ``jobs`` — the parallel/serial equivalence test pins this down.
    """
    start = perf_counter()
    effective = resolve_jobs(jobs, len(plan))
    if effective <= 1:
        payloads = [
            _execute_cell(cell, config, sim_config, n_accesses) for cell in plan
        ]
    else:
        ctx = multiprocessing.get_context("fork")
        chunksize = max(1, math.ceil(len(plan) / effective))
        with ctx.Pool(
            processes=effective,
            initializer=_init_worker,
            initargs=(config, sim_config, n_accesses),
        ) as pool:
            payloads = pool.map(_worker_cell, plan, chunksize=chunksize)
    return _fold(plan, payloads, effective, perf_counter() - start)
