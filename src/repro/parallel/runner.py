"""Process-pool execution of experiment matrix plans.

The runner turns a deterministic cell plan (:mod:`repro.parallel.plan`)
into a :class:`MatrixOutcome`:

* cells are dispatched to a ``fork`` process pool (``jobs`` workers);
  each worker serializes its :class:`~repro.sim.results.SimResult` and
  per-component counter snapshots back as plain dicts (pickle-free
  payloads, transport-agnostic);
* the parent folds the shards with the ``CounterGroup.merge`` /
  ``RatioStat.merge`` aggregation APIs.

Crash safety (``repro.resilience``):

* a cell that raises comes back as a **tagged error payload** carrying
  the worker's formatted traceback instead of poisoning the fold;
* every cell has a **deadline** (``cell_timeout_s``): a worker killed
  mid-cell (its task is silently lost by ``multiprocessing.Pool``) is
  detected when the deadline lapses and the cell is **requeued**, up to
  ``max_attempts`` total attempts — exhausted cells land in
  ``MatrixOutcome.failed`` rather than aborting the matrix;
* with ``checkpoint=path`` the parent durably rewrites a fingerprinted
  checkpoint after every finished cell, and ``resume=path`` preloads
  finished cells from it — salvaging digest-verified cells out of a
  torn/corrupted file — so an interrupted sweep continues where it
  died and reproduces the uninterrupted matrix exactly (every cell is a
  pure function of its own seed).

Service-grade hardening (exercised by ``repro chaos-soak``):

* **hung-worker detection** distinct from dead: a cell whose heartbeats
  keep arriving while ``done`` stays flat past ``progress_timeout_s`` is
  requeued with reason ``WorkerHungError`` instead of waiting out the
  full dead-worker deadline;
* a **poison-cell circuit breaker**: a cell that violently takes down
  ``quarantine_after`` consecutive workers is set aside in
  ``MatrixOutcome.quarantined`` with its partial progress — degraded
  result, not a failed sweep;
* a **global retry budget** (``retry_budget``) across all cells, with
  exponential backoff + deterministic jitter (``backoff_base_s``)
  between a cell's attempts;
* **graceful SIGINT/SIGTERM** (``handle_signals=True``): stop
  dispatching, drain in-flight cells within a bounded grace window,
  leave a resumable checkpoint, report ``MatrixOutcome.interrupted``;
* an **end-of-run integrity audit** re-verifying the merged counters
  and per-cell results against the manifest's SHA-256 digests
  (``MatrixOutcome.audit``).

Everything the orchestration layer itself does is counted in
``MatrixOutcome.orchestration`` (requeues by reason, quarantines,
checkpoint write failures, salvage results, injected chaos).

When ``jobs <= 1``, the plan has a single cell, or the platform lacks
``fork`` (e.g. some macOS/Windows configurations), execution gracefully
falls back to the same code path in-process — results are identical
either way because every cell derives all randomness from its own seed.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import queue as queue_mod
import signal
import threading
import traceback
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from time import monotonic, perf_counter, sleep
from time import time as _wall
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.common.config import BaryonConfig, SimulationConfig
from repro.common.errors import CheckpointCorruptError, ConfigurationError
from repro.common.fsio import remove_stale_temps
from repro.common.stats import CounterGroup, RatioStat
from repro.obs.aggregate import merge_snapshot
from repro.obs.manifest import (
    audit_manifest,
    build_manifest,
    load_manifest,
    result_digests,
    write_manifest,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import make_heartbeat
from repro.obs.spans import NULL_SPANS, Span, SpanTracer
from repro.parallel.plan import Cell
from repro.parallel.telemetry import SweepTelemetry, WorkerTelemetry
from repro.resilience.chaos import (
    ChaosInjector,
    ChaosPlan,
    WorkerChaos,
    write_effect_mutator,
)
from repro.resilience.checkpoint import (
    load_checkpoint,
    plan_fingerprint,
    salvage_checkpoint,
    write_checkpoint,
)
from repro.resilience.recovery import requeue_backoff_s
from repro.sim.results import SimResult
from repro.workloads import build_workload
from repro.workloads.base import Trace

#: Bound on the per-process trace cache (distinct (workload, seed,
#: length, capacity) streams kept alive at once).
TRACE_CACHE_CAPACITY = 32

#: Default wall-clock budget per cell attempt. Deliberately generous —
#: it includes pool queue wait, and its job is dead-worker detection,
#: not fine-grained scheduling.
DEFAULT_CELL_TIMEOUT_S = 600.0

_trace_cache: "OrderedDict[Tuple, Trace]" = OrderedDict()

# The heartbeat queue installed by the pool initializer. This is the
# only per-worker state bound at fork time: everything else a cell
# needs (configs, access count, telemetry spec) travels inside each
# submitted task, so one long-lived pool can serve differently
# configured jobs back to back.
_worker_beat_queue = None


def fork_available() -> bool:
    """True when the platform supports ``fork`` worker processes."""
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_jobs(jobs: Optional[int], n_cells: int) -> int:
    """Effective worker count: clamp to the plan size, fall back to
    in-process execution when parallelism is unavailable or pointless."""
    if jobs is None or jobs <= 0:
        jobs = os.cpu_count() or 1
    if jobs <= 1 or n_cells <= 1 or not fork_available():
        return 1
    return min(jobs, n_cells)


def clear_trace_cache() -> None:
    """Drop the process-local trace cache (tests and benchmarks)."""
    _trace_cache.clear()


def _cell_trace(
    cell: Cell, config: BaryonConfig, n_accesses: int
) -> Tuple[Trace, bool]:
    """The cell's replay stream, generated at most once per process.

    Returns ``(replay_view, generated)`` — the view is immutable, so a
    cached stream cannot be perturbed by one design before another
    replays it.
    """
    key = (*cell.trace_key, n_accesses, config.layout.fast_capacity)
    cached = _trace_cache.get(key)
    generated = cached is None
    if cached is None:
        cached = build_workload(
            cell.workload,
            config.layout.fast_capacity,
            n_accesses=n_accesses,
            seed=cell.seed,
        )
        _trace_cache[key] = cached
        if len(_trace_cache) > TRACE_CACHE_CAPACITY:
            _trace_cache.popitem(last=False)
    else:
        _trace_cache.move_to_end(key)
    return cached.replay_view(), generated


def _execute_cell(
    cell: Cell,
    config: BaryonConfig,
    sim_config: SimulationConfig,
    n_accesses: int,
    attempt: int = 1,
    telemetry: Optional[WorkerTelemetry] = None,
    beat=None,
) -> Dict[str, Any]:
    """Run one cell and package its result + counter shards as dicts.

    ``attempt`` is 1-based and carries no semantics here — the cell is a
    pure function of its seed, so a retry is bit-identical — but it lets
    fault-injection test doubles behave attempt-dependently.

    ``telemetry`` (a :class:`~repro.parallel.telemetry.WorkerTelemetry`)
    turns on worker-side spans and/or a private metrics registry; both
    travel home inside the payload (``"spans"``/``"metrics"`` keys,
    absent on untelemetered runs). ``beat`` is a callable receiving one
    heartbeat dict every ``telemetry.heartbeat_every`` accesses.
    """
    from repro.analysis.experiments import run_cell

    spans = NULL_SPANS
    registry = None
    if telemetry is not None:
        if telemetry.spans:
            spans = SpanTracer(origin=f"c{cell.index}a{attempt}")
        if telemetry.metrics:
            registry = MetricsRegistry()
    progress = None
    heartbeat_every = telemetry.heartbeat_every if telemetry is not None else 0
    # Worker-side orchestration chaos (kills, hangs, heartbeat loss)
    # rides the heartbeat path; ``getattr`` so pre-chaos WorkerTelemetry
    # test doubles keep working.
    chaos_plan = getattr(telemetry, "chaos", None)
    if beat is not None and chaos_plan is not None and chaos_plan.wants_worker_chaos:
        worker_chaos = WorkerChaos(chaos_plan, cell.index, attempt)

        def beat(event, _chaos=worker_chaos, _emit=beat):
            _chaos.on_beat(_emit, event)

    if beat is not None and heartbeat_every > 0:
        cell_start = perf_counter()
        pid = os.getpid()

        def progress(done: int, total: int, _cell=cell, _attempt=attempt) -> None:
            try:
                beat(make_heartbeat(
                    _cell, _attempt, done, total,
                    perf_counter() - cell_start, pid,
                ))
            except Exception:
                pass  # a torn heartbeat channel must never fail the cell

    with spans.span("cell.trace", workload=cell.workload, seed=cell.seed):
        trace, generated = _cell_trace(cell, config, n_accesses)
    if progress is not None:
        progress(0, n_accesses)
    result, controller = run_cell(
        cell.workload,
        cell.design,
        config,
        sim_config,
        n_accesses=n_accesses,
        seed=cell.seed,
        trace=trace,
        metrics=registry,
        spans=spans if spans.enabled else None,
        progress=progress,
        progress_every=heartbeat_every if heartbeat_every > 0 else 2048,
    )
    inner = getattr(controller, "_inner", controller)
    devices: Dict[str, int] = {}
    if getattr(inner, "devices", None) is not None:
        for device in (inner.devices.fast, inner.devices.slow):
            for key, value in device.stats.as_dict().items():
                devices[f"{device.name}.{key}"] = value
    compression: Dict[str, int] = {}
    engine = getattr(getattr(inner, "oracle", None), "engine", None)
    if engine is not None:
        compression = engine.stats.as_dict()
    resilience: Dict[str, int] = {}
    for attr, prefix in (("faults", "fault"), ("recovery", "recovery"), ("checker", "checker")):
        component = getattr(inner, attr, None)
        if component is not None:
            for key, value in component.stats.as_dict().items():
                resilience[f"{prefix}.{key}"] = value
    payload: Dict[str, Any] = {
        "index": cell.index,
        "result": result.to_dict(),
        "controller": inner.stats.as_dict(),
        "devices": devices,
        "compression": compression,
        "resilience": resilience,
        "generated_trace": generated,
    }
    if spans.enabled:
        # Resilience activity surfaces as span events on a summary span,
        # so faults/recoveries are visible in the sweep tree without a
        # separate record type.
        summary = spans.start("cell.collect", index=cell.index)
        for key, value in sorted(resilience.items()):
            if value:
                spans.event(summary, f"resilience.{key}", count=value)
        spans.end(summary)
        payload["spans"] = spans.export()
    if registry is not None:
        payload["metrics"] = registry.to_json()
    return payload


def _error_payload(index: int, attempt: int, err: BaseException,
                   traceback_text: Optional[str]) -> Dict[str, Any]:
    return {
        "index": index,
        "error": {
            "type": type(err).__name__,
            "message": str(err),
            "traceback": traceback_text,
            "attempt": attempt,
        },
    }


def _safe_execute(
    cell: Cell,
    config: BaryonConfig,
    sim_config: SimulationConfig,
    n_accesses: int,
    attempt: int,
    telemetry: Optional[WorkerTelemetry] = None,
    beat=None,
) -> Dict[str, Any]:
    """Run one cell; exceptions become tagged error payloads with the
    worker-side traceback, never a poisoned fold."""
    try:
        # Positional-only call when untelemetered, so test doubles that
        # monkeypatch ``_execute_cell`` with the historical five-argument
        # signature keep working.
        if telemetry is None and beat is None:
            return _execute_cell(cell, config, sim_config, n_accesses, attempt)
        return _execute_cell(
            cell, config, sim_config, n_accesses, attempt,
            telemetry=telemetry, beat=beat,
        )
    except Exception as err:
        return _error_payload(cell.index, attempt, err, traceback.format_exc())


def _init_worker(beat_queue=None) -> None:
    # Forked workers inherit the parent's signal disposition, including
    # any _InterruptGuard handler — which would swallow the SIGTERM that
    # Pool.terminate() sends and deadlock the pool's join. Restore the
    # default SIGTERM action and ignore SIGINT (a terminal ^C signals
    # the whole foreground group; the parent alone drains gracefully).
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    global _worker_beat_queue
    _worker_beat_queue = beat_queue


def _worker_cell(task: Tuple) -> Dict[str, Any]:
    """Pool-side entry point: unpack one self-contained task.

    ``task`` is ``(cell, attempt, config, sim_config, n_accesses,
    worker-telemetry spec)`` — the full execution context, so the pool
    itself is job-agnostic. Beats flow only when the task's spec asks
    for them; an untelemetered task on a queue-bearing pool emits none.
    """
    cell, attempt, config, sim_config, n_accesses, spec = task
    beat = (
        _worker_beat_queue.put
        if _worker_beat_queue is not None
        and spec is not None
        and spec.heartbeat_every > 0
        else None
    )
    return _safe_execute(
        cell, config, sim_config, n_accesses, attempt,
        telemetry=spec, beat=beat,
    )


class _ImmediateHandle:
    """AsyncResult-shaped wrapper for a synchronously computed payload."""

    __slots__ = ("_value",)

    def __init__(self, value: Dict[str, Any]) -> None:
        self._value = value

    def ready(self) -> bool:
        return True

    def get(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        return self._value


class CellExecutor:
    """Runs plan cells; owns (or forgoes) the fork process pool.

    This splits "run a cell" from "own the process pool":
    :func:`run_plan` builds a private executor per sweep by default —
    exactly the historical behavior — while a long-running service
    constructs one ``CellExecutor`` and passes it to every job's
    ``run_plan`` call. The pool and its heartbeat queue then persist
    across jobs, and each submitted task carries its own
    ``(config, sim_config, n_accesses, telemetry spec)``, so
    back-to-back jobs may differ in everything but the worker count.

    ``jobs <= 1`` — or a platform without ``fork`` — yields an
    in-process executor (``pooled`` is False): :meth:`submit` runs the
    cell synchronously and returns an already-completed handle.
    """

    def __init__(self, jobs: Optional[int] = 1) -> None:
        workers = jobs if jobs is not None and jobs > 0 else (os.cpu_count() or 1)
        if workers > 1 and not fork_available():
            workers = 1
        self.workers = workers
        self.beat_queue = None
        self.closed = False
        self._pool = None
        if workers > 1:
            ctx = multiprocessing.get_context("fork")
            self.beat_queue = ctx.Queue()
            self._pool = ctx.Pool(
                processes=workers,
                initializer=_init_worker,
                initargs=(self.beat_queue,),
            )

    @property
    def pooled(self) -> bool:
        return self._pool is not None

    def submit(
        self,
        cell: Cell,
        config: BaryonConfig,
        sim_config: SimulationConfig,
        n_accesses: int,
        attempt: int = 1,
        spec: Optional[WorkerTelemetry] = None,
    ):
        """Dispatch one cell attempt; returns an ``AsyncResult``-shaped
        handle (``ready()``/``get()``)."""
        if self.closed:
            raise RuntimeError("submit() on a closed CellExecutor")
        task = (cell, attempt, config, sim_config, n_accesses, spec)
        if self._pool is None:
            return _ImmediateHandle(_safe_execute(
                cell, config, sim_config, n_accesses, attempt,
                telemetry=spec, beat=None,
            ))
        return self._pool.apply_async(_worker_cell, (task,))

    def discard_beats(self) -> int:
        """Drop queued heartbeats; returns how many were dropped.

        A job that abandons in-flight cells (interrupt grace expired)
        can leave stale workers beating into the shared queue — the next
        job on this executor must not let those refresh its deadlines.
        """
        if self.beat_queue is None:
            return 0
        dropped = 0
        while True:
            try:
                self.beat_queue.get_nowait()
            except (queue_mod.Empty, OSError, EOFError):
                return dropped
            dropped += 1

    def close(self) -> None:
        """Terminate the pool and tear down the heartbeat channel."""
        if self.closed:
            return
        self.closed = True
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
        if self.beat_queue is not None:
            self.beat_queue.close()
            self.beat_queue.join_thread()

    def __enter__(self) -> "CellExecutor":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


class _RetryBudget:
    """Global requeue allowance across the whole plan (``None`` = ∞).

    One budget object is shared by every cell: a sweep where many cells
    flake burns the budget fast and fails loudly instead of retrying
    forever — a service-side guard, distinct from per-cell
    ``max_attempts``.
    """

    def __init__(self, limit: Optional[int]) -> None:
        self.limit = limit
        self.used = 0

    def take(self) -> bool:
        if self.limit is not None and self.used >= self.limit:
            return False
        self.used += 1
        return True


class _Inflight:
    """Book-keeping for one submitted cell attempt.

    Two independent deadlines hang off it: *dead* (no heartbeat at all
    for ``cell_timeout_s`` — the worker's process is gone) and *hung*
    (beats keep arriving but ``done`` never advances for
    ``progress_timeout_s`` — the worker is alive but stalled).
    """

    __slots__ = (
        "attempt", "handle", "submitted_t",
        "last_beat_t", "last_done", "last_total", "last_progress_t",
    )

    def __init__(self, attempt: int, handle, now: float) -> None:
        self.attempt = attempt
        self.handle = handle
        self.submitted_t = now
        self.last_beat_t = now
        self.last_done = -1  # no beat seen yet
        self.last_total = 0
        self.last_progress_t = now

    def note_beat(self, event: Dict[str, Any], now: float) -> bool:
        """Fold one heartbeat in; returns ``True`` when it refreshed the
        deadlines. A beat from a superseded attempt must NOT reset the
        current attempt's deadline — only an exact attempt match counts
        (the stale worker of a requeued cell may beat for a long time).
        """
        if event.get("attempt") != self.attempt:
            return False
        self.last_beat_t = now
        done = event.get("done")
        if isinstance(done, int) and done > self.last_done:
            self.last_done = done
            self.last_progress_t = now
        total = event.get("total")
        if isinstance(total, int):
            self.last_total = total
        return True

    def dead(self, now: float, cell_timeout_s: float) -> bool:
        return now > self.last_beat_t + cell_timeout_s

    def hung(self, now: float, progress_timeout_s: Optional[float]) -> bool:
        """Stalled progress with a live heartbeat stream. Requires at
        least one beat (queue wait is not a stall) and beats recent
        enough that the dead path is not the right diagnosis."""
        if progress_timeout_s is None or self.last_done < 0:
            return False
        return (
            now > self.last_progress_t + progress_timeout_s
            and now - self.last_beat_t <= progress_timeout_s
        )


@dataclass
class MatrixOutcome:
    """Results of a plan plus merged counter shards and runner telemetry.

    ``counters``/``device_counters``/``compression_counters``/
    ``resilience_counters`` are the fold of every cell's per-component
    snapshots through :meth:`~repro.common.stats.CounterGroup.merge`;
    ``serve`` merges the per-cell served-fast ratios with
    :meth:`~repro.common.stats.RatioStat.merge`. ``traces_generated``
    counts actual generations — ``cells - traces_generated`` streams
    were replayed from cache. ``failed`` maps a cell key to its final
    error record (type, message, worker traceback, attempts) for cells
    that exhausted their retry budget; ``retries`` counts requeued
    attempts and ``resumed`` counts cells preloaded from a checkpoint.

    ``metrics`` is the cross-shard
    :class:`~repro.obs.metrics.MetricsRegistry` — every worker
    registry's snapshot folded with a ``shard`` label (the cell's plan
    index) through :func:`repro.obs.aggregate.merge_snapshot` — present
    only when the sweep ran with
    :attr:`~repro.parallel.telemetry.SweepTelemetry.collect_metrics`.
    """

    results: Dict[Tuple, SimResult] = field(default_factory=dict)
    counters: CounterGroup = field(
        default_factory=lambda: CounterGroup("matrix.controller")
    )
    device_counters: CounterGroup = field(
        default_factory=lambda: CounterGroup("matrix.devices")
    )
    compression_counters: CounterGroup = field(
        default_factory=lambda: CounterGroup("matrix.compression")
    )
    resilience_counters: CounterGroup = field(
        default_factory=lambda: CounterGroup("matrix.resilience")
    )
    serve: RatioStat = field(default_factory=lambda: RatioStat("matrix.serve"))
    failed: Dict[Tuple, Dict[str, Any]] = field(default_factory=dict)
    cells: int = 0
    jobs: int = 1
    elapsed_s: float = 0.0
    traces_generated: int = 0
    retries: int = 0
    resumed: int = 0
    metrics: Optional[MetricsRegistry] = None
    #: Cells set aside by the poison-cell circuit breaker: key → record
    #: with the failure reasons and the last observed partial progress.
    quarantined: Dict[Tuple, Dict[str, Any]] = field(default_factory=dict)
    #: True when SIGINT/SIGTERM (or injected interrupt chaos) stopped
    #: the sweep before every cell finished; the checkpoint is resumable.
    interrupted: bool = False
    #: Cells recovered out of a damaged checkpoint on resume.
    salvaged: int = 0
    #: What the orchestration layer itself did: requeues by reason,
    #: quarantines, checkpoint write errors, salvage, injected chaos.
    orchestration: CounterGroup = field(
        default_factory=lambda: CounterGroup("matrix.orchestration")
    )
    #: End-of-run integrity audit vs the manifest on disk (``None`` when
    #: no manifest was written).
    audit: Optional[Dict[str, Any]] = None


def _group(name: str, snapshot: Dict[str, int]) -> CounterGroup:
    group = CounterGroup(name)
    for key, value in snapshot.items():
        group.inc(key, value)
    return group


def _fold(
    plan: Sequence[Cell],
    payloads: List[Dict[str, Any]],
    jobs: int,
    elapsed_s: float,
) -> MatrixOutcome:
    outcome = MatrixOutcome(cells=len(plan), jobs=jobs, elapsed_s=elapsed_s)
    by_index = {cell.index: cell for cell in plan}
    for payload in payloads:
        cell = by_index[payload["index"]]
        result = SimResult.from_dict(payload["result"])
        outcome.results[cell.key] = result
        outcome.counters.merge(_group("cell", payload["controller"]))
        outcome.device_counters.merge(_group("cell", payload["devices"]))
        outcome.compression_counters.merge(_group("cell", payload["compression"]))
        outcome.resilience_counters.merge(
            _group("cell", payload.get("resilience", {}))
        )
        shard = RatioStat("cell")
        shard.hits = result.served_fast
        shard.total = result.memory_accesses
        outcome.serve.merge(shard)
        outcome.traces_generated += bool(payload["generated_trace"])
        snapshot = payload.get("metrics")
        if snapshot:
            if outcome.metrics is None:
                outcome.metrics = MetricsRegistry()
            merge_snapshot(outcome.metrics, snapshot, shard=str(cell.index))
    return outcome


def _telemetry_parts(telemetry: Optional[SweepTelemetry]):
    """``(span tracer, progress tracker, worker spec)`` with the null
    tracer standing in when spans are off."""
    if telemetry is None:
        return NULL_SPANS, None, None
    spans = telemetry.spans if telemetry.spans is not None else NULL_SPANS
    return spans, telemetry.progress, telemetry.worker_spec()


def _cell_event(etype: str, cell: Cell, attempt: int, **fields: Any) -> Dict[str, Any]:
    """A parent-side ``cell_done``/``cell_failed`` progress event (see
    :data:`repro.obs.progress.HEARTBEAT_SCHEMA`)."""
    event: Dict[str, Any] = {
        "type": etype,
        "ts": _wall(),
        "cell": cell.index,
        "workload": cell.workload,
        "design": cell.design,
        "seed": cell.seed,
        "attempt": attempt,
    }
    event.update(fields)
    return event


def _run_serial(
    cells: Sequence[Cell],
    config: BaryonConfig,
    sim_config: SimulationConfig,
    n_accesses: int,
    max_attempts: int,
    note_success,
    failures: Dict[int, Dict[str, Any]],
    telemetry: Optional[SweepTelemetry] = None,
    parent_span: Optional[Span] = None,
    *,
    retry_budget: Optional[_RetryBudget] = None,
    backoff_base_s: float = 0.0,
    backoff_seed: int = 0,
    stop: Optional[threading.Event] = None,
    orchestration: Optional[CounterGroup] = None,
) -> int:
    retries = 0
    orchestration = (
        orchestration if orchestration is not None
        else CounterGroup("matrix.orchestration")
    )
    spans, progress, spec = _telemetry_parts(telemetry)
    beat = progress.on_event if progress is not None else None
    for cell in cells:
        if stop is not None and stop.is_set():
            break
        payload: Dict[str, Any] = {}
        attempt = 1
        cell_span = spans.start(
            "cell", parent=parent_span, index=cell.index,
            workload=cell.workload, design=cell.design, seed=cell.seed,
        ) if spans.enabled else None
        started = perf_counter()
        for attempt in range(1, max_attempts + 1):
            if spec is None and beat is None:
                payload = _safe_execute(
                    cell, config, sim_config, n_accesses, attempt
                )
            else:
                payload = _safe_execute(
                    cell, config, sim_config, n_accesses, attempt,
                    telemetry=spec, beat=beat,
                )
            if "error" not in payload:
                break
            if attempt < max_attempts:
                if retry_budget is not None and not retry_budget.take():
                    orchestration.inc("retry_budget_exhausted")
                    spans.event(cell_span, "retry_budget_exhausted", attempt=attempt)
                    break
                retries += 1
                orchestration.inc("requeue_error")
                spans.event(
                    cell_span, "requeue",
                    attempt=attempt, error=payload["error"]["type"],
                )
                if backoff_base_s > 0.0:
                    sleep(requeue_backoff_s(
                        backoff_base_s, attempt, cell.index, backoff_seed,
                    ))
        if "error" in payload:
            failures[cell.index] = payload["error"]
            spans.end(cell_span, error=payload["error"]["type"])
            if progress is not None:
                progress.on_event(_cell_event(
                    "cell_failed", cell, attempt,
                    error=payload["error"]["type"],
                ))
        else:
            if cell_span is not None and payload.get("spans"):
                spans.adopt(payload["spans"], parent=cell_span)
            spans.end(cell_span, attempt=attempt)
            note_success(cell.index, payload)
            if progress is not None:
                progress.on_event(_cell_event(
                    "cell_done", cell, attempt,
                    elapsed_s=perf_counter() - started,
                ))
    return retries


def _run_pool(
    cells: Sequence[Cell],
    executor: CellExecutor,
    config: BaryonConfig,
    sim_config: SimulationConfig,
    n_accesses: int,
    max_attempts: int,
    cell_timeout_s: float,
    note_success,
    failures: Dict[int, Dict[str, Any]],
    telemetry: Optional[SweepTelemetry] = None,
    parent_span: Optional[Span] = None,
    *,
    chaos: Optional[ChaosPlan] = None,
    injector: Optional[ChaosInjector] = None,
    progress_timeout_s: Optional[float] = None,
    quarantine_after: Optional[int] = None,
    retry_budget: Optional[_RetryBudget] = None,
    backoff_base_s: float = 0.0,
    backoff_seed: int = 0,
    stop: Optional[threading.Event] = None,
    orchestration: Optional[CounterGroup] = None,
    quarantined: Optional[Dict[int, Dict[str, Any]]] = None,
    interrupt_grace_s: float = 30.0,
) -> int:
    """Dispatch cells to a fork pool with deadlines, requeue, and the
    service-grade failure policies.

    ``multiprocessing.Pool`` silently respawns a killed worker and the
    task it was running never completes — so a lapsed deadline *is* the
    dead-worker signal, and the cell is resubmitted (the respawned
    worker re-derives everything from the cell seed).

    With telemetry attached, workers stream heartbeats through a shared
    queue; each heartbeat of the *current* attempt refreshes its cell's
    deadlines (a superseded attempt's stale beats are shown but ignored
    — see :meth:`_Inflight.note_beat`). Two deadlines run per cell:
    no-beats-at-all for ``cell_timeout_s`` means dead, beats-without-
    progress for ``progress_timeout_s`` means hung. Without heartbeats
    the last activity stays at submission time, which is bit-for-bit the
    pre-telemetry deadline behavior.

    Dispatch is windowed (at most ``2 * effective`` cells in flight) so
    a queued-but-unstarted cell cannot trip its deadline while merely
    waiting for a worker slot.
    """
    retries = 0
    orchestration = (
        orchestration if orchestration is not None
        else CounterGroup("matrix.orchestration")
    )
    quarantined = quarantined if quarantined is not None else {}
    by_index = {cell.index: cell for cell in cells}
    spans, progress, spec = _telemetry_parts(telemetry)
    if spec is not None and chaos is not None and chaos.wants_worker_chaos:
        spec.chaos = chaos
    # On a shared long-lived executor, beats of a previous job's
    # abandoned cells must not refresh this run's deadlines.
    executor.discard_beats()
    beat_queue = (
        executor.beat_queue
        if telemetry is not None and telemetry.wants_heartbeats
        else None
    )
    cell_spans: Dict[int, Span] = {}
    ready: deque = deque((cell.index, 1) for cell in cells)
    delayed: List[Tuple[float, int, int]] = []  # (due_t, index, attempt)
    inflight: Dict[int, _Inflight] = {}
    deaths: Dict[int, List[str]] = {}  # consecutive violent deaths
    window = max(executor.workers * 2, 1)
    interrupted_at: Optional[float] = None

    def _submit(index: int, attempt: int) -> _Inflight:
        cell = by_index[index]
        if spans.enabled:
            cell_spans[index] = spans.start(
                "cell", parent=parent_span, index=index,
                workload=cell.workload, design=cell.design,
                seed=cell.seed, attempt=attempt,
            )
        handle = executor.submit(
            cell, config, sim_config, n_accesses, attempt, spec,
        )
        return _Inflight(attempt, handle, monotonic())

    def _pump() -> None:
        now = monotonic()
        if delayed:
            for item in sorted(d for d in delayed if d[0] <= now):
                delayed.remove(item)
                ready.append((item[1], item[2]))
        while ready and len(inflight) < window:
            index, attempt = ready.popleft()
            inflight[index] = _submit(index, attempt)

    def _drain_heartbeats() -> None:
        if beat_queue is None:
            return
        if injector is not None:
            delay = injector.drain_delay()
            if delay > 0.0:
                sleep(delay)
        while True:
            try:
                event = beat_queue.get_nowait()
            except queue_mod.Empty:
                return
            except (OSError, EOFError):  # channel torn down mid-poll
                return
            entry = inflight.get(event.get("cell"))
            if entry is not None:
                entry.note_beat(event, monotonic())
            if progress is not None:
                progress.on_event(event)

    def _close_cell(index: int, payload: Dict[str, Any], entry: _Inflight) -> None:
        span = cell_spans.pop(index, None)
        if span is not None:
            if payload.get("spans"):
                spans.adopt(payload["spans"], parent=span)
            spans.end(span)
        deaths.pop(index, None)
        note_success(index, payload)
        if progress is not None:
            progress.on_event(_cell_event(
                "cell_done", by_index[index], entry.attempt,
                elapsed_s=monotonic() - entry.submitted_t,
            ))

    def _fail_cell(index: int, error: Dict[str, Any], attempt: int) -> None:
        failures[index] = error
        spans.end(cell_spans.pop(index, None), error=error["type"])
        if progress is not None:
            progress.on_event(_cell_event(
                "cell_failed", by_index[index], attempt,
                error=error["type"],
            ))

    def _quarantine(index: int, entry: _Inflight, streak: List[str]) -> None:
        record = {
            "type": "PoisonCellError",
            "message": (
                f"cell {index} took down {len(streak)} consecutive "
                f"worker(s) ({', '.join(streak)}); quarantined with "
                f"partial progress"
            ),
            "attempts": entry.attempt,
            "reasons": list(streak),
            "partial": {
                "done": max(entry.last_done, 0),
                "total": entry.last_total,
            },
        }
        quarantined[index] = record
        orchestration.inc("quarantined")
        spans.end(
            cell_spans.pop(index, None),
            error="PoisonCellError", quarantined=True,
        )
        spans.event(
            parent_span, "quarantined",
            cell=index, attempts=entry.attempt, reasons=len(streak),
        )
        if progress is not None:
            progress.on_event(_cell_event(
                "cell_quarantined", by_index[index], entry.attempt,
                reasons=list(streak),
                done=max(entry.last_done, 0), total=entry.last_total,
            ))

    def _requeue(index: int, attempt: int, reason: str, counter: str) -> None:
        nonlocal retries
        spans.end(
            cell_spans.pop(index, None), error=reason, requeued=True,
        )
        if retry_budget is not None and not retry_budget.take():
            orchestration.inc("retry_budget_exhausted")
            spans.event(
                parent_span, "retry_budget_exhausted",
                cell=index, attempt=attempt,
            )
            _fail_cell(index, {
                "type": reason,
                "message": (
                    f"cell {index} failed on attempt {attempt} "
                    f"({reason}) and the sweep's global retry budget "
                    f"is exhausted"
                ),
                "traceback": None,
                "attempt": attempt,
            }, attempt)
            return
        retries += 1
        orchestration.inc(counter)
        spans.event(
            parent_span, "requeue",
            cell=index, attempt=attempt, error=reason,
        )
        if backoff_base_s > 0.0:
            due = monotonic() + requeue_backoff_s(
                backoff_base_s, attempt, index, backoff_seed,
            )
            delayed.append((due, index, attempt + 1))
        else:
            ready.append((index, attempt + 1))

    def _violent_death(index: int, entry: _Inflight, reason: str) -> None:
        """A worker died under the cell (dead) or froze (hung) —
        circuit-break, requeue, or fail, in that order."""
        streak = deaths.setdefault(index, [])
        streak.append(reason)
        if quarantine_after is not None and len(streak) >= quarantine_after:
            _quarantine(index, entry, streak)
        elif entry.attempt < max_attempts:
            _requeue(
                index, entry.attempt, reason,
                "requeue_hung" if reason == "WorkerHungError"
                else "requeue_timeout",
            )
        else:
            if reason == "WorkerHungError":
                message = (
                    f"cell {index} stalled (heartbeats alive, no "
                    f"progress past {entry.last_done} for "
                    f"{progress_timeout_s:.1f}s) on attempt "
                    f"{entry.attempt}"
                )
            else:
                message = (
                    f"cell {index} exceeded {cell_timeout_s:.0f}s "
                    f"without a heartbeat on attempt {entry.attempt} "
                    f"(worker presumed dead)"
                )
            _fail_cell(index, {
                "type": reason,
                "message": message,
                "traceback": None,
                "attempt": entry.attempt,
            }, entry.attempt)

    while inflight or ready or delayed:
        if stop is not None and stop.is_set() and interrupted_at is None:
            interrupted_at = monotonic()
            abandoned = len(ready) + len(delayed)
            ready.clear()
            delayed.clear()
            orchestration.inc("interrupted")
            spans.event(
                parent_span, "interrupt",
                inflight=len(inflight), abandoned=abandoned,
            )
        if interrupted_at is None:
            _pump()
        elif not inflight:
            break
        elif monotonic() > interrupted_at + interrupt_grace_s:
            orchestration.inc("interrupt_abandoned", len(inflight))
            spans.event(
                parent_span, "interrupt_grace_expired",
                abandoned=len(inflight),
            )
            break
        _drain_heartbeats()
        progressed = False
        now = monotonic()
        for index in list(inflight):
            entry = inflight[index]
            if entry.handle.ready():
                progressed = True
                del inflight[index]
                try:
                    payload = entry.handle.get()
                except Exception as err:
                    # Transport-level failure (e.g. unpicklable
                    # payload); same shape as a worker-side error.
                    payload = _error_payload(index, entry.attempt, err, None)
                if "error" not in payload:
                    _close_cell(index, payload, entry)
                elif interrupted_at is not None:
                    # Draining after an interrupt: an error here is
                    # left *unfinished* (resumable), not failed — the
                    # resumed run retries it with a full budget.
                    spans.end(
                        cell_spans.pop(index, None),
                        error=payload["error"]["type"], interrupted=True,
                    )
                else:
                    # The worker survived to report an exception, so
                    # this was not a violent death: the streak resets.
                    deaths.pop(index, None)
                    if entry.attempt < max_attempts:
                        _requeue(
                            index, entry.attempt,
                            payload["error"]["type"], "requeue_error",
                        )
                    else:
                        _fail_cell(index, payload["error"], entry.attempt)
            elif entry.dead(now, cell_timeout_s):
                progressed = True
                del inflight[index]
                spans.event(
                    parent_span, "deadline_lapsed",
                    cell=index, attempt=entry.attempt,
                    idle_s=now - entry.last_beat_t,
                )
                if interrupted_at is not None:
                    spans.end(
                        cell_spans.pop(index, None),
                        error="TimeoutError", interrupted=True,
                    )
                else:
                    _violent_death(index, entry, "TimeoutError")
            elif entry.hung(now, progress_timeout_s):
                progressed = True
                del inflight[index]
                spans.event(
                    parent_span, "progress_stalled",
                    cell=index, attempt=entry.attempt,
                    done=entry.last_done,
                    stalled_s=now - entry.last_progress_t,
                )
                if interrupted_at is not None:
                    spans.end(
                        cell_spans.pop(index, None),
                        error="WorkerHungError", interrupted=True,
                    )
                else:
                    _violent_death(index, entry, "WorkerHungError")
        if (inflight or ready or delayed) and not progressed:
            sleep(0.01)
    _drain_heartbeats()
    return retries


class _InterruptGuard:
    """Graceful SIGINT/SIGTERM handling for one ``run_plan`` call.

    The first signal sets the runner's stop flag — dispatch halts,
    in-flight cells drain within the grace window, the checkpoint stays
    resumable, and the sweep returns with ``interrupted=True``. A second
    signal raises :class:`KeyboardInterrupt` (the operator means it).
    Installs only from the main thread (elsewhere it degrades to a
    no-op) and always restores the previous handlers.
    """

    def __init__(self, flag: threading.Event) -> None:
        self.flag = flag
        self._previous: Dict[int, Any] = {}
        self._fired = False

    def _handle(self, signum, frame) -> None:
        if self._fired:
            raise KeyboardInterrupt
        self._fired = True
        self.flag.set()

    def __enter__(self) -> "_InterruptGuard":
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                self._previous[sig] = signal.signal(sig, self._handle)
            except ValueError:  # not the main thread
                break
        return self

    def __exit__(self, *exc) -> bool:
        for sig, previous in self._previous.items():
            try:
                signal.signal(sig, previous)
            except ValueError:  # pragma: no cover - symmetric with enter
                pass
        return False


def run_plan(
    plan: Sequence[Cell],
    config: BaryonConfig,
    sim_config: SimulationConfig,
    n_accesses: int = 50_000,
    jobs: int = 1,
    *,
    max_attempts: int = 2,
    cell_timeout_s: float = DEFAULT_CELL_TIMEOUT_S,
    checkpoint: Optional[str] = None,
    resume: Optional[str] = None,
    telemetry: Optional[SweepTelemetry] = None,
    manifest: Optional[str] = None,
    chaos: Optional[ChaosPlan] = None,
    progress_timeout_s: Optional[float] = None,
    quarantine_after: Optional[int] = None,
    retry_budget: Optional[int] = None,
    backoff_base_s: float = 0.0,
    handle_signals: bool = False,
    interrupt_grace_s: float = 30.0,
    executor: Optional[CellExecutor] = None,
    stop_event: Optional[threading.Event] = None,
) -> MatrixOutcome:
    """Execute a cell plan, in-process or across a ``fork`` pool.

    The outcome is independent of ``jobs``, retries, resumption, and any
    injected chaos — the parallel/serial equivalence tests and the chaos
    soak pin this down. Failed cells (after ``max_attempts`` attempts
    each) are reported in ``MatrixOutcome.failed`` instead of aborting
    the whole matrix.

    ``checkpoint`` names a file durably rewritten after every finished
    cell; ``resume`` preloads finished cells from such a file (missing
    file: start fresh; wrong-plan or wrong-format file: raise
    :class:`~repro.common.errors.ConfigurationError`; damaged file:
    salvage every digest-verified cell, cross-checked against the
    sidecar manifest when present, and re-run the rest). The two may
    name the same path.

    ``telemetry`` (a :class:`~repro.parallel.telemetry.SweepTelemetry`)
    attaches sweep-scale observability: a span tree
    (``sweep`` → ``plan``/``fork``/``simulate``/``merge``/``checkpoint``
    phases, a ``cell`` span per attempt with the worker's own spans
    adopted underneath), live heartbeat-driven progress, and cross-shard
    metrics in :attr:`MatrixOutcome.metrics`. Counters and results are
    bit-identical with telemetry on, off, or partially on.

    ``manifest`` names a run-manifest JSON to write after the fold; when
    omitted but ``checkpoint`` is set, ``<checkpoint>.manifest.json`` is
    written so every checkpointed sweep carries its provenance. Whenever
    a manifest is written, it is re-loaded from disk and audited against
    the merged outcome (``MatrixOutcome.audit``).

    Hardening knobs (all default to the pre-chaos behavior):
    ``progress_timeout_s`` arms hung-worker detection (pool runs with
    heartbeats only — set it well above the wall time of
    ``heartbeat_every`` accesses); ``quarantine_after`` arms the
    poison-cell circuit breaker; ``retry_budget`` caps requeues globally
    across all cells; ``backoff_base_s`` spaces a cell's attempts with
    exponential backoff + deterministic jitter; ``handle_signals``
    installs the graceful SIGINT/SIGTERM guard; ``chaos`` injects
    seeded orchestration chaos (see :mod:`repro.resilience.chaos`).

    ``executor`` lends this run a caller-owned :class:`CellExecutor`
    (``jobs`` is then ignored — the executor's worker count rules); the
    executor is left open for the caller's next run. Without one, a
    private executor is created and torn down as before. ``stop_event``
    shares the run's stop flag with the caller: setting it triggers the
    same graceful drain as SIGINT/SIGTERM, which is how the job server
    drains an in-flight sweep without signal delivery.
    """
    if max_attempts < 1:
        raise ValueError("max_attempts must be >= 1")
    start = perf_counter()
    if executor is not None:
        if executor.closed:
            raise ConfigurationError("run_plan() given a closed CellExecutor")
        effective = executor.workers if executor.pooled else 1
    else:
        effective = resolve_jobs(jobs, len(plan))
    if chaos is not None and chaos.wants_worker_chaos:
        if effective <= 1:
            raise ConfigurationError(
                "worker-side chaos (kill/hang/heartbeat loss) needs a "
                "process pool; run with jobs >= 2 and a multi-cell plan"
            )
        if telemetry is None or not telemetry.wants_heartbeats:
            raise ConfigurationError(
                "worker-side chaos rides the heartbeat channel; attach a "
                "SweepTelemetry with heartbeat_every > 0"
            )
    injector = ChaosInjector(chaos) if chaos is not None and chaos.active else None
    stop = stop_event if stop_event is not None else threading.Event()
    orchestration = CounterGroup("matrix.orchestration")
    quarantined_ix: Dict[int, Dict[str, Any]] = {}
    budget = _RetryBudget(retry_budget) if retry_budget is not None else None
    backoff_seed = chaos.seed if chaos is not None else 0
    spans, progress, _ = _telemetry_parts(telemetry)
    by_index = {cell.index: cell for cell in plan}
    sweep_span = spans.start(
        "sweep", cells=len(plan), jobs=effective, accesses=n_accesses,
    ) if spans.enabled else None
    plan_span = spans.start(
        "plan", parent=sweep_span,
    ) if spans.enabled else None
    fingerprint = plan_fingerprint(
        plan, n_accesses, config, sim_config,
        chaos=chaos, quarantine_after=quarantine_after,
    )
    if checkpoint is not None:
        # A process killed between mkstemp and the rename (SIGKILL,
        # power loss) leaves a temp file no exception path could clean
        # up; this run owns the checkpoint directory, so sweep them now.
        stale = remove_stale_temps(checkpoint, (".checkpoint-", ".manifest-"))
        if stale:
            orchestration.inc("stale_temps_removed", len(stale))
    done: Dict[int, Dict[str, Any]] = {}
    resumed = 0
    salvaged = 0
    if resume is not None and os.path.exists(resume):
        wanted = {cell.index for cell in plan}
        try:
            loaded = load_checkpoint(resume, fingerprint)
        except CheckpointCorruptError:
            # Body damage (torn tail, flipped bit): salvage every cell
            # whose digest verifies — cross-checked against the sidecar
            # manifest when one exists — instead of refusing to resume.
            expected = None
            sidecar = resume + ".manifest.json"
            if os.path.exists(sidecar):
                try:
                    expected = result_digests(load_manifest(sidecar), plan)
                except ConfigurationError:
                    expected = None
            loaded, report = salvage_checkpoint(resume, fingerprint, expected)
            salvaged = report["recovered"]
            orchestration.inc("checkpoint_salvaged_cells", report["recovered"])
            orchestration.inc("checkpoint_salvage_dropped", report["dropped"])
            spans.event(
                sweep_span, "checkpoint_salvage",
                recovered=report["recovered"], dropped=report["dropped"],
            )
        done = {
            index: payload
            for index, payload in loaded.items()
            if index in wanted
        }
        resumed = len(done)
        spans.event(sweep_span, "resume", cells=resumed, path=resume)
    pending = [cell for cell in plan if cell.index not in done]
    spans.end(plan_span, pending=len(pending), resumed=resumed)
    if spans.enabled and done:
        # Resumed cells still appear in the tree: a zero-work cell span
        # (marked ``resumed``) adopting whatever spans the original
        # attempt shipped in its checkpointed payload.
        for index in sorted(done):
            cell = by_index[index]
            cell_span = spans.start(
                "cell", parent=sweep_span, index=index,
                workload=cell.workload, design=cell.design,
                seed=cell.seed, resumed=True,
            )
            if done[index].get("spans"):
                spans.adopt(done[index]["spans"], parent=cell_span)
            spans.end(cell_span)
    if progress is not None:
        for index in sorted(done):
            progress.on_event(_cell_event(
                "cell_done", by_index[index], 0,
                elapsed_s=0.0, resumed=True,
            ))
    failures: Dict[int, Dict[str, Any]] = {}

    def note_success(index: int, payload: Dict[str, Any]) -> None:
        done[index] = payload
        if checkpoint is not None:
            ckpt_span = spans.start(
                "checkpoint", parent=sweep_span, cells=len(done),
            ) if spans.enabled else None
            effect = (
                injector.write_effect("checkpoint")
                if injector is not None else None
            )
            try:
                write_checkpoint(checkpoint, fingerprint, done, effect=effect)
            except OSError as err:
                # Disk-full (real or injected): the sweep keeps running
                # on the previous checkpoint; only resumability degrades.
                orchestration.inc("checkpoint_write_errors")
                spans.event(
                    sweep_span, "checkpoint_write_failed",
                    cells=len(done), error=type(err).__name__,
                )
            spans.end(ckpt_span)
        if injector is not None and injector.should_interrupt(len(done)):
            stop.set()

    simulate_span = spans.start(
        "simulate", parent=sweep_span, pending=len(pending),
    ) if spans.enabled else None
    guard = _InterruptGuard(stop) if handle_signals else None
    pooled = executor.pooled if executor is not None else effective > 1
    own_executor: Optional[CellExecutor] = None
    try:
        if guard is not None:
            guard.__enter__()
        if not pending:
            retries = 0
        elif not pooled:
            retries = _run_serial(
                pending, config, sim_config, n_accesses, max_attempts,
                note_success, failures,
                telemetry=telemetry, parent_span=simulate_span,
                retry_budget=budget, backoff_base_s=backoff_base_s,
                backoff_seed=backoff_seed, stop=stop,
                orchestration=orchestration,
            )
        else:
            if executor is None:
                fork_span = spans.start(
                    "fork", parent=simulate_span, workers=effective,
                ) if spans.enabled else None
                executor = own_executor = CellExecutor(jobs=effective)
                spans.end(fork_span)
            retries = _run_pool(
                pending, executor, config, sim_config, n_accesses,
                max_attempts, cell_timeout_s, note_success, failures,
                telemetry=telemetry, parent_span=simulate_span,
                chaos=chaos, injector=injector,
                progress_timeout_s=progress_timeout_s,
                quarantine_after=quarantine_after,
                retry_budget=budget, backoff_base_s=backoff_base_s,
                backoff_seed=backoff_seed, stop=stop,
                orchestration=orchestration, quarantined=quarantined_ix,
                interrupt_grace_s=interrupt_grace_s,
            )
    finally:
        if own_executor is not None:
            own_executor.close()
        if guard is not None:
            guard.__exit__(None, None, None)
    spans.end(simulate_span, retries=retries, failed=len(failures))

    merge_span = spans.start(
        "merge", parent=sweep_span,
    ) if spans.enabled else None
    outcome = _fold(plan, list(done.values()), effective, perf_counter() - start)
    outcome.retries = retries
    outcome.resumed = resumed
    outcome.salvaged = salvaged
    for index, error in failures.items():
        outcome.failed[by_index[index].key] = dict(error)
    for index, record in quarantined_ix.items():
        outcome.quarantined[by_index[index].key] = dict(record)
    outcome.interrupted = stop.is_set() and (
        len(done) + len(failures) + len(quarantined_ix) < len(plan)
    )
    if injector is not None:
        orchestration.merge(injector.stats)
    outcome.orchestration = orchestration
    spans.end(merge_span, results=len(outcome.results))

    manifest_path = manifest
    if manifest_path is None and checkpoint is not None:
        manifest_path = checkpoint + ".manifest.json"
    if manifest_path is not None:
        mutate = (
            write_effect_mutator(injector.write_effect("manifest"))
            if injector is not None else None
        )
        try:
            write_manifest(
                manifest_path, build_manifest(fingerprint, outcome, plan),
                mutate=mutate,
            )
        except OSError as err:
            orchestration.inc("manifest_write_errors")
            spans.event(
                sweep_span, "manifest_write_failed", error=type(err).__name__,
            )
        else:
            spans.event(sweep_span, "manifest", path=manifest_path)
            # End-of-run integrity audit: trust only what landed on disk.
            try:
                on_disk = load_manifest(manifest_path)
            except ConfigurationError as err:
                outcome.audit = {
                    "ok": False, "checked": 0,
                    "mismatches": [f"manifest unreadable after write: {err}"],
                }
            else:
                outcome.audit = audit_manifest(on_disk, outcome, plan)
            if not outcome.audit["ok"]:
                orchestration.inc("audit_failures")
            spans.event(
                sweep_span, "audit",
                ok=outcome.audit["ok"], checked=outcome.audit["checked"],
                mismatches=len(outcome.audit["mismatches"]),
            )
    spans.end(
        sweep_span, failed=len(outcome.failed), retries=retries,
        quarantined=len(outcome.quarantined), interrupted=outcome.interrupted,
    )
    return outcome
