"""Process-pool execution of experiment matrix plans.

The runner turns a deterministic cell plan (:mod:`repro.parallel.plan`)
into a :class:`MatrixOutcome`:

* cells are dispatched to a ``fork`` process pool (``jobs`` workers);
  each worker serializes its :class:`~repro.sim.results.SimResult` and
  per-component counter snapshots back as plain dicts (pickle-free
  payloads, transport-agnostic);
* the parent folds the shards with the ``CounterGroup.merge`` /
  ``RatioStat.merge`` aggregation APIs.

Crash safety (``repro.resilience``):

* a cell that raises comes back as a **tagged error payload** carrying
  the worker's formatted traceback instead of poisoning the fold;
* every cell has a **deadline** (``cell_timeout_s``): a worker killed
  mid-cell (its task is silently lost by ``multiprocessing.Pool``) is
  detected when the deadline lapses and the cell is **requeued**, up to
  ``max_attempts`` total attempts — exhausted cells land in
  ``MatrixOutcome.failed`` rather than aborting the matrix;
* with ``checkpoint=path`` the parent atomically rewrites a fingerprinted
  JSON checkpoint after every finished cell, and ``resume=path`` preloads
  finished cells from it, so an interrupted sweep continues where it
  died and reproduces the uninterrupted matrix exactly (every cell is a
  pure function of its own seed).

When ``jobs <= 1``, the plan has a single cell, or the platform lacks
``fork`` (e.g. some macOS/Windows configurations), execution gracefully
falls back to the same code path in-process — results are identical
either way because every cell derives all randomness from its own seed.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import queue as queue_mod
import traceback
from collections import OrderedDict
from dataclasses import dataclass, field
from time import monotonic, perf_counter, sleep
from time import time as _wall
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.common.config import BaryonConfig, SimulationConfig
from repro.common.stats import CounterGroup, RatioStat
from repro.obs.aggregate import merge_snapshot
from repro.obs.manifest import build_manifest, write_manifest
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import make_heartbeat
from repro.obs.spans import NULL_SPANS, Span, SpanTracer
from repro.parallel.plan import Cell
from repro.parallel.telemetry import SweepTelemetry, WorkerTelemetry
from repro.resilience.checkpoint import (
    load_checkpoint,
    plan_fingerprint,
    write_checkpoint,
)
from repro.sim.results import SimResult
from repro.workloads import build_workload
from repro.workloads.base import Trace

#: Bound on the per-process trace cache (distinct (workload, seed,
#: length, capacity) streams kept alive at once).
TRACE_CACHE_CAPACITY = 32

#: Default wall-clock budget per cell attempt. Deliberately generous —
#: it includes pool queue wait, and its job is dead-worker detection,
#: not fine-grained scheduling.
DEFAULT_CELL_TIMEOUT_S = 600.0

_trace_cache: "OrderedDict[Tuple, Trace]" = OrderedDict()

# Per-worker execution context installed by the pool initializer; the
# in-process path passes the context explicitly instead. The last two
# slots are the telemetry spec and the heartbeat queue (both None on an
# untelemetered run).
_worker_context: Optional[Tuple] = None


def fork_available() -> bool:
    """True when the platform supports ``fork`` worker processes."""
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_jobs(jobs: Optional[int], n_cells: int) -> int:
    """Effective worker count: clamp to the plan size, fall back to
    in-process execution when parallelism is unavailable or pointless."""
    if jobs is None or jobs <= 0:
        jobs = os.cpu_count() or 1
    if jobs <= 1 or n_cells <= 1 or not fork_available():
        return 1
    return min(jobs, n_cells)


def clear_trace_cache() -> None:
    """Drop the process-local trace cache (tests and benchmarks)."""
    _trace_cache.clear()


def _cell_trace(
    cell: Cell, config: BaryonConfig, n_accesses: int
) -> Tuple[Trace, bool]:
    """The cell's replay stream, generated at most once per process.

    Returns ``(replay_view, generated)`` — the view is immutable, so a
    cached stream cannot be perturbed by one design before another
    replays it.
    """
    key = (*cell.trace_key, n_accesses, config.layout.fast_capacity)
    cached = _trace_cache.get(key)
    generated = cached is None
    if cached is None:
        cached = build_workload(
            cell.workload,
            config.layout.fast_capacity,
            n_accesses=n_accesses,
            seed=cell.seed,
        )
        _trace_cache[key] = cached
        if len(_trace_cache) > TRACE_CACHE_CAPACITY:
            _trace_cache.popitem(last=False)
    else:
        _trace_cache.move_to_end(key)
    return cached.replay_view(), generated


def _execute_cell(
    cell: Cell,
    config: BaryonConfig,
    sim_config: SimulationConfig,
    n_accesses: int,
    attempt: int = 1,
    telemetry: Optional[WorkerTelemetry] = None,
    beat=None,
) -> Dict[str, Any]:
    """Run one cell and package its result + counter shards as dicts.

    ``attempt`` is 1-based and carries no semantics here — the cell is a
    pure function of its seed, so a retry is bit-identical — but it lets
    fault-injection test doubles behave attempt-dependently.

    ``telemetry`` (a :class:`~repro.parallel.telemetry.WorkerTelemetry`)
    turns on worker-side spans and/or a private metrics registry; both
    travel home inside the payload (``"spans"``/``"metrics"`` keys,
    absent on untelemetered runs). ``beat`` is a callable receiving one
    heartbeat dict every ``telemetry.heartbeat_every`` accesses.
    """
    from repro.analysis.experiments import run_cell

    spans = NULL_SPANS
    registry = None
    if telemetry is not None:
        if telemetry.spans:
            spans = SpanTracer(origin=f"c{cell.index}a{attempt}")
        if telemetry.metrics:
            registry = MetricsRegistry()
    progress = None
    heartbeat_every = telemetry.heartbeat_every if telemetry is not None else 0
    if beat is not None and heartbeat_every > 0:
        cell_start = perf_counter()
        pid = os.getpid()

        def progress(done: int, total: int, _cell=cell, _attempt=attempt) -> None:
            try:
                beat(make_heartbeat(
                    _cell, _attempt, done, total,
                    perf_counter() - cell_start, pid,
                ))
            except Exception:
                pass  # a torn heartbeat channel must never fail the cell

    with spans.span("cell.trace", workload=cell.workload, seed=cell.seed):
        trace, generated = _cell_trace(cell, config, n_accesses)
    if progress is not None:
        progress(0, n_accesses)
    result, controller = run_cell(
        cell.workload,
        cell.design,
        config,
        sim_config,
        n_accesses=n_accesses,
        seed=cell.seed,
        trace=trace,
        metrics=registry,
        spans=spans if spans.enabled else None,
        progress=progress,
        progress_every=heartbeat_every if heartbeat_every > 0 else 2048,
    )
    inner = getattr(controller, "_inner", controller)
    devices: Dict[str, int] = {}
    if getattr(inner, "devices", None) is not None:
        for device in (inner.devices.fast, inner.devices.slow):
            for key, value in device.stats.as_dict().items():
                devices[f"{device.name}.{key}"] = value
    compression: Dict[str, int] = {}
    engine = getattr(getattr(inner, "oracle", None), "engine", None)
    if engine is not None:
        compression = engine.stats.as_dict()
    resilience: Dict[str, int] = {}
    for attr, prefix in (("faults", "fault"), ("recovery", "recovery"), ("checker", "checker")):
        component = getattr(inner, attr, None)
        if component is not None:
            for key, value in component.stats.as_dict().items():
                resilience[f"{prefix}.{key}"] = value
    payload: Dict[str, Any] = {
        "index": cell.index,
        "result": result.to_dict(),
        "controller": inner.stats.as_dict(),
        "devices": devices,
        "compression": compression,
        "resilience": resilience,
        "generated_trace": generated,
    }
    if spans.enabled:
        # Resilience activity surfaces as span events on a summary span,
        # so faults/recoveries are visible in the sweep tree without a
        # separate record type.
        summary = spans.start("cell.collect", index=cell.index)
        for key, value in sorted(resilience.items()):
            if value:
                spans.event(summary, f"resilience.{key}", count=value)
        spans.end(summary)
        payload["spans"] = spans.export()
    if registry is not None:
        payload["metrics"] = registry.to_json()
    return payload


def _error_payload(index: int, attempt: int, err: BaseException,
                   traceback_text: Optional[str]) -> Dict[str, Any]:
    return {
        "index": index,
        "error": {
            "type": type(err).__name__,
            "message": str(err),
            "traceback": traceback_text,
            "attempt": attempt,
        },
    }


def _safe_execute(
    cell: Cell,
    config: BaryonConfig,
    sim_config: SimulationConfig,
    n_accesses: int,
    attempt: int,
    telemetry: Optional[WorkerTelemetry] = None,
    beat=None,
) -> Dict[str, Any]:
    """Run one cell; exceptions become tagged error payloads with the
    worker-side traceback, never a poisoned fold."""
    try:
        # Positional-only call when untelemetered, so test doubles that
        # monkeypatch ``_execute_cell`` with the historical five-argument
        # signature keep working.
        if telemetry is None and beat is None:
            return _execute_cell(cell, config, sim_config, n_accesses, attempt)
        return _execute_cell(
            cell, config, sim_config, n_accesses, attempt,
            telemetry=telemetry, beat=beat,
        )
    except Exception as err:
        return _error_payload(cell.index, attempt, err, traceback.format_exc())


def _init_worker(
    config: BaryonConfig,
    sim_config: SimulationConfig,
    n_accesses: int,
    telemetry: Optional[WorkerTelemetry] = None,
    beat_queue=None,
) -> None:
    global _worker_context
    _worker_context = (config, sim_config, n_accesses, telemetry, beat_queue)


def _worker_cell(task: Tuple[Cell, int]) -> Dict[str, Any]:
    assert _worker_context is not None, "worker used before initialization"
    cell, attempt = task
    config, sim_config, n_accesses, telemetry, beat_queue = _worker_context
    beat = beat_queue.put if beat_queue is not None else None
    return _safe_execute(
        cell, config, sim_config, n_accesses, attempt,
        telemetry=telemetry, beat=beat,
    )


@dataclass
class MatrixOutcome:
    """Results of a plan plus merged counter shards and runner telemetry.

    ``counters``/``device_counters``/``compression_counters``/
    ``resilience_counters`` are the fold of every cell's per-component
    snapshots through :meth:`~repro.common.stats.CounterGroup.merge`;
    ``serve`` merges the per-cell served-fast ratios with
    :meth:`~repro.common.stats.RatioStat.merge`. ``traces_generated``
    counts actual generations — ``cells - traces_generated`` streams
    were replayed from cache. ``failed`` maps a cell key to its final
    error record (type, message, worker traceback, attempts) for cells
    that exhausted their retry budget; ``retries`` counts requeued
    attempts and ``resumed`` counts cells preloaded from a checkpoint.

    ``metrics`` is the cross-shard
    :class:`~repro.obs.metrics.MetricsRegistry` — every worker
    registry's snapshot folded with a ``shard`` label (the cell's plan
    index) through :func:`repro.obs.aggregate.merge_snapshot` — present
    only when the sweep ran with
    :attr:`~repro.parallel.telemetry.SweepTelemetry.collect_metrics`.
    """

    results: Dict[Tuple, SimResult] = field(default_factory=dict)
    counters: CounterGroup = field(
        default_factory=lambda: CounterGroup("matrix.controller")
    )
    device_counters: CounterGroup = field(
        default_factory=lambda: CounterGroup("matrix.devices")
    )
    compression_counters: CounterGroup = field(
        default_factory=lambda: CounterGroup("matrix.compression")
    )
    resilience_counters: CounterGroup = field(
        default_factory=lambda: CounterGroup("matrix.resilience")
    )
    serve: RatioStat = field(default_factory=lambda: RatioStat("matrix.serve"))
    failed: Dict[Tuple, Dict[str, Any]] = field(default_factory=dict)
    cells: int = 0
    jobs: int = 1
    elapsed_s: float = 0.0
    traces_generated: int = 0
    retries: int = 0
    resumed: int = 0
    metrics: Optional[MetricsRegistry] = None


def _group(name: str, snapshot: Dict[str, int]) -> CounterGroup:
    group = CounterGroup(name)
    for key, value in snapshot.items():
        group.inc(key, value)
    return group


def _fold(
    plan: Sequence[Cell],
    payloads: List[Dict[str, Any]],
    jobs: int,
    elapsed_s: float,
) -> MatrixOutcome:
    outcome = MatrixOutcome(cells=len(plan), jobs=jobs, elapsed_s=elapsed_s)
    by_index = {cell.index: cell for cell in plan}
    for payload in payloads:
        cell = by_index[payload["index"]]
        result = SimResult.from_dict(payload["result"])
        outcome.results[cell.key] = result
        outcome.counters.merge(_group("cell", payload["controller"]))
        outcome.device_counters.merge(_group("cell", payload["devices"]))
        outcome.compression_counters.merge(_group("cell", payload["compression"]))
        outcome.resilience_counters.merge(
            _group("cell", payload.get("resilience", {}))
        )
        shard = RatioStat("cell")
        shard.hits = result.served_fast
        shard.total = result.memory_accesses
        outcome.serve.merge(shard)
        outcome.traces_generated += bool(payload["generated_trace"])
        snapshot = payload.get("metrics")
        if snapshot:
            if outcome.metrics is None:
                outcome.metrics = MetricsRegistry()
            merge_snapshot(outcome.metrics, snapshot, shard=str(cell.index))
    return outcome


def _telemetry_parts(telemetry: Optional[SweepTelemetry]):
    """``(span tracer, progress tracker, worker spec)`` with the null
    tracer standing in when spans are off."""
    if telemetry is None:
        return NULL_SPANS, None, None
    spans = telemetry.spans if telemetry.spans is not None else NULL_SPANS
    return spans, telemetry.progress, telemetry.worker_spec()


def _cell_event(etype: str, cell: Cell, attempt: int, **fields: Any) -> Dict[str, Any]:
    """A parent-side ``cell_done``/``cell_failed`` progress event (see
    :data:`repro.obs.progress.HEARTBEAT_SCHEMA`)."""
    event: Dict[str, Any] = {
        "type": etype,
        "ts": _wall(),
        "cell": cell.index,
        "workload": cell.workload,
        "design": cell.design,
        "seed": cell.seed,
        "attempt": attempt,
    }
    event.update(fields)
    return event


def _run_serial(
    cells: Sequence[Cell],
    config: BaryonConfig,
    sim_config: SimulationConfig,
    n_accesses: int,
    max_attempts: int,
    note_success,
    failures: Dict[int, Dict[str, Any]],
    telemetry: Optional[SweepTelemetry] = None,
    parent_span: Optional[Span] = None,
) -> int:
    retries = 0
    spans, progress, spec = _telemetry_parts(telemetry)
    beat = progress.on_event if progress is not None else None
    for cell in cells:
        payload: Dict[str, Any] = {}
        attempt = 1
        cell_span = spans.start(
            "cell", parent=parent_span, index=cell.index,
            workload=cell.workload, design=cell.design, seed=cell.seed,
        ) if spans.enabled else None
        started = perf_counter()
        for attempt in range(1, max_attempts + 1):
            if spec is None and beat is None:
                payload = _safe_execute(
                    cell, config, sim_config, n_accesses, attempt
                )
            else:
                payload = _safe_execute(
                    cell, config, sim_config, n_accesses, attempt,
                    telemetry=spec, beat=beat,
                )
            if "error" not in payload:
                break
            if attempt < max_attempts:
                retries += 1
                spans.event(
                    cell_span, "requeue",
                    attempt=attempt, error=payload["error"]["type"],
                )
        if "error" in payload:
            failures[cell.index] = payload["error"]
            spans.end(cell_span, error=payload["error"]["type"])
            if progress is not None:
                progress.on_event(_cell_event(
                    "cell_failed", cell, attempt,
                    error=payload["error"]["type"],
                ))
        else:
            if cell_span is not None and payload.get("spans"):
                spans.adopt(payload["spans"], parent=cell_span)
            spans.end(cell_span, attempt=attempt)
            note_success(cell.index, payload)
            if progress is not None:
                progress.on_event(_cell_event(
                    "cell_done", cell, attempt,
                    elapsed_s=perf_counter() - started,
                ))
    return retries


def _run_pool(
    cells: Sequence[Cell],
    config: BaryonConfig,
    sim_config: SimulationConfig,
    n_accesses: int,
    effective: int,
    max_attempts: int,
    cell_timeout_s: float,
    note_success,
    failures: Dict[int, Dict[str, Any]],
    telemetry: Optional[SweepTelemetry] = None,
    parent_span: Optional[Span] = None,
) -> int:
    """Dispatch cells to a fork pool with deadlines and requeue.

    ``multiprocessing.Pool`` silently respawns a killed worker and the
    task it was running never completes — so a lapsed deadline *is* the
    dead-worker signal, and the cell is resubmitted (the respawned
    worker re-derives everything from the cell seed).

    With telemetry attached, workers stream heartbeats through a shared
    queue; each heartbeat refreshes its cell's *last activity*, and the
    deadline is measured from that instead of submission — a
    slow-but-beating cell is never reaped, while a dead worker stops
    beating and lapses exactly as before. Without heartbeats the last
    activity stays at submission time, which is bit-for-bit the
    pre-telemetry deadline behavior.
    """
    retries = 0
    ctx = multiprocessing.get_context("fork")
    by_index = {cell.index: cell for cell in cells}
    spans, progress, spec = _telemetry_parts(telemetry)
    beat_queue = (
        ctx.Queue()
        if telemetry is not None and telemetry.wants_heartbeats
        else None
    )
    cell_spans: Dict[int, Span] = {}
    submitted: Dict[int, float] = {}
    fork_span = spans.start(
        "fork", parent=parent_span, workers=effective,
    ) if spans.enabled else None
    pool_obj = ctx.Pool(
        processes=effective,
        initializer=_init_worker,
        initargs=(config, sim_config, n_accesses, spec, beat_queue),
    )
    spans.end(fork_span)
    with pool_obj as pool:

        def _submit(index: int, attempt: int):
            cell = by_index[index]
            if spans.enabled:
                cell_spans[index] = spans.start(
                    "cell", parent=parent_span, index=index,
                    workload=cell.workload, design=cell.design,
                    seed=cell.seed, attempt=attempt,
                )
            now = monotonic()
            submitted[index] = now
            handle = pool.apply_async(_worker_cell, ((cell, attempt),))
            return attempt, handle, now

        def _drain_heartbeats() -> None:
            if beat_queue is None:
                return
            while True:
                try:
                    event = beat_queue.get_nowait()
                except queue_mod.Empty:
                    return
                except (OSError, EOFError):  # channel torn down mid-poll
                    return
                index = event.get("cell")
                entry = inflight.get(index)
                # Only the current attempt refreshes the deadline; a
                # stale beat from a superseded attempt is still shown.
                if entry is not None and event.get("attempt") == entry[0]:
                    inflight[index] = (entry[0], entry[1], monotonic())
                if progress is not None:
                    progress.on_event(event)

        def _close_cell(index: int, payload: Dict[str, Any], attempt: int) -> None:
            span = cell_spans.pop(index, None)
            if span is not None:
                if payload.get("spans"):
                    spans.adopt(payload["spans"], parent=span)
                spans.end(span)
            note_success(index, payload)
            if progress is not None:
                progress.on_event(_cell_event(
                    "cell_done", by_index[index], attempt,
                    elapsed_s=monotonic() - submitted.get(index, monotonic()),
                ))

        def _fail_cell(index: int, error: Dict[str, Any], attempt: int) -> None:
            failures[index] = error
            spans.end(cell_spans.pop(index, None), error=error["type"])
            if progress is not None:
                progress.on_event(_cell_event(
                    "cell_failed", by_index[index], attempt,
                    error=error["type"],
                ))

        def _requeue(index: int, attempt: int, reason: str) -> None:
            spans.end(
                cell_spans.pop(index, None), error=reason, requeued=True,
            )
            spans.event(
                parent_span, "requeue",
                cell=index, attempt=attempt, error=reason,
            )
            inflight[index] = _submit(index, attempt + 1)

        inflight = {cell.index: _submit(cell.index, 1) for cell in cells}
        while inflight:
            progressed = False
            _drain_heartbeats()
            for index in list(inflight):
                attempt, handle, last_activity = inflight[index]
                if handle.ready():
                    progressed = True
                    try:
                        payload = handle.get()
                    except Exception as err:
                        # Transport-level failure (e.g. unpicklable
                        # payload); same shape as a worker-side error.
                        payload = _error_payload(index, attempt, err, None)
                    if "error" not in payload:
                        _close_cell(index, payload, attempt)
                        del inflight[index]
                    elif attempt < max_attempts:
                        retries += 1
                        _requeue(index, attempt, payload["error"]["type"])
                    else:
                        _fail_cell(index, payload["error"], attempt)
                        del inflight[index]
                elif monotonic() > last_activity + cell_timeout_s:
                    progressed = True
                    spans.event(
                        parent_span, "deadline_lapsed",
                        cell=index, attempt=attempt,
                        idle_s=monotonic() - last_activity,
                    )
                    if attempt < max_attempts:
                        retries += 1
                        _requeue(index, attempt, "TimeoutError")
                    else:
                        _fail_cell(index, {
                            "type": "TimeoutError",
                            "message": (
                                f"cell {index} exceeded {cell_timeout_s:.0f}s "
                                f"without a heartbeat on attempt {attempt} "
                                f"(worker presumed dead)"
                            ),
                            "traceback": None,
                            "attempt": attempt,
                        }, attempt)
                        del inflight[index]
            if inflight and not progressed:
                sleep(0.01)
        _drain_heartbeats()
    if beat_queue is not None:
        beat_queue.close()
        beat_queue.join_thread()
    return retries


def run_plan(
    plan: Sequence[Cell],
    config: BaryonConfig,
    sim_config: SimulationConfig,
    n_accesses: int = 50_000,
    jobs: int = 1,
    *,
    max_attempts: int = 2,
    cell_timeout_s: float = DEFAULT_CELL_TIMEOUT_S,
    checkpoint: Optional[str] = None,
    resume: Optional[str] = None,
    telemetry: Optional[SweepTelemetry] = None,
    manifest: Optional[str] = None,
) -> MatrixOutcome:
    """Execute a cell plan, in-process or across a ``fork`` pool.

    The outcome is independent of ``jobs``, retries, and resumption —
    the parallel/serial equivalence tests pin this down. Failed cells
    (after ``max_attempts`` attempts each) are reported in
    ``MatrixOutcome.failed`` instead of aborting the whole matrix.

    ``checkpoint`` names a JSON file atomically rewritten after every
    finished cell; ``resume`` preloads finished cells from such a file
    (missing file: start fresh; malformed or wrong-plan file: raise
    :class:`~repro.common.errors.ConfigurationError`). The two may name
    the same path.

    ``telemetry`` (a :class:`~repro.parallel.telemetry.SweepTelemetry`)
    attaches sweep-scale observability: a span tree
    (``sweep`` → ``plan``/``fork``/``simulate``/``merge``/``checkpoint``
    phases, a ``cell`` span per attempt with the worker's own spans
    adopted underneath), live heartbeat-driven progress, and cross-shard
    metrics in :attr:`MatrixOutcome.metrics`. Counters and results are
    bit-identical with telemetry on, off, or partially on.

    ``manifest`` names a run-manifest JSON to write after the fold; when
    omitted but ``checkpoint`` is set, ``<checkpoint>.manifest.json`` is
    written so every checkpointed sweep carries its provenance.
    """
    if max_attempts < 1:
        raise ValueError("max_attempts must be >= 1")
    start = perf_counter()
    effective = resolve_jobs(jobs, len(plan))
    spans, progress, _ = _telemetry_parts(telemetry)
    by_index = {cell.index: cell for cell in plan}
    sweep_span = spans.start(
        "sweep", cells=len(plan), jobs=effective, accesses=n_accesses,
    ) if spans.enabled else None
    plan_span = spans.start(
        "plan", parent=sweep_span,
    ) if spans.enabled else None
    fingerprint = plan_fingerprint(plan, n_accesses, config, sim_config)
    done: Dict[int, Dict[str, Any]] = {}
    resumed = 0
    if resume is not None and os.path.exists(resume):
        wanted = {cell.index for cell in plan}
        done = {
            index: payload
            for index, payload in load_checkpoint(resume, fingerprint).items()
            if index in wanted
        }
        resumed = len(done)
        spans.event(sweep_span, "resume", cells=resumed, path=resume)
    pending = [cell for cell in plan if cell.index not in done]
    spans.end(plan_span, pending=len(pending), resumed=resumed)
    if spans.enabled and done:
        # Resumed cells still appear in the tree: a zero-work cell span
        # (marked ``resumed``) adopting whatever spans the original
        # attempt shipped in its checkpointed payload.
        for index in sorted(done):
            cell = by_index[index]
            cell_span = spans.start(
                "cell", parent=sweep_span, index=index,
                workload=cell.workload, design=cell.design,
                seed=cell.seed, resumed=True,
            )
            if done[index].get("spans"):
                spans.adopt(done[index]["spans"], parent=cell_span)
            spans.end(cell_span)
    if progress is not None:
        for index in sorted(done):
            progress.on_event(_cell_event(
                "cell_done", by_index[index], 0,
                elapsed_s=0.0, resumed=True,
            ))
    failures: Dict[int, Dict[str, Any]] = {}

    def note_success(index: int, payload: Dict[str, Any]) -> None:
        done[index] = payload
        if checkpoint is not None:
            ckpt_span = spans.start(
                "checkpoint", parent=sweep_span, cells=len(done),
            ) if spans.enabled else None
            write_checkpoint(checkpoint, fingerprint, done)
            spans.end(ckpt_span)

    simulate_span = spans.start(
        "simulate", parent=sweep_span, pending=len(pending),
    ) if spans.enabled else None
    if not pending:
        retries = 0
    elif effective <= 1:
        retries = _run_serial(
            pending, config, sim_config, n_accesses, max_attempts,
            note_success, failures,
            telemetry=telemetry, parent_span=simulate_span,
        )
    else:
        retries = _run_pool(
            pending, config, sim_config, n_accesses, effective, max_attempts,
            cell_timeout_s, note_success, failures,
            telemetry=telemetry, parent_span=simulate_span,
        )
    spans.end(simulate_span, retries=retries, failed=len(failures))

    merge_span = spans.start(
        "merge", parent=sweep_span,
    ) if spans.enabled else None
    outcome = _fold(plan, list(done.values()), effective, perf_counter() - start)
    outcome.retries = retries
    outcome.resumed = resumed
    for index, error in failures.items():
        outcome.failed[by_index[index].key] = dict(error)
    spans.end(merge_span, results=len(outcome.results))

    manifest_path = manifest
    if manifest_path is None and checkpoint is not None:
        manifest_path = checkpoint + ".manifest.json"
    if manifest_path is not None:
        write_manifest(manifest_path, build_manifest(fingerprint, outcome, plan))
        spans.event(sweep_span, "manifest", path=manifest_path)
    spans.end(sweep_span, failed=len(outcome.failed), retries=retries)
    return outcome
