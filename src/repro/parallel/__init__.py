"""`repro.parallel` — sharded execution of experiment matrices.

Every figure in the paper is a (workload × design) matrix, and the
design-space sweeps add a seed axis on top. This package runs that
matrix as a deterministic *plan* of independent cells:

* :func:`plan_cells` expands (workloads, designs, seeds) into an ordered
  cell list where each cell carries its own seed — the plan alone
  determines every result;
* :func:`run_plan` executes a plan in-process or across a ``fork``
  process pool, reusing generated traces per (workload, seed) and
  merging per-cell counter shards through the
  :meth:`~repro.common.stats.CounterGroup.merge` /
  :meth:`~repro.common.stats.RatioStat.merge` APIs into a
  :class:`MatrixOutcome`.

The public entry points most callers want are
:func:`repro.analysis.run_matrix` (``jobs=N``) and
:func:`repro.analysis.run_matrix_sharded`; the CLI exposes the same
through ``--jobs``. See ``docs/performance.md``.
"""

from repro.parallel.plan import Cell, plan_cells
from repro.parallel.runner import (
    DEFAULT_CELL_TIMEOUT_S,
    TRACE_CACHE_CAPACITY,
    CellExecutor,
    MatrixOutcome,
    clear_trace_cache,
    fork_available,
    resolve_jobs,
    run_plan,
)
from repro.parallel.telemetry import (
    DEFAULT_HEARTBEAT_EVERY,
    SweepTelemetry,
    WorkerTelemetry,
)

__all__ = [
    "Cell",
    "CellExecutor",
    "DEFAULT_CELL_TIMEOUT_S",
    "DEFAULT_HEARTBEAT_EVERY",
    "MatrixOutcome",
    "SweepTelemetry",
    "TRACE_CACHE_CAPACITY",
    "WorkerTelemetry",
    "clear_trace_cache",
    "fork_available",
    "plan_cells",
    "resolve_jobs",
    "run_plan",
]
