"""Shard planning for the (workload × design × seed) experiment matrix.

A *plan* is an ordered list of :class:`Cell` objects, one per simulation.
Every source of randomness in a cell — trace generation, controller
tie-breaking, oracle noise — derives from the cell's own ``seed``, so a
plan fully determines its results regardless of which process executes
which cell, in what order, or how cells are chunked across workers. That
property is what makes ``run_matrix(jobs=N)`` bit-identical to the
serial run.

Cells are ordered workload-major (workload, then seed, then design) so
cells that replay the same generated trace are contiguous; the runner's
chunked shard assignment then generates each (workload, seed) stream at
most once per worker process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Cell:
    """One (workload, design, seed) simulation in a matrix plan.

    ``index`` is the cell's stable position in the plan (used to pair
    shard payloads back to cells); ``keyed_by_seed`` records whether the
    caller asked for an explicit multi-seed sweep, which widens the
    result key from (workload, design) to (workload, design, seed).
    """

    workload: str
    design: str
    seed: int
    index: int
    keyed_by_seed: bool = False

    @property
    def key(self) -> Tuple:
        if self.keyed_by_seed:
            return (self.workload, self.design, self.seed)
        return (self.workload, self.design)

    @property
    def trace_key(self) -> Tuple:
        """Cells with equal trace keys replay the identical stream."""
        return (self.workload, self.seed)


def plan_cells(
    workloads: Iterable[str],
    designs: Iterable[str],
    seed: int = 1,
    seeds: Optional[Iterable[int]] = None,
) -> List[Cell]:
    """Expand a matrix into its deterministic cell plan.

    With ``seeds`` given, every (workload, design) pair runs once per
    seed and results are keyed by the 3-tuple; otherwise the single
    ``seed`` applies to every cell — exactly the pre-parallel
    ``run_matrix`` behaviour, preserving all published figure results.
    """
    workload_list = list(workloads)
    design_list = list(designs)
    seed_list: Sequence[int]
    keyed_by_seed = seeds is not None
    seed_list = [int(s) for s in seeds] if seeds is not None else [int(seed)]
    if not seed_list:
        raise ValueError("seeds must be non-empty when given")
    cells: List[Cell] = []
    for workload in workload_list:
        for cell_seed in seed_list:
            for design in design_list:
                cells.append(
                    Cell(
                        workload=workload,
                        design=design,
                        seed=cell_seed,
                        index=len(cells),
                        keyed_by_seed=keyed_by_seed,
                    )
                )
    return cells
