"""Unison Cache (Jevdjic et al., MICRO 2014).

A die-stacked DRAM cache with 2 kB pages, 64 B sub-blocking via *footprint
prediction*, embedded in-DRAM tags and a way predictor:

* pages allocate on a miss but fetch only the *predicted footprint* — the
  set of 64 B lines the page used during its previous residency (tracked
  in a footprint history table); first-time pages fetch the demanded line
  plus a small default spatial window;
* tags live in DRAM next to the data, so every lookup costs a fast-memory
  access; a way predictor lets the common case issue tag+data as a single
  access, with a second access on misprediction;
* unused sub-block slots of a page stay unused — the capacity
  under-utilization Baryon's co-location removes (Fig. 1a).
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.baselines.base import BaselineController
from repro.cache.replacement import CacheLine, LruSet
from repro.core.events import AccessCase, AccessResult

#: Default footprint for never-seen pages: the demanded line plus the next
#: ones in this window (Footprint Cache's singleton/spatial default).
_DEFAULT_WINDOW_LINES = 4


class UnisonCache(BaselineController):
    """Footprint-predicting sub-blocked DRAM cache with in-DRAM tags."""

    name = "unison"

    def __init__(self, config=None, devices=None) -> None:
        super().__init__(config, devices)
        layout = self.config.layout
        g = self.geometry
        fast_pages = max(1, layout.fast_capacity // g.block_size)
        self.ways = layout.associativity
        self.num_sets = max(1, fast_pages // self.ways)
        self.lines_per_page = g.block_size // g.cacheline_size
        self._sets: Dict[int, LruSet] = {}
        #: Footprint history: page id -> line-index bitmap of the last
        #: residency. The SRAM table is bounded — Baryon's evaluation
        #: scales it with the fast memory size (one entry per fast page,
        #: doubled) — with FIFO eviction of the oldest entries.
        self._history: Dict[int, int] = {}
        self._history_capacity = max(1024, 2 * fast_pages)
        #: Way predictor: last way used per set (MRU-based prediction).
        self._predicted_way: Dict[int, int] = {}

    def _set_for(self, index: int) -> LruSet:
        cache_set = self._sets.get(index)
        if cache_set is None:
            cache_set = LruSet(self.ways)
            self._sets[index] = cache_set
        return cache_set

    def _line_index(self, addr: int) -> int:
        return (addr % self.geometry.block_size) // self.geometry.cacheline_size

    def access(self, addr: int, is_write: bool, now: Optional[float] = None) -> AccessResult:
        now = self._advance(now)
        g = self.geometry
        page_id = g.block_id(addr)
        set_index = page_id % self.num_sets
        tag = page_id // self.num_sets
        line_idx = self._line_index(addr)
        cache_set = self._set_for(set_index)

        line = cache_set.lookup(tag)
        # In-DRAM tags: the tag probe is a fast-memory access. With a
        # correct way prediction it is bundled with the data access.
        predicted = self._predicted_way.get(set_index)
        tag_probe = self.devices.fast.read(now, g.cacheline_size, demand=True)
        latency = tag_probe.total_cycles
        if line is not None:
            actual_way = line.payload["way"]
            if predicted is not None and predicted != actual_way:
                # Misprediction: a second access to the right way.
                latency += self.devices.fast.read(
                    now, g.cacheline_size, demand=True
                ).total_cycles
                self.stats.inc("way_mispredictions")
            self._predicted_way[set_index] = actual_way

        if line is not None:
            cache_set.touch(line)
            present: Set[int] = line.payload["present"]
            touched: Set[int] = line.payload["touched"]
            touched.add(line_idx)
            if line_idx in present:
                if is_write:
                    line.payload["dirty"].add(line_idx)
                    self.devices.fast.write(now, g.cacheline_size)
                return self._count(
                    AccessResult(AccessCase.COMMIT_HIT, latency, is_write), is_write, addr
                )
            # Footprint miss: fetch the single line from slow memory.
            if is_write:
                demand = self.devices.slow.write(now, g.cacheline_size)
                line.payload["dirty"].add(line_idx)
            else:
                demand = self.devices.slow.read(now, g.cacheline_size, demand=True)
            self.devices.fast.write(now, g.cacheline_size)
            present.add(line_idx)
            self.stats.inc("footprint_misses")
            return self._count(
                AccessResult(AccessCase.STAGE_MISS, latency + demand.total_cycles, is_write),
                is_write,
                addr,
            )

        # Page miss: allocate and fetch the predicted footprint.
        if is_write:
            demand = self.devices.slow.write(now, g.cacheline_size)
        else:
            demand = self.devices.slow.read(now, g.cacheline_size, demand=True)
        latency += demand.total_cycles
        footprint = self._predict_footprint(page_id, line_idx)
        free_way = len(cache_set.lines)
        if cache_set.is_full():
            free_way = self._evict(now, cache_set, set_index)
        fetch_lines = len(footprint)
        extra = max(0, fetch_lines - 1) * g.cacheline_size
        if extra:
            self.devices.slow.read(now, extra, demand=False)
        self.devices.fast.write(now, fetch_lines * g.cacheline_size)
        payload = {
            "page": page_id,
            "way": free_way,
            "present": set(footprint),
            "touched": {line_idx},
            "dirty": {line_idx} if is_write else set(),
        }
        cache_set.insert(CacheLine(tag, dirty=is_write, payload=payload))
        self.stats.inc("page_fills")
        self.stats.inc("footprint_fetched_lines", fetch_lines)
        return self._count(
            AccessResult(AccessCase.BLOCK_MISS, latency, is_write), is_write, addr
        )

    def _predict_footprint(self, page_id: int, line_idx: int) -> Set[int]:
        bitmap = self._history.get(page_id)
        if bitmap is None:
            end = min(self.lines_per_page, line_idx + _DEFAULT_WINDOW_LINES)
            return set(range(line_idx, end))
        footprint = {i for i in range(self.lines_per_page) if (bitmap >> i) & 1}
        footprint.add(line_idx)
        return footprint

    def _evict(self, now: float, cache_set: LruSet, set_index: int) -> int:
        """Evict the LRU page; returns the way index it occupied."""
        victim = cache_set.victim()
        payload = victim.payload
        dirty_lines = len(payload["dirty"])
        if dirty_lines:
            nbytes = dirty_lines * self.geometry.cacheline_size
            self.devices.fast.read(now, nbytes, demand=False)
            self.devices.slow.write(now, nbytes)
            self.stats.inc("dirty_writebacks")
        bitmap = 0
        for i in payload["touched"]:
            bitmap |= 1 << i
        self._history.pop(payload["page"], None)
        self._history[payload["page"]] = bitmap
        while len(self._history) > self._history_capacity:
            # FIFO: dicts preserve insertion order, so the first key is
            # the oldest footprint record.
            self._history.pop(next(iter(self._history)))
            self.stats.inc("history_evictions")
        cache_set.evict(victim.tag)
        self.stats.inc("evictions")
        return victim.payload["way"]
