"""Baseline hybrid-memory and DRAM-cache designs the paper compares against.

* :class:`~repro.baselines.simple_cache.SimpleCache` — **Simple**: a plain
  2 kB-block, 4-way LRU DRAM cache, no compression, no sub-blocking;
* :class:`~repro.baselines.unison.UnisonCache` — **Unison Cache** (MICRO'14):
  2 kB pages with 64 B footprint sub-blocking, in-DRAM tags, way prediction
  and a footprint history table — sub-blocking but no compression;
* :class:`~repro.baselines.dice.DiceCache` — **DICE** (ISCA'17): a
  direct-mapped compressed DRAM cache of 64 B lines where neighbouring
  lines share a set when compressible — compression but no sub-blocking
  (evaluated with a perfect way predictor, as in the paper);
* :class:`~repro.baselines.hybrid2.Hybrid2` — **Hybrid2** (HPCA'20): a flat,
  fully-associative hybrid memory with 256 B sub-blocking and write-cost
  migration decisions, no compression. It runs on the shared Baryon
  machinery with compression disabled, physical-block sharing disabled and
  the commit model reduced to its dirty-traffic term (k = 0), which is
  exactly how the paper positions it.

All expose the same ``access(addr, is_write, now) -> AccessResult`` duck
type as :class:`~repro.core.controller.BaryonController`.
"""

from repro.baselines.base import BaselineController
from repro.baselines.dice import DiceCache
from repro.baselines.hybrid2 import Hybrid2
from repro.baselines.simple_cache import SimpleCache
from repro.baselines.unison import UnisonCache

__all__ = [
    "BaselineController",
    "DiceCache",
    "Hybrid2",
    "SimpleCache",
    "UnisonCache",
]
