"""DICE: a compressed DRAM cache (Young et al., ISCA 2017).

64 B blocks, direct-mapped, with *dictionary-free* compression that packs
up to four neighbouring cachelines into one 64 B physical slot when they
compress. We model the cache at aligned 4-line-group granularity: a group
maps to one set; the number of its lines resident in the slot is the
group's achievable CF (from the shared compressibility oracle, the same
source Baryon uses so the comparison is apples-to-apples).

Per the paper's evaluation setup, DICE runs with a *perfect* way/index
predictor, so hits cost a single fast-memory access and no extra tag
probes. Compressed residency also grants DICE the memory-to-LLC spatial
prefetch of co-compressed lines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.baselines.base import BaselineController
from repro.compression.synthetic import SyntheticCompressibility
from repro.core.events import AccessCase, AccessResult


@dataclass
class _GroupEntry:
    """Resident state of one compressed line group in its set."""

    group_id: int
    #: Line indices (0..3 within the group) resident in the slot.
    present: Set[int] = field(default_factory=set)
    dirty: Set[int] = field(default_factory=set)
    cf: int = 1


class DiceCache(BaselineController):
    """Direct-mapped compressed 64 B-line DRAM cache."""

    name = "dice"
    _GROUP_LINES = 4
    #: TAD (tag-and-data) transfer size: the tag rides in spare ECC bits
    #: plus alignment, costing extra fast-memory bandwidth per access.
    _TAD_BYTES = 72

    def __init__(self, config=None, devices=None, compressibility=None, seed: int = 1) -> None:
        super().__init__(config, devices)
        self.oracle = compressibility or SyntheticCompressibility(seed=seed)
        g = self.geometry
        fast_lines = max(1, self.config.layout.fast_capacity // g.cacheline_size)
        self.num_sets = fast_lines
        self._sets: Dict[int, _GroupEntry] = {}

    # -- address helpers -------------------------------------------------------
    def _group_of(self, addr: int) -> tuple[int, int]:
        line = addr // self.geometry.cacheline_size
        return line // self._GROUP_LINES, line % self._GROUP_LINES

    def _group_cf(self, group_id: int) -> int:
        """Achievable lines-per-slot for this group via the shared oracle.

        The oracle speaks sub-block ranges; cacheline groups compress with
        the same locality, so we query the CF of the enclosing sub-block
        range — both are 'can 4x the data fit in one transfer unit'.
        """
        g = self.geometry
        addr = group_id * self._GROUP_LINES * g.cacheline_size
        return self.oracle.max_cf(g.block_id(addr), g.sub_block_index(addr), True)

    def access(self, addr: int, is_write: bool, now: Optional[float] = None) -> AccessResult:
        now = self._advance(now)
        g = self.geometry
        group_id, line_in_group = self._group_of(addr)
        set_index = group_id % self.num_sets
        entry = self._sets.get(set_index)

        if entry is not None and entry.group_id == group_id and line_in_group in entry.present:
            if is_write:
                device = self.devices.fast.write(now, self._TAD_BYTES)
                entry.dirty.add(line_in_group)
                if self.oracle.note_write(g.block_id(addr), g.sub_block_index(addr)):
                    self._recheck_fit(now, entry, addr)
            else:
                device = self.devices.fast.read(now, self._TAD_BYTES)
            latency = device.total_cycles
            prefetched = []
            if entry.cf > 1 and not is_write:
                latency += self.config.compression.decompression_latency_cycles
                base = group_id * self._GROUP_LINES * g.cacheline_size
                prefetched = [
                    base + i * g.cacheline_size
                    for i in entry.present
                    if i != line_in_group
                ]
            return self._count(
                AccessResult(AccessCase.COMMIT_HIT, latency, is_write, False, prefetched),
                is_write,
                addr,
            )

        # Miss: fetch the line (plus compressible neighbours) from slow.
        if is_write:
            demand = self.devices.slow.write(now, g.cacheline_size)
        else:
            demand = self.devices.slow.read(now, g.cacheline_size, demand=True)
        latency = demand.total_cycles

        cf = self._group_cf(group_id)
        if entry is not None and entry.group_id == group_id:
            # Same group resident but this line missing (a lower-CF slot):
            # refetch the group at its current CF capacity.
            self._writeback(now, entry)
        elif entry is not None:
            self._writeback(now, entry)
            self.stats.inc("evictions")
        start = (line_in_group // cf) * cf
        present = set(range(start, min(start + cf, self._GROUP_LINES)))
        present.add(line_in_group)
        extra = (len(present) - 1) * g.cacheline_size
        if extra:
            self.devices.slow.read(now, extra, demand=False)
        # Compressed install: CF lines share one 64 B slot (plus tag).
        install_bytes = max(
            self._TAD_BYTES, (len(present) // max(1, cf)) * self._TAD_BYTES
        )
        self.devices.fast.write(now, install_bytes)
        self._sets[set_index] = _GroupEntry(
            group_id=group_id,
            present=present,
            dirty={line_in_group} if is_write else set(),
            cf=cf,
        )
        self.stats.inc("line_fills")
        return self._count(
            AccessResult(AccessCase.BLOCK_MISS, latency, is_write), is_write, addr
        )

    def _recheck_fit(self, now: float, entry: _GroupEntry, addr: int) -> None:
        """A write changed the data: lines may no longer co-compress."""
        new_cf = self._group_cf(entry.group_id)
        if new_cf < entry.cf:
            # Overflow: keep only the demanded line's sub-group resident.
            self.stats.inc("write_overflows")
            line_in_group = (addr // self.geometry.cacheline_size) % self._GROUP_LINES
            keep_start = (line_in_group // new_cf) * new_cf
            keep = set(range(keep_start, keep_start + new_cf))
            evicted_dirty = entry.dirty - keep
            if evicted_dirty:
                nbytes = len(evicted_dirty) * self.geometry.cacheline_size
                self.devices.fast.read(now, nbytes, demand=False)
                self.devices.slow.write(now, nbytes)
            entry.present &= keep
            entry.dirty &= keep
            entry.cf = new_cf

    def _writeback(self, now: float, entry: _GroupEntry) -> None:
        if entry.dirty:
            nbytes = len(entry.dirty) * self.geometry.cacheline_size
            self.devices.fast.read(now, nbytes, demand=False)
            self.devices.slow.write(now, nbytes)
            self.stats.inc("dirty_writebacks")
