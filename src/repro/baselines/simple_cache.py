"""Simple: the no-compression, no-sub-blocking DRAM cache baseline.

2 kB blocks, 4-way set-associative, LRU, whole-block fills and whole-block
dirty writebacks — the "Simple" configuration that normalizes Fig. 9.
Metadata follows the Section III-A baseline: a remap cache probed on every
access, with off-chip remap-table reads on misses.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.baselines.base import BaselineController
from repro.cache.replacement import CacheLine, LruSet
from repro.core.events import AccessCase, AccessResult
from repro.metadata.remap_cache import RemapCache


class SimpleCache(BaselineController):
    """Plain block-grain DRAM cache of the slow memory."""

    name = "simple"

    def __init__(self, config=None, devices=None) -> None:
        super().__init__(config, devices)
        layout = self.config.layout
        fast_blocks = max(1, layout.fast_capacity // self.geometry.block_size)
        self.ways = layout.associativity
        self.num_sets = max(1, fast_blocks // self.ways)
        self._sets: Dict[int, LruSet] = {}
        self.remap_cache = RemapCache(
            num_sets=self.config.remap_cache.num_sets,
            ways=self.config.remap_cache.ways,
            latency_cycles=self.config.remap_cache.latency_cycles,
        )

    def _set_for(self, index: int) -> LruSet:
        cache_set = self._sets.get(index)
        if cache_set is None:
            cache_set = LruSet(self.ways)
            self._sets[index] = cache_set
        return cache_set

    def access(self, addr: int, is_write: bool, now: Optional[float] = None) -> AccessResult:
        now = self._advance(now)
        g = self.geometry
        block_id = g.block_id(addr)
        set_index = block_id % self.num_sets
        tag = block_id // self.num_sets
        cache_set = self._set_for(set_index)

        meta = float(self.remap_cache.latency_cycles)
        if not self.remap_cache.access(g.super_block_id(addr)):
            meta += self.devices.fast.read(now, 16, demand=True).total_cycles

        line = cache_set.lookup(tag)
        if line is not None:
            cache_set.touch(line)
            if is_write:
                line.dirty = True
                device = self.devices.fast.write(now, g.cacheline_size)
            else:
                device = self.devices.fast.read(now, g.cacheline_size)
            return self._count(
                AccessResult(AccessCase.COMMIT_HIT, meta + device.total_cycles, is_write),
                is_write,
                addr,
            )

        # Miss: respond from slow memory, then fill the whole 2 kB block.
        if is_write:
            demand = self.devices.slow.write(now, g.cacheline_size)
        else:
            demand = self.devices.slow.read(now, g.cacheline_size, demand=True)
        latency = meta + demand.total_cycles
        if cache_set.is_full():
            victim = cache_set.victim()
            if victim.dirty:
                self.devices.fast.read(now, g.block_size, demand=False)
                self.devices.slow.write(now, g.block_size)
                self.stats.inc("dirty_writebacks")
            cache_set.evict(victim.tag)
            self.stats.inc("evictions")
        self.devices.slow.read(now, g.block_size - g.cacheline_size, demand=False)
        self.devices.fast.write(now, g.block_size)
        cache_set.insert(CacheLine(tag, dirty=is_write))
        self.stats.inc("block_fills")
        return self._count(
            AccessResult(AccessCase.BLOCK_MISS, latency, is_write), is_write, addr
        )
