"""Simple: the no-compression, no-sub-blocking DRAM cache baseline.

2 kB blocks, 4-way set-associative, LRU, whole-block fills and whole-block
dirty writebacks — the "Simple" configuration that normalizes Fig. 9.
Metadata follows the Section III-A baseline: a remap cache probed on every
access, with off-chip remap-table reads on misses.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.baselines.base import BaselineController
from repro.cache.replacement import CacheLine, LruSet
from repro.core.events import CASE_COUNTER_KEYS, AccessCase, AccessResult
from repro.metadata.remap_cache import RemapCache

_COMMIT_HIT_KEY = CASE_COUNTER_KEYS[AccessCase.COMMIT_HIT]


class SimpleCache(BaselineController):
    """Plain block-grain DRAM cache of the slow memory."""

    name = "simple"

    def __init__(self, config=None, devices=None) -> None:
        super().__init__(config, devices)
        layout = self.config.layout
        fast_blocks = max(1, layout.fast_capacity // self.geometry.block_size)
        self.ways = layout.associativity
        self.num_sets = max(1, fast_blocks // self.ways)
        self._sets: Dict[int, LruSet] = {}
        self.remap_cache = RemapCache(
            num_sets=self.config.remap_cache.num_sets,
            ways=self.config.remap_cache.ways,
            latency_cycles=self.config.remap_cache.latency_cycles,
        )
        #: Deferred-classification decline counters (see the Baryon
        #: controller's attribute of the same name). The only scalar-path
        #: case here is the whole-block fill with its eviction.
        self.deferred_declines: Dict[str, int] = {"block_fill": 0}

    def _set_for(self, index: int) -> LruSet:
        cache_set = self._sets.get(index)
        if cache_set is None:
            cache_set = LruSet(self.ways)
            self._sets[index] = cache_set
        return cache_set

    def access(self, addr: int, is_write: bool, now: Optional[float] = None) -> AccessResult:
        now = self._advance(now)
        g = self.geometry
        block_id = g.block_id(addr)
        set_index = block_id % self.num_sets
        tag = block_id // self.num_sets
        cache_set = self._set_for(set_index)

        meta = float(self.remap_cache.latency_cycles)
        if not self.remap_cache.access(g.super_block_id(addr)):
            meta += self.devices.fast.read(now, 16, demand=True).total_cycles

        line = cache_set.lookup(tag)
        if line is not None:
            cache_set.touch(line)
            if is_write:
                line.dirty = True
                device = self.devices.fast.write(now, g.cacheline_size)
            else:
                device = self.devices.fast.read(now, g.cacheline_size)
            return self._count(
                AccessResult(AccessCase.COMMIT_HIT, meta + device.total_cycles, is_write),
                is_write,
                addr,
            )

        # Miss: respond from slow memory, then fill the whole 2 kB block.
        if is_write:
            demand = self.devices.slow.write(now, g.cacheline_size)
        else:
            demand = self.devices.slow.read(now, g.cacheline_size, demand=True)
        latency = meta + demand.total_cycles
        if cache_set.is_full():
            victim = cache_set.victim()
            if victim.dirty:
                self.devices.fast.read(now, g.block_size, demand=False)
                self.devices.slow.write(now, g.block_size)
                self.stats.inc("dirty_writebacks")
            cache_set.evict(victim.tag)
            self.stats.inc("evictions")
        self.devices.slow.read(now, g.block_size - g.cacheline_size, demand=False)
        self.devices.fast.write(now, g.block_size)
        cache_set.insert(CacheLine(tag, dirty=is_write))
        self.stats.inc("block_fills")
        return self._count(
            AccessResult(AccessCase.BLOCK_MISS, latency, is_write), is_write, addr
        )

    # ------------------------------------------------ deferred batch path
    @property
    def supports_batching(self) -> bool:
        """Hits mutate no clock-dependent state (the LRU stamp and the
        remap-cache fill are trace-order effects), so the deferred seam
        applies whenever per-access event tracing is off."""
        return not self.obs.enabled

    def access_deferred(self, addr: int, is_write: bool = False):
        """Serve one block hit eagerly; defer its channel timing.

        Returns an op tuple in the shared 7-slot shape (trailing slots
        unused: this design moves one cacheline per hit and never
        prefetches, so ``(rc_miss, is_write)`` fully determines the
        replay). Misses fill a whole block (eviction, slow fetch:
        clock-dependent channel work ordered against the fill) and
        decline to the scalar path with **no state applied**.
        """
        g = self.geometry
        block_id = g.block_id(addr)
        set_index = block_id % self.num_sets
        tag = block_id // self.num_sets
        cache_set = self._set_for(set_index)
        line = cache_set.lookup(tag)
        if line is None:
            self.deferred_declines["block_fill"] += 1
            return None

        rc_miss = not self.remap_cache.access(g.super_block_id(addr))
        fast = self.devices.fast
        if rc_miss:
            fast._n_read_bytes += 16
            fast._n_reads += 1
            fast._n_demand_read_bytes += 16
        cache_set.touch(line)
        nbytes = g.cacheline_size
        if is_write:
            line.dirty = True
            fast._n_write_bytes += nbytes
            fast._n_writes += 1
        else:
            fast._n_read_bytes += nbytes
            fast._n_reads += 1
            fast._n_demand_read_bytes += nbytes
        stats = self.stats
        stats.inc("accesses")
        stats.inc("writes" if is_write else "reads")
        stats.inc("served_fast")
        stats.inc(_COMMIT_HIT_KEY)
        return (rc_miss, is_write, None, None, None, None, None)

    def access_batch(self, ops, cycles: float, mlp: float) -> float:
        """Replay a span of deferred hit ops against the fast channel.

        Mirrors the scalar :meth:`access` float accumulation operation
        for operation (``probe_lat`` is the ``+ 0.0`` spike-free device
        latency), so ``cycles`` and the channel busy state stay
        bit-identical to the scalar path.
        """
        fast = self.devices.fast
        transfer = fast.pool.transfer
        rc_lat = float(self.remap_cache.latency_cycles)
        probe_lat = fast.read_latency + 0.0
        nbytes = self.geometry.cacheline_size
        now = self._now
        for op in ops:
            if op.__class__ is float:
                cycles += op
                continue
            rc_miss = op[0]
            is_write = op[1]
            now = cycles
            if is_write:
                # Posted: channel occupancy only, no core-visible latency.
                if rc_miss:
                    transfer(now, 16, True)
                transfer(now, nbytes)
                continue
            meta = rc_lat
            if rc_miss:
                queue, tr = transfer(now, 16, True)
                meta += (probe_lat + queue) + tr
            queue, tr = transfer(now, nbytes, True)
            cycles += (meta + ((probe_lat + queue) + tr)) / mlp
        self._now = now
        return cycles
