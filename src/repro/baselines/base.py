"""Common scaffolding for baseline controllers.

Each baseline owns the same :class:`~repro.devices.memory.HybridMemoryDevices`
pair as Baryon and returns :class:`~repro.core.events.AccessResult` objects,
so the system simulator and the analysis code treat all designs uniformly.
"""

from __future__ import annotations

import abc
from typing import Optional

from repro.common.config import BaryonConfig
from repro.common.stats import CounterGroup
from repro.core.events import CASE_COUNTER_KEYS, FAST_CASES, AccessResult
from repro.devices.memory import HybridMemoryDevices
from repro.obs.tracer import NULL_TRACER


class BaselineController(abc.ABC):
    """Base class: devices, stats, clock, and the access() contract."""

    name = "baseline"

    #: May the simulator drive this controller through the deferred batch
    #: fast path (``access_deferred`` + ``access_batch``)? Baselines are
    #: scalar-only unless they implement the pair and shadow this.
    supports_batching = False

    def __init__(
        self,
        config: Optional[BaryonConfig] = None,
        devices: Optional[HybridMemoryDevices] = None,
    ) -> None:
        self.config = config or BaryonConfig()
        self.geometry = self.config.geometry
        self.devices = devices or HybridMemoryDevices(self.config.timings)
        self.stats = CounterGroup(self.name)
        #: Observability hook point; see :mod:`repro.obs`.
        self.obs = NULL_TRACER
        self._now = 0.0

    def _advance(self, now: Optional[float]) -> float:
        if now is not None:
            self._now = now
        else:
            self._now += 1.0
        return self._now

    @abc.abstractmethod
    def access(self, addr: int, is_write: bool, now: Optional[float] = None) -> AccessResult:
        """Serve one 64 B memory-level access."""

    def _count(
        self, result: AccessResult, is_write: bool, addr: Optional[int] = None
    ) -> AccessResult:
        stats = self.stats
        stats.inc("accesses")
        stats.inc("writes" if is_write else "reads")
        fast = result.case in FAST_CASES
        if fast:
            stats.inc("served_fast")
        stats.inc(CASE_COUNTER_KEYS[result.case])
        if self.obs.enabled:
            self.obs.emit(
                "access", t=self._now, addr=addr,
                block=None if addr is None else self.geometry.block_id(addr),
                case=result.case.value, write=is_write,
                latency=result.latency_cycles, fast=fast,
                overflow=result.write_overflow,
            )
        return result

    def serve_rate(self) -> float:
        accesses = self.stats.get("accesses")
        return self.stats.get("served_fast") / accesses if accesses else 0.0
