"""Hybrid2 (Vasilakis et al., HPCA 2020): the flat-mode baseline.

Hybrid2 combines caching and migration in a flat hybrid memory: a small
fixed section of the fast memory acts as a sub-blocked (256 B) cache for
hot slow-memory data, and blocks whose cached footprint stabilizes are
*migrated* (swapped) into the OS-visible fast memory, with the decision
driven by write-back traffic (dirty sub-block counts).

That is exactly Baryon's pipeline with three features removed, which is
also how the paper frames the comparison (Sec. III-E: "when k = 0, the
policy only cares about the write traffic similar to Hybrid2"):

* no compression (every range has CF 1, no Z bit, no CF hints);
* no physical-block sharing (one logical block per fast block space);
* commit benefit = the dirty-traffic term only (k = 0).

So this class configures and wraps the shared
:class:`~repro.core.controller.BaryonController` accordingly. The cache
section size reuses the stage-area knob (Hybrid2's provisioned cache is of
the same tens-of-MB magnitude).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.common.config import BaryonConfig, CommitConfig
from repro.core.controller import BaryonController
from repro.core.events import AccessResult
from repro.devices.memory import HybridMemoryDevices


class Hybrid2:
    """Flat, fully-associative, sub-blocked, compression-free baseline."""

    name = "hybrid2"

    def __init__(
        self,
        config: Optional[BaryonConfig] = None,
        devices: Optional[HybridMemoryDevices] = None,
        seed: int = 1,
    ) -> None:
        base = config or BaryonConfig.fully_associative()
        # Hybrid2 is flat + fully-associative with a provisioned cache
        # section; honour a caller-specified flat fraction, defaulting to
        # a 75/25 flat/cache split when the config was cache-mode.
        flat_fraction = base.layout.flat_fraction or 0.75
        layout = dataclasses.replace(
            base.layout, flat_fraction=flat_fraction, fully_associative=True
        )
        self.config = dataclasses.replace(
            base,
            layout=layout,
            commit=CommitConfig(k=0.0),
            compression_enabled=False,
            share_physical_blocks=False,
            compressed_writeback=False,
        )
        self._inner = BaryonController(self.config, devices=devices, seed=seed)

    # -- delegation: same duck type as every other controller ----------------
    def access(self, addr: int, is_write: bool, now: Optional[float] = None) -> AccessResult:
        return self._inner.access(addr, is_write, now)

    @property
    def devices(self) -> HybridMemoryDevices:
        return self._inner.devices

    @property
    def stats(self):
        return self._inner.stats

    @property
    def geometry(self):
        return self._inner.geometry

    def serve_rate(self) -> float:
        return self._inner.serve_rate()
