"""Bit-level writer/reader used to encode compressor output exactly.

Hardware compressors produce a bit stream, not a byte stream; counting bits
honestly matters because CF quantization is decided on the encoded size.
The writer packs MSB-first into a ``bytearray``; the reader mirrors it.
"""

from __future__ import annotations


class BitWriter:
    """Append-only MSB-first bit packer."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._bit_count = 0

    @property
    def bit_length(self) -> int:
        """Number of bits written so far."""
        return self._bit_count

    def write(self, value: int, width: int) -> None:
        """Append the low ``width`` bits of ``value``, MSB first."""
        if width < 0:
            raise ValueError("width must be non-negative")
        if value < 0 or (width < value.bit_length()):
            raise ValueError(f"value {value} does not fit in {width} bits")
        for shift in range(width - 1, -1, -1):
            bit = (value >> shift) & 1
            byte_index = self._bit_count // 8
            if byte_index == len(self._buffer):
                self._buffer.append(0)
            if bit:
                self._buffer[byte_index] |= 1 << (7 - (self._bit_count % 8))
            self._bit_count += 1

    def getvalue(self) -> bytes:
        """The packed bytes (last byte zero-padded)."""
        return bytes(self._buffer)


class BitReader:
    """Sequential MSB-first bit reader over :class:`BitWriter` output."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    @property
    def position(self) -> int:
        return self._pos

    def read(self, width: int) -> int:
        """Read ``width`` bits as an unsigned integer."""
        if width < 0:
            raise ValueError("width must be non-negative")
        if self._pos + width > len(self._data) * 8:
            raise EOFError("bit stream exhausted")
        value = 0
        for _ in range(width):
            byte = self._data[self._pos // 8]
            bit = (byte >> (7 - (self._pos % 8))) & 1
            value = (value << 1) | bit
            self._pos += 1
        return value


def sign_extend(value: int, bits: int) -> int:
    """Interpret the low ``bits`` of ``value`` as two's complement."""
    mask = 1 << (bits - 1)
    return (value & (mask - 1)) - (value & mask)


def fits_signed(value: int, bits: int) -> bool:
    """True if ``value`` is representable in ``bits``-bit two's complement."""
    lo = -(1 << (bits - 1))
    hi = (1 << (bits - 1)) - 1
    return lo <= value <= hi
