"""Bit-level writer/reader used to encode compressor output exactly.

Hardware compressors produce a bit stream, not a byte stream; counting bits
honestly matters because CF quantization is decided on the encoded size.
The writer packs MSB-first and the reader mirrors it. Both are backed by a
single arbitrary-precision integer instead of per-bit byte twiddling, so an
n-bit stream costs O(writes) big-int shifts rather than n loop iterations —
the difference between the compressors being usable on the per-access hot
path and not. The byte-level output format (MSB-first, last byte
zero-padded) is unchanged.
"""

from __future__ import annotations


class BitWriter:
    """Append-only MSB-first bit packer."""

    def __init__(self) -> None:
        self._acc = 0
        self._bit_count = 0

    @property
    def bit_length(self) -> int:
        """Number of bits written so far."""
        return self._bit_count

    def write(self, value: int, width: int) -> None:
        """Append the low ``width`` bits of ``value``, MSB first."""
        if width < 0:
            raise ValueError("width must be non-negative")
        if value < 0 or (width < value.bit_length()):
            raise ValueError(f"value {value} does not fit in {width} bits")
        self._acc = (self._acc << width) | value
        self._bit_count += width

    def getvalue(self) -> bytes:
        """The packed bytes (last byte zero-padded)."""
        nbytes = (self._bit_count + 7) // 8
        pad = nbytes * 8 - self._bit_count
        return (self._acc << pad).to_bytes(nbytes, "big")


class BitReader:
    """Sequential MSB-first bit reader over :class:`BitWriter` output."""

    def __init__(self, data: bytes) -> None:
        self._value = int.from_bytes(data, "big")
        self._nbits = len(data) * 8
        self._pos = 0

    @property
    def position(self) -> int:
        return self._pos

    def read(self, width: int) -> int:
        """Read ``width`` bits as an unsigned integer."""
        if width < 0:
            raise ValueError("width must be non-negative")
        if self._pos + width > self._nbits:
            raise EOFError("bit stream exhausted")
        self._pos += width
        return (self._value >> (self._nbits - self._pos)) & ((1 << width) - 1)


def sign_extend(value: int, bits: int) -> int:
    """Interpret the low ``bits`` of ``value`` as two's complement."""
    mask = 1 << (bits - 1)
    return (value & (mask - 1)) - (value & mask)


def fits_signed(value: int, bits: int) -> bool:
    """True if ``value`` is representable in ``bits``-bit two's complement."""
    lo = -(1 << (bits - 1))
    hi = (1 << (bits - 1)) - 1
    return lo <= value <= hi
