"""Content-free compressibility model for large simulations.

Running real FPC/BDI over every fetched range is exact but slow, and the
controller only ever consumes the *quantized* outcome: "does this aligned
range of ``n`` sub-blocks fit one slot?" and "is it all zero?". This module
answers those questions from a statistical profile instead of real bytes,
deterministically — the same (block, range, version) always gives the same
answer, and answers are *monotonic* (if a 4-range fits, both its 2-ranges
fit), matching the physical reality that compressing less data into
proportionally less space is never harder under FPC/BDI's linear encodings.

Profiles are calibrated so the headline numbers of the paper hold: typical
average CFs of 1.5-2.0, the cacheline-aligned restriction costing roughly
1.78 -> 1.63 in CF, and write-induced overflows being rare for stable
blocks. Workload generators attach a profile per address region, so e.g. a
fotonik3d-like proxy can be highly compressible (CF 2.42) while an lbm-like
proxy is incompressible (CF ~1.0).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.common.errors import ConfigurationError

_GOLDEN64 = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


def _mix64(value: int) -> int:
    """SplitMix64 finalizer: a fast, well-distributed 64-bit hash."""
    value = (value + _GOLDEN64) & _MASK64
    value ^= value >> 30
    value = (value * 0xBF58476D1CE4E5B9) & _MASK64
    value ^= value >> 27
    value = (value * 0x94D049BB133111EB) & _MASK64
    value ^= value >> 31
    return value


def _hash_unit(*parts: int) -> float:
    """Deterministic uniform value in [0, 1) from integer parts."""
    acc = 0x243F6A8885A308D3
    for part in parts:
        acc = _mix64(acc ^ (part & _MASK64))
    return acc / float(1 << 64)


def _hash_unit5(a: int, b: int, c: int, d: int, e: int) -> float:
    """:func:`_hash_unit` specialized (and unrolled) for five parts.

    Every oracle draw hashes exactly five integers; skipping the varargs
    tuple, the loop and the five `_mix64` calls roughly halves the cost
    of the hottest pure function in the simulator. Bit-identical to
    ``_hash_unit(a, b, c, d, e)`` by construction.
    """
    acc = 0x243F6A8885A308D3
    for part in (a, b, c, d, e):
        v = (acc ^ (part & _MASK64)) + _GOLDEN64 & _MASK64
        v ^= v >> 30
        v = (v * 0xBF58476D1CE4E5B9) & _MASK64
        v ^= v >> 27
        v = (v * 0x94D049BB133111EB) & _MASK64
        acc = v ^ (v >> 31)
    return acc / 18446744073709551616.0


@dataclass(frozen=True)
class CompressibilityProfile:
    """Statistical description of one address region's compressibility.

    ``p_cf4`` / ``p_cf2`` are the probabilities that an aligned 4-range /
    2-range compresses into one sub-block slot (without the cacheline-
    aligned restriction); ``ca_penalty`` multiplies both when the stricter
    per-64 B-chunk restriction of Fig. 7 is enabled. ``p_zero`` is the
    fraction of all-zero ranges, and ``write_instability`` the probability
    that a write changes the data enough to re-roll its compressibility —
    the source of write overflows in the controller.
    """

    name: str = "default"
    p_cf4: float = 0.25
    p_cf2: float = 0.55
    p_zero: float = 0.05
    ca_penalty: float = 0.92
    write_instability: float = 0.02

    def __post_init__(self) -> None:
        for field_name in ("p_cf4", "p_cf2", "p_zero", "ca_penalty", "write_instability"):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{field_name} must be in [0, 1], got {value}")
        if self.p_cf4 > self.p_cf2:
            raise ConfigurationError("p_cf4 cannot exceed p_cf2 (monotonicity)")

    def effective_p(self, cf: int, cacheline_aligned: bool) -> float:
        """Probability that an aligned ``cf``-range fits one slot."""
        if cf == 1:
            return 1.0
        base = self.p_cf4 if cf == 4 else self.p_cf2
        return base * self.ca_penalty if cacheline_aligned else base

    def expected_cf(self, cacheline_aligned: bool = True) -> float:
        """Closed-form expected quantized CF under this profile.

        Evaluated over aligned 4-ranges: with probability p4 the whole
        range has CF 4; otherwise each half independently has CF 2 with
        (conditional) probability p2', else CF 1.
        """
        p4 = self.effective_p(4, cacheline_aligned)
        p2 = self.effective_p(2, cacheline_aligned)
        # Conditional probability a 2-range fits given its 4-range did not.
        p2_given_not4 = min(1.0, (p2 - p4) / (1.0 - p4)) if p4 < 1.0 else 1.0
        return p4 * 4.0 + (1.0 - p4) * (p2_given_not4 * 2.0 + (1.0 - p2_given_not4) * 1.0)


#: Ready-made profiles used by the workload proxies; the CF targets come
#: from the per-workload commentary in the paper's evaluation.
PROFILE_LIBRARY: Dict[str, CompressibilityProfile] = {
    "incompressible": CompressibilityProfile(
        "incompressible", p_cf4=0.0, p_cf2=0.03, p_zero=0.0, write_instability=0.05
    ),
    "low": CompressibilityProfile(
        "low", p_cf4=0.05, p_cf2=0.25, p_zero=0.02, write_instability=0.03
    ),
    "medium": CompressibilityProfile(
        "medium", p_cf4=0.25, p_cf2=0.55, p_zero=0.05, write_instability=0.02
    ),
    "high": CompressibilityProfile(
        "high", p_cf4=0.55, p_cf2=0.85, p_zero=0.08, write_instability=0.01
    ),
    "zero_heavy": CompressibilityProfile(
        "zero_heavy", p_cf4=0.45, p_cf2=0.70, p_zero=0.30, write_instability=0.01
    ),
}


class SyntheticCompressibility:
    """Deterministic compressibility oracle backed by profiles.

    One region = one profile over a contiguous block-id range. Per-block
    *versions* advance on destabilizing writes, re-rolling the hashes so a
    previously fitting range can overflow — exactly the event the stage
    area exists to absorb.
    """

    def __init__(self, seed: int = 1, cf_boost: float = 1.0) -> None:
        self.seed = seed
        #: Multiplier on every range's fit probability. Values above 1
        #: model the idealized metadata without the same-CF restriction
        #: (the "w/o same-CF" comparison point of Fig. 12).
        self.cf_boost = cf_boost
        self._regions: List[Tuple[int, int, CompressibilityProfile]] = []
        self._default = PROFILE_LIBRARY["medium"]
        self._versions: Dict[int, int] = {}
        self._write_counts: Dict[int, int] = {}
        # ``fits`` is pure given (block, quad, version): memoized verdicts.
        # Keys carry the version, so a version bump naturally misses; the
        # cache only needs explicit invalidation when profiles change.
        self._fits_cache: Dict[Tuple[int, int, int, int, bool], bool] = {}
        # Region resolution is a linear scan; every oracle query starts
        # with it, so the block -> profile answer is memoized alongside.
        self._profile_cache: Dict[int, CompressibilityProfile] = {}
        # Last ``peek_write`` draw: the deferred path probes a write's
        # stability verdict before committing it, so the paired
        # ``note_write`` can reuse the identical (block, sub, count) draw
        # instead of hashing twice.
        self._peek_memo: Tuple[int, int, int, float] | None = None

    def set_default_profile(self, profile: CompressibilityProfile) -> None:
        self._default = profile
        self._fits_cache.clear()
        self._profile_cache.clear()

    def add_region(
        self, first_block: int, last_block: int, profile: CompressibilityProfile
    ) -> None:
        """Attach ``profile`` to block ids in ``[first_block, last_block]``."""
        if first_block > last_block:
            raise ConfigurationError("region bounds out of order")
        self._regions.append((first_block, last_block, profile))
        self._fits_cache.clear()
        self._profile_cache.clear()

    def profile_of(self, block_id: int) -> CompressibilityProfile:
        cached = self._profile_cache.get(block_id)
        if cached is not None:
            return cached
        result = self._default
        for first, last, profile in self._regions:
            if first <= block_id <= last:
                result = profile
                break
        self._profile_cache[block_id] = result
        return result

    # -- oracle interface used by the controller -------------------------
    def fits(
        self,
        block_id: int,
        start_sub: int,
        n_sub: int,
        cacheline_aligned: bool = True,
    ) -> bool:
        """Does the aligned ``n_sub``-range compress into one slot?

        One comonotone uniform draw per aligned quad decides both CF
        levels: ``u < p4`` for the 4-range and ``u < p2`` for its
        2-ranges. Since ``p4 <= p2``, a fitting 4-range implies fitting
        2-ranges (monotonicity) while both marginal probabilities stay
        exactly at the profile's values.
        """
        return self.fits_at(
            block_id,
            start_sub,
            n_sub,
            cacheline_aligned,
            self._versions.get(block_id, 0),
        )

    def fits_at(
        self,
        block_id: int,
        start_sub: int,
        n_sub: int,
        cacheline_aligned: bool,
        version: int,
    ) -> bool:
        """:meth:`fits` evaluated at an explicit layout ``version`` (pure).

        The deferred access path uses this to test the post-write verdict
        (current version + 1) *before* committing a write's state effects;
        it shares the memo cache, so the later real query is a hit.
        """
        if n_sub == 1:
            return True
        quad_start = (start_sub // 4) * 4
        key = (block_id, quad_start, version, n_sub, cacheline_aligned)
        cached = self._fits_cache.get(key)
        if cached is not None:
            return cached
        profile = self.profile_of(block_id)
        u = _hash_unit5(self.seed, block_id, quad_start, version, 4)
        p = min(1.0, profile.effective_p(n_sub, cacheline_aligned) * self.cf_boost)
        result = u < p
        self._fits_cache[key] = result
        return result

    def is_zero(self, block_id: int, start_sub: int, n_sub: int) -> bool:
        """Z-bit oracle for the aligned range."""
        profile = self.profile_of(block_id)
        version = self._versions.get(block_id, 0)
        u = _hash_unit5(self.seed, block_id, start_sub, version, 0)
        return u < profile.p_zero

    def max_cf(
        self, block_id: int, sub_index: int, cacheline_aligned: bool = True
    ) -> int:
        """Largest CF of an aligned range containing ``sub_index``."""
        quad_start = (sub_index // 4) * 4
        if self.fits(block_id, quad_start, 4, cacheline_aligned):
            return 4
        pair_start = (sub_index // 2) * 2
        if self.fits(block_id, pair_start, 2, cacheline_aligned):
            return 2
        return 1

    def note_write(self, block_id: int, sub_index: int) -> bool:
        """Record a write; returns True when the block's content 'changed'
        enough to re-roll compressibility (a potential overflow source).

        Every write carries a fresh value, so each draws independently
        (keyed by a per-block write counter, not the layout version).
        """
        profile = self.profile_of(block_id)
        count = self._write_counts.get(block_id, 0)
        self._write_counts[block_id] = count + 1
        memo = self._peek_memo
        if (
            memo is not None
            and memo[0] == block_id
            and memo[1] == sub_index
            and memo[2] == count
        ):
            u = memo[3]
        else:
            u = _hash_unit5(self.seed, block_id, sub_index, count, 7)
        if u < profile.write_instability:
            self._versions[block_id] = self._versions.get(block_id, 0) + 1
            return True
        return False

    def peek_write(self, block_id: int, sub_index: int) -> bool:
        """Would :meth:`note_write` report a destabilizing change? Pure —
        it draws the same write-count-keyed sample without recording the
        write, so the deferred path can rule out overflow before applying
        any state."""
        profile = self.profile_of(block_id)
        count = self._write_counts.get(block_id, 0)
        u = _hash_unit5(self.seed, block_id, sub_index, count, 7)
        self._peek_memo = (block_id, sub_index, count, u)
        return u < profile.write_instability

    def version_of(self, block_id: int) -> int:
        return self._versions.get(block_id, 0)


class NullCompressibility:
    """Oracle for compression-free designs: everything has CF 1.

    Drop-in replacement for :class:`SyntheticCompressibility` used when
    ``compression_enabled`` is off (e.g. the Hybrid2 baseline): ranges
    never compress, nothing is zero, and writes never overflow.
    """

    def fits(
        self, block_id: int, start_sub: int, n_sub: int, cacheline_aligned: bool = True
    ) -> bool:
        return n_sub == 1

    def fits_at(
        self,
        block_id: int,
        start_sub: int,
        n_sub: int,
        cacheline_aligned: bool,
        version: int,
    ) -> bool:
        return n_sub == 1

    def is_zero(self, block_id: int, start_sub: int, n_sub: int) -> bool:
        return False

    def max_cf(
        self, block_id: int, sub_index: int, cacheline_aligned: bool = True
    ) -> int:
        return 1

    def note_write(self, block_id: int, sub_index: int) -> bool:
        return False

    def peek_write(self, block_id: int, sub_index: int) -> bool:
        return False

    def version_of(self, block_id: int) -> int:
        return 0
