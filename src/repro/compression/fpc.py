"""Frequent Pattern Compression (FPC).

Implements the significance-based scheme of Alameldeen & Wood ("Frequent
Pattern Compression: A Significance-Based Compression Scheme for L2
Caches", UW-Madison TR 2004), the first of Baryon's two hardware
compressors. The input is scanned as 32-bit big-endian words; each word is
encoded as a 3-bit prefix plus a variable payload:

======  ==============================================  ============
prefix  pattern                                         payload bits
======  ==============================================  ============
000     run of consecutive all-zero words (1..8)        3 (run-1)
001     4-bit sign-extended integer                     4
010     8-bit sign-extended integer                     8
011     16-bit sign-extended integer                    16
100     16-bit value padded with a zero halfword        16
101     two halfwords, each a sign-extended byte        16
110     word of four repeated bytes                     8
111     uncompressed word                               32
======  ==============================================  ============

The encoded form round-trips exactly; the honest bit count (prefixes
included) feeds CF quantization.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.compression.base import CompressionResult, Compressor
from repro.compression.bitstream import BitReader, BitWriter, fits_signed, sign_extend

_WORD_BYTES = 4
_PREFIX_BITS = 3

# Prefix codes, named for readability.
_ZERO_RUN = 0b000
_SIGNED_4 = 0b001
_SIGNED_8 = 0b010
_SIGNED_16 = 0b011
_PADDED_HALF = 0b100
_TWO_HALF_BYTES = 0b101
_REPEATED_BYTES = 0b110
_UNCOMPRESSED = 0b111

_MAX_ZERO_RUN = 8


def _classify_word(word: int) -> Tuple[int, int, int]:
    """Return ``(prefix, payload, payload_bits)`` for a non-zero-run word.

    Patterns are tried smallest-payload first, mirroring the priority
    encoder in the hardware implementation.
    """
    signed = sign_extend(word, 32)
    if fits_signed(signed, 4):
        return _SIGNED_4, word & 0xF, 4
    if fits_signed(signed, 8):
        return _SIGNED_8, word & 0xFF, 8
    byte0 = word & 0xFF
    if all(((word >> shift) & 0xFF) == byte0 for shift in (8, 16, 24)):
        return _REPEATED_BYTES, byte0, 8
    if fits_signed(signed, 16):
        return _SIGNED_16, word & 0xFFFF, 16
    if word & 0xFFFF == 0:
        # Significant halfword padded with a zero lower halfword.
        return _PADDED_HALF, (word >> 16) & 0xFFFF, 16
    high = (word >> 16) & 0xFFFF
    low = word & 0xFFFF
    if fits_signed(sign_extend(high, 16), 8) and fits_signed(sign_extend(low, 16), 8):
        return _TWO_HALF_BYTES, ((high & 0xFF) << 8) | (low & 0xFF), 16
    return _UNCOMPRESSED, word, 32


def _classify_words(data: bytes) -> Tuple[List[int], List[int], List[int]]:
    """Vectorized :func:`_classify_word` over a whole line.

    One ``numpy.frombuffer`` view plus branch-free pattern masks replaces
    the per-word ``int.from_bytes`` + priority-encoder chain; the
    ``np.select`` condition order reproduces the priority exactly, so every
    word classifies identically to the scalar encoder.
    """
    u = np.frombuffer(data, dtype=">u4").astype(np.int64)
    s = (u ^ 0x80000000) - 0x80000000  # 32-bit sign extension
    byte0 = u & 0xFF
    high = u >> 16
    low = u & 0xFFFF
    s_high = (high ^ 0x8000) - 0x8000
    s_low = (low ^ 0x8000) - 0x8000
    conditions = [
        (s >= -8) & (s <= 7),
        (s >= -128) & (s <= 127),
        u == byte0 * 0x01010101,
        (s >= -32768) & (s <= 32767),
        low == 0,
        (s_high >= -128) & (s_high <= 127) & (s_low >= -128) & (s_low <= 127),
    ]
    prefixes = np.select(
        conditions,
        [_SIGNED_4, _SIGNED_8, _REPEATED_BYTES, _SIGNED_16, _PADDED_HALF,
         _TWO_HALF_BYTES],
        default=_UNCOMPRESSED,
    )
    payloads = np.select(
        conditions,
        [u & 0xF, u & 0xFF, byte0, low, high,
         ((high & 0xFF) << 8) | (low & 0xFF)],
        default=u,
    )
    bits = np.select(conditions, [4, 8, 8, 16, 16, 16], default=32)
    return prefixes.tolist(), payloads.tolist(), bits.tolist()


class FpcCompressor(Compressor):
    """Frequent Pattern Compression over 32-bit words."""

    name = "fpc"

    def compress(self, data: bytes) -> CompressionResult:
        if len(data) % _WORD_BYTES != 0:
            raise ValueError("FPC input must be a multiple of 4 bytes")
        words = np.frombuffer(data, dtype=">u4").tolist()
        prefixes, payloads, bits = _classify_words(data)
        writer = BitWriter()
        n = len(words)
        i = 0
        while i < n:
            if words[i] == 0:
                run = 1
                while (
                    i + run < n
                    and words[i + run] == 0
                    and run < _MAX_ZERO_RUN
                ):
                    run += 1
                # Prefix and run length packed in one write; the emitted
                # bit stream is identical to two sequential writes.
                writer.write((_ZERO_RUN << 3) | (run - 1), _PREFIX_BITS + 3)
                i += run
                continue
            writer.write(
                (prefixes[i] << bits[i]) | payloads[i], _PREFIX_BITS + bits[i]
            )
            i += 1
        return CompressionResult(
            algorithm=self.name,
            original_size=len(data),
            compressed_bits=writer.bit_length,
            encoded=writer.getvalue(),
        )

    def decompress(self, result: CompressionResult) -> bytes:
        if result.encoded is None:
            raise ValueError("result has no encoded payload")
        reader = BitReader(result.encoded)
        words: List[int] = []
        total_words = result.original_size // _WORD_BYTES
        while len(words) < total_words:
            prefix = reader.read(_PREFIX_BITS)
            if prefix == _ZERO_RUN:
                run = reader.read(3) + 1
                words.extend([0] * run)
            elif prefix == _SIGNED_4:
                words.append(sign_extend(reader.read(4), 4) & 0xFFFFFFFF)
            elif prefix == _SIGNED_8:
                words.append(sign_extend(reader.read(8), 8) & 0xFFFFFFFF)
            elif prefix == _SIGNED_16:
                words.append(sign_extend(reader.read(16), 16) & 0xFFFFFFFF)
            elif prefix == _PADDED_HALF:
                words.append((reader.read(16) << 16) & 0xFFFFFFFF)
            elif prefix == _TWO_HALF_BYTES:
                payload = reader.read(16)
                high = sign_extend((payload >> 8) & 0xFF, 8) & 0xFFFF
                low = sign_extend(payload & 0xFF, 8) & 0xFFFF
                words.append((high << 16) | low)
            elif prefix == _REPEATED_BYTES:
                byte = reader.read(8)
                words.append(byte * 0x01010101)
            elif prefix == _UNCOMPRESSED:
                words.append(reader.read(32))
            else:  # pragma: no cover - 3-bit prefix is exhaustive
                raise AssertionError("impossible FPC prefix")
        if len(words) != total_words:
            raise ValueError("zero run overran the block boundary")
        return np.asarray(words, dtype=">u4").tobytes()
