"""Hardware-style compression algorithms and the Baryon compression engine.

Two real algorithms are implemented from scratch at the granularities the
hardware would use:

* :mod:`repro.compression.fpc` — Frequent Pattern Compression (Alameldeen &
  Wood), a 3-bit-prefix significance scheme over 32-bit words;
* :mod:`repro.compression.bdi` — Base-Delta-Immediate (Pekhimenko et al.),
  base+delta encodings over 2/4/8-byte granules with zero/repeat specials.

:class:`~repro.compression.engine.CompressionEngine` runs both and keeps the
better result, quantizes to the paper's compression factors {1, 2, 4},
supports the Z-bit all-zero encoding and the cacheline-aligned restriction
of Fig. 7. :class:`~repro.compression.synthetic.SyntheticCompressibility`
is the fast content-free model used in large benchmark sweeps.
"""

from repro.compression.base import (
    CompressionResult,
    Compressor,
    compressed_size_to_cf,
)
from repro.compression.bdi import BdiCompressor
from repro.compression.engine import CompressionEngine, quantize_cf
from repro.compression.fpc import FpcCompressor
from repro.compression.synthetic import (
    CompressibilityProfile,
    SyntheticCompressibility,
)

__all__ = [
    "BdiCompressor",
    "CompressibilityProfile",
    "CompressionEngine",
    "CompressionResult",
    "Compressor",
    "FpcCompressor",
    "SyntheticCompressibility",
    "compressed_size_to_cf",
    "quantize_cf",
]
