"""Base-Delta-Immediate (BDI) compression.

Implements Pekhimenko et al.'s BDI scheme (PACT 2012), the second of
Baryon's hardware compressors. A block is viewed as equal-size granules of
``k`` bytes (k in {2, 4, 8}); each granule is stored as a small signed delta
of ``d < k`` bytes from either one arbitrary *base* (the first granule that
needs it) or the implicit *zero base*, selected per granule by a one-bit
mask — the "immediate" part that captures mixtures of pointers and small
integers in one block.

All six (k, d) configurations of the paper are tried, plus the two special
cases (all-zero block, repeated 8-byte value); the smallest valid encoding
wins. A 4-bit header records the chosen configuration so the encoded form
round-trips exactly.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.compression.base import CompressionResult, Compressor
from repro.compression.bitstream import BitReader, BitWriter, sign_extend

# Header codes for the encoding variants.
_ZEROS = 0b0000
_REPEAT8 = 0b0001
_RAW = 0b1111
#: (header, base_bytes, delta_bytes) for the six base-delta configurations.
_BD_CONFIGS: Tuple[Tuple[int, int, int], ...] = (
    (0b0010, 8, 1),
    (0b0011, 8, 2),
    (0b0100, 8, 4),
    (0b0101, 4, 1),
    (0b0110, 4, 2),
    (0b0111, 2, 1),
)
_HEADER_BITS = 4


def _granules(data: bytes, size: int) -> List[int]:
    return np.frombuffer(data, dtype=f">u{size}").tolist()


def _try_base_delta(
    data: bytes, base_bytes: int, delta_bytes: int
) -> Optional[Tuple[int, List[bool], List[int]]]:
    """Attempt one (k, d) configuration.

    Returns ``(base, zero_mask, deltas)`` on success — ``zero_mask[i]`` is
    True when granule ``i`` is a delta from the zero base — or ``None`` when
    some granule fits neither base.

    Vectorized over the whole line with one ``numpy.frombuffer`` view. The
    delta-range test runs in exact unsigned arithmetic (``value >= base``
    split), so 8-byte granules classify identically to the arbitrary-
    precision scalar check — modular uint64 wrap-around can never turn a
    huge true delta into a small accepted one.
    """
    if len(data) % base_bytes != 0:
        return None
    values = np.frombuffer(data, dtype=f">u{base_bytes}").astype(np.uint64)
    bits = base_bytes * 8
    delta_bits = delta_bytes * 8
    half = 1 << (delta_bits - 1)
    hi = half - 1
    # Zero base: the sign-extended granule must fit delta_bits, i.e. the
    # unsigned value is tiny or sits in the top `half` of the bits-range.
    zero_fits = (values <= hi) | (values >= (1 << bits) - half)
    nonzero = ~zero_fits
    if not nonzero.any():
        base = 0
        deltas = values & np.uint64((1 << delta_bits) - 1)
    else:
        base = values[int(np.argmax(nonzero))]
        ge = values >= base
        # Exact |value - base| tests on the unsigned split; the wrapped
        # differences are only used on the side where they are exact.
        pos_ok = (values - base) <= np.uint64(hi)
        neg_ok = (base - values) <= np.uint64(half)
        ok = zero_fits | (ge & pos_ok) | (~ge & neg_ok)
        if not ok.all():
            return None
        origins = np.where(zero_fits, np.uint64(0), base)
        deltas = (values - origins) & np.uint64((1 << delta_bits) - 1)
        base = int(base)
    return base, zero_fits.tolist(), deltas.tolist()


class BdiCompressor(Compressor):
    """Base-Delta-Immediate compression with a zero base and one live base."""

    name = "bdi"

    def compress(self, data: bytes) -> CompressionResult:
        if len(data) == 0 or len(data) % 8 != 0:
            raise ValueError("BDI input must be a non-empty multiple of 8 bytes")
        best = self._encode_raw(data)

        if data.count(0) == len(data):
            writer = BitWriter()
            writer.write(_ZEROS, _HEADER_BITS)
            best = self._result(data, writer)
        else:
            first8 = data[:8]
            if data == first8 * (len(data) // 8):
                writer = BitWriter()
                writer.write(_REPEAT8, _HEADER_BITS)
                writer.write(int.from_bytes(first8, "big"), 64)
                candidate = self._result(data, writer)
                if candidate.compressed_bits < best.compressed_bits:
                    best = candidate
            for header, base_bytes, delta_bytes in _BD_CONFIGS:
                attempt = _try_base_delta(data, base_bytes, delta_bytes)
                if attempt is None:
                    continue
                base, zero_mask, deltas = attempt
                writer = BitWriter()
                writer.write(header, _HEADER_BITS)
                writer.write(base, base_bytes * 8)
                # Pack the mask bits and all deltas with one write each;
                # the emitted bit stream is identical to per-field writes.
                mask_word = 0
                for is_zero in zero_mask:
                    mask_word = (mask_word << 1) | (1 if is_zero else 0)
                writer.write(mask_word, len(zero_mask))
                delta_bits = delta_bytes * 8
                delta_word = 0
                for delta in deltas:
                    delta_word = (delta_word << delta_bits) | delta
                writer.write(delta_word, delta_bits * len(deltas))
                candidate = self._result(data, writer)
                if candidate.compressed_bits < best.compressed_bits:
                    best = candidate
        return best

    def decompress(self, result: CompressionResult) -> bytes:
        if result.encoded is None:
            raise ValueError("result has no encoded payload")
        reader = BitReader(result.encoded)
        header = reader.read(_HEADER_BITS)
        size = result.original_size
        if header == _ZEROS:
            return bytes(size)
        if header == _REPEAT8:
            value = reader.read(64).to_bytes(8, "big")
            return value * (size // 8)
        if header == _RAW:
            return reader.read(size * 8).to_bytes(size, "big")
        for code, base_bytes, delta_bytes in _BD_CONFIGS:
            if header == code:
                return self._decode_base_delta(reader, size, base_bytes, delta_bytes)
        raise ValueError(f"unknown BDI header {header:#06b}")

    # -- helpers ---------------------------------------------------------
    @staticmethod
    def _decode_base_delta(
        reader: BitReader, size: int, base_bytes: int, delta_bytes: int
    ) -> bytes:
        count = size // base_bytes
        base = reader.read(base_bytes * 8)
        zero_mask = [bool(reader.read(1)) for _ in range(count)]
        out = bytearray()
        mask = (1 << (base_bytes * 8)) - 1
        for is_zero in zero_mask:
            delta = sign_extend(reader.read(delta_bytes * 8), delta_bytes * 8)
            origin = 0 if is_zero else base
            out += ((origin + delta) & mask).to_bytes(base_bytes, "big")
        return bytes(out)

    def _encode_raw(self, data: bytes) -> CompressionResult:
        writer = BitWriter()
        writer.write(_RAW, _HEADER_BITS)
        writer.write(int.from_bytes(data, "big"), len(data) * 8)
        return self._result(data, writer)

    def _result(self, data: bytes, writer: BitWriter) -> CompressionResult:
        return CompressionResult(
            algorithm=self.name,
            original_size=len(data),
            compressed_bits=writer.bit_length,
            encoded=writer.getvalue(),
        )
