"""Baryon's compression engine: best-of FPC/BDI with CF quantization.

The engine mirrors Section III-B/III-E of the paper:

* data are fed to both hardware compressors and the better result wins;
* compressed sizes are quantized to the supported compression factors
  {1, 2, 4} — a range of ``n`` sub-blocks has CF ``n`` when it fits one
  physical sub-block slot;
* with *cacheline-aligned* compression (Fig. 7) the restriction is
  stronger: each of the four 64·n-byte chunks of the range must
  independently compress into one 64 B transfer unit, so a single DDRx
  burst can be decompressed without fetching the whole slot;
* all-zero data are recognized separately (the Z bit) and occupy no slot.

Hot-path engineering (this module sits on the controller's access flow
when a content-backed oracle is attached): a content-keyed LRU memo in
:meth:`CompressionEngine.best` guarantees one FPC+BDI evaluation per
distinct byte range, and the cacheline-aligned :meth:`CompressionEngine.fits`
probes chunks in a failure-history order so incompressible ranges are
rejected after the cheapest possible number of chunk evaluations. Memo
effectiveness is exported through the ``memo_hits``/``memo_misses``/
``memo_evictions`` counters in :attr:`CompressionEngine.stats`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import SUPPORTED_CFS, CompressionConfig, Geometry
from repro.common.stats import CounterGroup
from repro.compression.base import CompressionResult, Compressor
from repro.compression.bdi import BdiCompressor
from repro.compression.fpc import FpcCompressor

#: Supported compression factors, largest first — hoisted so the hot
#: ``quantize_cf``/``achievable_cf`` paths never re-sort per call.
CFS_DESCENDING: Tuple[int, ...] = tuple(sorted(SUPPORTED_CFS, reverse=True))

#: Default LRU memo capacity (distinct byte ranges). At the 256 B
#: sub-block/2 kB block geometry this bounds the memo near 2 MB of keys —
#: small next to the simulated capacities, large next to a working set of
#: hot lines.
DEFAULT_MEMO_CAPACITY = 8192


def quantize_cf(original_size: int, compressed_bytes: int) -> int:
    """Largest supported CF such that the encoding fits ``original/cf``."""
    for cf in CFS_DESCENDING:
        if compressed_bytes * cf <= original_size:
            return cf
    return 1


def _build_compressor(name: str) -> Compressor:
    if name == "fpc":
        return FpcCompressor()
    if name == "bdi":
        return BdiCompressor()
    raise ValueError(f"unknown compression algorithm {name!r}")


class CompressionEngine:
    """Dual-algorithm engine operating on real bytes.

    The engine answers the only two questions the controller asks:
    :meth:`fits` — does this aligned range compress into one sub-block
    slot? — and :meth:`is_zero`. It also exposes :meth:`best` for direct
    algorithm comparisons and keeps win/loss statistics per algorithm.

    ``memo_capacity`` bounds the content-keyed LRU memo over
    :meth:`best`; ``0`` disables memoization entirely (every call runs
    both compressors, the pre-memo behaviour).
    """

    def __init__(
        self,
        config: Optional[CompressionConfig] = None,
        geometry: Optional[Geometry] = None,
        memo_capacity: int = DEFAULT_MEMO_CAPACITY,
    ) -> None:
        if memo_capacity < 0:
            raise ValueError("memo_capacity must be >= 0")
        self.config = config or CompressionConfig()
        self.geometry = geometry or Geometry()
        self._compressors = [_build_compressor(n) for n in self.config.algorithms]
        self.stats = CounterGroup("compression")
        self.memo_capacity = memo_capacity
        self._memo: "OrderedDict[bytes, CompressionResult]" = OrderedDict()
        # Per-chunk-index failure history for the cacheline-aligned fits
        # probe order (chunk counts are tiny: slot / 64 B).
        self._chunk_fails: Dict[int, int] = {}

    @property
    def decompression_latency(self) -> int:
        return self.config.decompression_latency_cycles

    @property
    def memo_hit_rate(self) -> float:
        """Fraction of :meth:`best` probes answered from the memo."""
        hits = self.stats.get("memo_hits")
        probes = hits + self.stats.get("memo_misses")
        return hits / probes if probes else 0.0

    def clear_memo(self) -> None:
        """Drop every memoized result (e.g. after bulk content mutation).

        Correctness never requires this — keys are the content itself, so
        stale bytes simply stop being probed — but it releases memory and
        resets the LRU order for benchmarking.
        """
        self._memo.clear()

    def best(self, data: bytes) -> CompressionResult:
        """Compress with every algorithm and return the smallest encoding.

        Results are memoized by content: identical byte ranges (the common
        case on the controller's repeated ``fits``/``achievable_cf``
        probes of hot blocks) cost one dictionary lookup after the first
        evaluation. Mutated content produces a different key, so the memo
        can never serve stale answers. ``wins_*`` counters keep their
        per-probe semantics — a memo hit still counts a win for the cached
        algorithm.
        """
        memo = self._memo
        key: Optional[bytes] = None
        if self.memo_capacity:
            key = bytes(data)
            cached = memo.get(key)
            if cached is not None:
                memo.move_to_end(key)
                self.stats.inc("memo_hits")
                self.stats.inc(f"wins_{cached.algorithm}")
                return cached
            self.stats.inc("memo_misses")
        best: Optional[CompressionResult] = None
        for compressor in self._compressors:
            result = compressor.compress(data)
            if best is None or result.compressed_bits < best.compressed_bits:
                best = result
        assert best is not None
        self.stats.inc(f"wins_{best.algorithm}")
        if key is not None:
            memo[key] = best
            if len(memo) > self.memo_capacity:
                memo.popitem(last=False)
                self.stats.inc("memo_evictions")
        return best

    def is_zero(self, data: bytes) -> bool:
        """Z-bit check: the range is entirely zero bytes."""
        if not self.config.zero_block_support:
            return False
        # bytes.count runs in C; `not any(data)` iterates Python ints.
        return data.count(0) == len(data)

    def _chunk_order(self, chunks: int) -> List[int]:
        """Chunk indices ordered most-likely-to-fail first.

        ``fits`` is an AND over chunks, so evaluation order cannot change
        the answer — only how quickly a non-fitting range is rejected.
        Failure counts are per chunk index: workloads that concentrate
        incompressible data at a fixed offset (e.g. a hot mutated line)
        reject after one compression instead of ``chunks``.
        """
        fails = self._chunk_fails
        if not fails:
            return list(range(chunks))
        return sorted(range(chunks), key=lambda i: -fails.get(i, 0))

    def fits(self, data: bytes, slot_size: Optional[int] = None) -> bool:
        """Can ``data`` (``n`` sub-blocks) compress into one slot of
        ``slot_size`` bytes (default: one sub-block)?

        With cacheline-aligned compression each 64·n-byte chunk must
        compress into ``slot_size / chunks`` bytes independently.
        """
        slot = slot_size if slot_size is not None else self.geometry.sub_block_size
        if len(data) % slot != 0:
            raise ValueError("range length must be a multiple of the slot size")
        if len(data) == slot:
            return True  # CF = 1 always fits uncompressed.
        if self.is_zero(data):
            return True
        if not self.config.cacheline_aligned:
            result = self.best(data)
            return result.fits_in(slot)
        chunks = slot // self.geometry.cacheline_size
        chunk_len = len(data) // chunks
        budget = slot // chunks
        for i in self._chunk_order(chunks):
            chunk = data[i * chunk_len : (i + 1) * chunk_len]
            if not self.best(chunk).fits_in(budget):
                self._chunk_fails[i] = self._chunk_fails.get(i, 0) + 1
                return False
        return True

    def achievable_cf(self, block_data: bytes, sub_index: int) -> int:
        """Largest CF of an aligned range containing ``sub_index``.

        Used by the slow-to-stage prefetch policy (case 3 of the access
        flow): try CF = 4, then 2, then fall back to the single sub-block.
        """
        sbs = self.geometry.sub_block_size
        for cf in CFS_DESCENDING:
            if cf == 1:
                return 1
            start, length = self.geometry.aligned_range(sub_index, cf)
            chunk = block_data[start * sbs : (start + length) * sbs]
            if len(chunk) == length * sbs and self.fits(chunk):
                return cf
        return 1

    def average_cf(self, blocks: Sequence[bytes]) -> float:
        """Mean quantized CF over whole blocks; used in Fig. 12 reporting."""
        if not blocks:
            return 0.0
        total = 0.0
        for data in blocks:
            sbs = self.geometry.sub_block_size
            cfs: Dict[int, int] = {}
            index = 0
            while index < len(data) // sbs:
                cf = self.achievable_cf(data, index)
                start, length = self.geometry.aligned_range(index, cf)
                cfs[start] = cf
                index = start + length
            if cfs:
                total += sum(cfs.values()) / len(cfs)
        return total / len(blocks)
