"""Baryon's compression engine: best-of FPC/BDI with CF quantization.

The engine mirrors Section III-B/III-E of the paper:

* data are fed to both hardware compressors and the better result wins;
* compressed sizes are quantized to the supported compression factors
  {1, 2, 4} — a range of ``n`` sub-blocks has CF ``n`` when it fits one
  physical sub-block slot;
* with *cacheline-aligned* compression (Fig. 7) the restriction is
  stronger: each of the four 64·n-byte chunks of the range must
  independently compress into one 64 B transfer unit, so a single DDRx
  burst can be decompressed without fetching the whole slot;
* all-zero data are recognized separately (the Z bit) and occupy no slot.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.common.config import SUPPORTED_CFS, CompressionConfig, Geometry
from repro.common.stats import CounterGroup
from repro.compression.base import CompressionResult, Compressor
from repro.compression.bdi import BdiCompressor
from repro.compression.fpc import FpcCompressor


def quantize_cf(original_size: int, compressed_bytes: int) -> int:
    """Largest supported CF such that the encoding fits ``original/cf``."""
    for cf in sorted(SUPPORTED_CFS, reverse=True):
        if compressed_bytes * cf <= original_size:
            return cf
    return 1


def _build_compressor(name: str) -> Compressor:
    if name == "fpc":
        return FpcCompressor()
    if name == "bdi":
        return BdiCompressor()
    raise ValueError(f"unknown compression algorithm {name!r}")


class CompressionEngine:
    """Dual-algorithm engine operating on real bytes.

    The engine answers the only two questions the controller asks:
    :meth:`fits` — does this aligned range compress into one sub-block
    slot? — and :meth:`is_zero`. It also exposes :meth:`best` for direct
    algorithm comparisons and keeps win/loss statistics per algorithm.
    """

    def __init__(
        self,
        config: Optional[CompressionConfig] = None,
        geometry: Optional[Geometry] = None,
    ) -> None:
        self.config = config or CompressionConfig()
        self.geometry = geometry or Geometry()
        self._compressors = [_build_compressor(n) for n in self.config.algorithms]
        self.stats = CounterGroup("compression")

    @property
    def decompression_latency(self) -> int:
        return self.config.decompression_latency_cycles

    def best(self, data: bytes) -> CompressionResult:
        """Compress with every algorithm and return the smallest encoding."""
        best: Optional[CompressionResult] = None
        for compressor in self._compressors:
            result = compressor.compress(data)
            if best is None or result.compressed_bits < best.compressed_bits:
                best = result
        assert best is not None
        self.stats.inc(f"wins_{best.algorithm}")
        return best

    def is_zero(self, data: bytes) -> bool:
        """Z-bit check: the range is entirely zero bytes."""
        if not self.config.zero_block_support:
            return False
        return not any(data)

    def fits(self, data: bytes, slot_size: Optional[int] = None) -> bool:
        """Can ``data`` (``n`` sub-blocks) compress into one slot of
        ``slot_size`` bytes (default: one sub-block)?

        With cacheline-aligned compression each 64·n-byte chunk must
        compress into ``slot_size / chunks`` bytes independently.
        """
        slot = slot_size if slot_size is not None else self.geometry.sub_block_size
        if len(data) % slot != 0:
            raise ValueError("range length must be a multiple of the slot size")
        if len(data) == slot:
            return True  # CF = 1 always fits uncompressed.
        if self.is_zero(data):
            return True
        if not self.config.cacheline_aligned:
            result = self.best(data)
            return result.fits_in(slot)
        chunks = slot // self.geometry.cacheline_size
        chunk_len = len(data) // chunks
        budget = slot // chunks
        for i in range(chunks):
            chunk = data[i * chunk_len : (i + 1) * chunk_len]
            if not self.best(chunk).fits_in(budget):
                return False
        return True

    def achievable_cf(self, block_data: bytes, sub_index: int) -> int:
        """Largest CF of an aligned range containing ``sub_index``.

        Used by the slow-to-stage prefetch policy (case 3 of the access
        flow): try CF = 4, then 2, then fall back to the single sub-block.
        """
        sbs = self.geometry.sub_block_size
        for cf in sorted(SUPPORTED_CFS, reverse=True):
            if cf == 1:
                return 1
            start, length = self.geometry.aligned_range(sub_index, cf)
            chunk = block_data[start * sbs : (start + length) * sbs]
            if len(chunk) == length * sbs and self.fits(chunk):
                return cf
        return 1

    def average_cf(self, blocks: Sequence[bytes]) -> float:
        """Mean quantized CF over whole blocks; used in Fig. 12 reporting."""
        if not blocks:
            return 0.0
        total = 0.0
        for data in blocks:
            sbs = self.geometry.sub_block_size
            cfs: Dict[int, int] = {}
            index = 0
            while index < len(data) // sbs:
                cf = self.achievable_cf(data, index)
                start, length = self.geometry.aligned_range(index, cf)
                cfs[start] = cf
                index = start + length
            if cfs:
                total += sum(cfs.values()) / len(cfs)
        return total / len(blocks)
