"""Compressor interface and shared result type.

A :class:`Compressor` maps raw bytes to a compressed size (and an opaque
encoded form for round-trip testing). Hardware compressors are *lossless*
and *size-bounded*: when data do not compress, the encoded size may exceed
the input, in which case the engine stores the block uncompressed — the
interface therefore reports the honest encoded size and leaves the
store-raw fallback to the caller.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

from repro.common.config import SUPPORTED_CFS

#: Supported CFs largest-first, hoisted out of the per-call path.
_CFS_DESCENDING = tuple(sorted(SUPPORTED_CFS, reverse=True))


@dataclass(frozen=True)
class CompressionResult:
    """Outcome of compressing one buffer.

    ``compressed_bits`` is the honest encoded size including per-word
    prefixes and per-block headers; ``encoded`` is an algorithm-specific
    representation that :meth:`Compressor.decompress` can invert (kept as
    ``bytes`` so results are hashable and easy to snapshot in tests).
    """

    algorithm: str
    original_size: int
    compressed_bits: int
    encoded: Optional[bytes] = None

    @property
    def compressed_bytes(self) -> int:
        """Encoded size rounded up to whole bytes."""
        return (self.compressed_bits + 7) // 8

    @property
    def ratio(self) -> float:
        """Raw compression ratio original/compressed (not yet quantized)."""
        if self.compressed_bits == 0:
            return float("inf")
        return (self.original_size * 8) / self.compressed_bits

    def fits_in(self, size_bytes: int) -> bool:
        """True if the encoding fits a physical slot of ``size_bytes``."""
        return self.compressed_bytes <= size_bytes


class Compressor(abc.ABC):
    """Abstract lossless hardware compressor over a byte buffer."""

    #: Short identifier used in stats and the result's ``algorithm`` field.
    name: str = "abstract"

    @abc.abstractmethod
    def compress(self, data: bytes) -> CompressionResult:
        """Compress ``data`` and return the honest encoded size."""

    @abc.abstractmethod
    def decompress(self, result: CompressionResult) -> bytes:
        """Invert :meth:`compress`; must reproduce the input exactly."""


def compressed_size_to_cf(original_size: int, compressed_bytes: int) -> int:
    """Quantize an encoded size to the largest supported CF that fits.

    A compression factor of ``n`` means ``n`` sub-blocks fit in one physical
    sub-block slot, i.e. the data must compress to ``original_size / n``
    bytes or fewer. Returns 1 when nothing better fits (data stored raw).
    """
    for cf in _CFS_DESCENDING:
        if compressed_bytes * cf <= original_size:
            return cf
    return 1
