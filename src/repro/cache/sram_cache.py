"""Generic set-associative SRAM cache.

Write-back, write-allocate, physically indexed. The cache reports, for
every access, whether it hit and which (if any) dirty victim address must
be written back — the two facts the next level down needs. It also supports
:meth:`install` for prefetch-style fills that bypass the demand path (the
memory-to-LLC install of decompressed neighbour cachelines, Sec. III-E).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cache.replacement import BaseSet, CacheLine, make_set
from repro.common.config import CacheGeometry
from repro.common.stats import CounterGroup


@dataclass(frozen=True)
class AccessOutcome:
    """Result of one cache access.

    ``writeback_addr`` is the byte address of the dirty victim that must be
    written to the next level (None when the victim was clean or no
    eviction happened).
    """

    hit: bool
    writeback_addr: Optional[int] = None
    victim_addr: Optional[int] = None


class SetAssociativeCache:
    """One level of the hierarchy; line granularity = ``geometry.line_size``."""

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        self.num_sets = geometry.num_sets
        self._sets: List[BaseSet] = [
            make_set(geometry.replacement, geometry.ways) for _ in range(self.num_sets)
        ]
        self.stats = CounterGroup(geometry.name)

    # -- address math -----------------------------------------------------
    def _index_tag(self, addr: int) -> tuple[int, int]:
        line = addr // self.geometry.line_size
        return line % self.num_sets, line // self.num_sets

    def _addr_of(self, index: int, tag: int) -> int:
        return (tag * self.num_sets + index) * self.geometry.line_size

    # -- operations ---------------------------------------------------------
    def access(self, addr: int, is_write: bool) -> AccessOutcome:
        """Demand access with allocate-on-miss; returns hit + writeback info."""
        index, tag = self._index_tag(addr)
        cache_set = self._sets[index]
        line = cache_set.lookup(tag)
        self.stats.inc("accesses")
        if line is not None:
            cache_set.touch(line)
            if is_write:
                line.dirty = True
            self.stats.inc("hits")
            return AccessOutcome(hit=True)
        self.stats.inc("misses")
        writeback, victim = self._allocate(cache_set, index, tag, is_write)
        return AccessOutcome(hit=False, writeback_addr=writeback, victim_addr=victim)

    def install(self, addr: int, dirty: bool = False) -> AccessOutcome:
        """Fill a line without a demand access (prefetch install).

        A no-op when the line is already resident.
        """
        index, tag = self._index_tag(addr)
        cache_set = self._sets[index]
        if cache_set.lookup(tag) is not None:
            return AccessOutcome(hit=True)
        self.stats.inc("installs")
        writeback, victim = self._allocate(cache_set, index, tag, dirty)
        return AccessOutcome(hit=False, writeback_addr=writeback, victim_addr=victim)

    def contains(self, addr: int) -> bool:
        index, tag = self._index_tag(addr)
        return self._sets[index].lookup(tag) is not None

    def invalidate(self, addr: int) -> Optional[int]:
        """Drop a line if present; returns its address when it was dirty."""
        index, tag = self._index_tag(addr)
        line = self._sets[index].invalidate(tag)
        if line is not None and line.dirty:
            return self._addr_of(index, tag)
        return None

    def _allocate(
        self, cache_set: BaseSet, index: int, tag: int, dirty: bool
    ) -> tuple[Optional[int], Optional[int]]:
        writeback = None
        victim_addr = None
        if cache_set.is_full():
            victim = cache_set.victim()
            victim_addr = self._addr_of(index, victim.tag)
            if victim.dirty:
                writeback = victim_addr
                self.stats.inc("writebacks")
            cache_set.evict(victim.tag)
            self.stats.inc("evictions")
        cache_set.insert(CacheLine(tag, dirty=dirty))
        return writeback, victim_addr

    @property
    def hit_rate(self) -> float:
        accesses = self.stats.get("accesses")
        return self.stats.get("hits") / accesses if accesses else 0.0
