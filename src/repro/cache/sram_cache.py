"""Generic set-associative SRAM cache.

Write-back, write-allocate, physically indexed. The cache reports, for
every access, whether it hit and which (if any) dirty victim address must
be written back — the two facts the next level down needs. It also supports
:meth:`install` for prefetch-style fills that bypass the demand path (the
memory-to-LLC install of decompressed neighbour cachelines, Sec. III-E).

Hot-path engineering: the per-access work runs through
:meth:`access_raw`, which returns a plain tuple instead of allocating an
:class:`AccessOutcome`, and event counts accumulate in plain integer
attributes that are folded into the public ``stats``
:class:`~repro.common.stats.CounterGroup` lazily on read. Counter values
observed through ``stats`` are exact at any point — only the dictionary
update is deferred.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.cache.replacement import BaseSet, CacheLine, make_set
from repro.common.config import CacheGeometry
from repro.common.stats import CounterGroup


@dataclass(frozen=True)
class AccessOutcome:
    """Result of one cache access.

    ``writeback_addr`` is the byte address of the dirty victim that must be
    written to the next level (None when the victim was clean or no
    eviction happened).
    """

    hit: bool
    writeback_addr: Optional[int] = None
    victim_addr: Optional[int] = None


#: Shared hit outcome — frozen, so one instance serves every hit.
_HIT = AccessOutcome(hit=True)


class SetAssociativeCache:
    """One level of the hierarchy; line granularity = ``geometry.line_size``."""

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        self.num_sets = geometry.num_sets
        self._sets: List[BaseSet] = [
            make_set(geometry.replacement, geometry.ways) for _ in range(self.num_sets)
        ]
        self._stats = CounterGroup(geometry.name)
        self._line_size = geometry.line_size
        # LRU dominates the hierarchy configs; its touch/victim/insert are
        # inlined on the hot path (same state transitions as LruSet's).
        self._is_lru = geometry.replacement == "lru"
        # Deferred counters, folded into ``_stats`` on read.
        self._n_accesses = 0
        self._n_hits = 0
        self._n_misses = 0
        self._n_installs = 0
        self._n_writebacks = 0
        self._n_evictions = 0

    @property
    def stats(self) -> CounterGroup:
        """Counter group with all pending hot-path counts folded in."""
        if self._n_accesses:
            self._stats.inc("accesses", self._n_accesses)
            self._n_accesses = 0
        if self._n_hits:
            self._stats.inc("hits", self._n_hits)
            self._n_hits = 0
        if self._n_misses:
            self._stats.inc("misses", self._n_misses)
            self._n_misses = 0
        if self._n_installs:
            self._stats.inc("installs", self._n_installs)
            self._n_installs = 0
        if self._n_writebacks:
            self._stats.inc("writebacks", self._n_writebacks)
            self._n_writebacks = 0
        if self._n_evictions:
            self._stats.inc("evictions", self._n_evictions)
            self._n_evictions = 0
        return self._stats

    # -- address math -----------------------------------------------------
    def _index_tag(self, addr: int) -> tuple[int, int]:
        line = addr // self._line_size
        return line % self.num_sets, line // self.num_sets

    def _addr_of(self, index: int, tag: int) -> int:
        return (tag * self.num_sets + index) * self._line_size

    # -- operations ---------------------------------------------------------
    def access_raw(
        self, addr: int, is_write: bool
    ) -> Tuple[bool, Optional[int], Optional[int]]:
        """Demand access returning ``(hit, writeback_addr, victim_addr)``.

        Allocation-free form of :meth:`access` for the per-access hot
        path; semantics and counter effects are identical.
        """
        line = addr // self._line_size
        index = line % self.num_sets
        cache_set = self._sets[index]
        tag = line // self.num_sets
        lines = cache_set.lines
        entry = lines.get(tag)
        self._n_accesses += 1
        if entry is not None:
            if self._is_lru:
                cache_set._clock += 1
                entry.counter = cache_set._clock
                lines[tag] = lines.pop(tag)
            else:
                cache_set.touch(entry)
            if is_write:
                entry.dirty = True
            self._n_hits += 1
            return True, None, None
        self._n_misses += 1
        writeback, victim = self._allocate(cache_set, index, tag, is_write)
        return False, writeback, victim

    def access(self, addr: int, is_write: bool) -> AccessOutcome:
        """Demand access with allocate-on-miss; returns hit + writeback info."""
        hit, writeback, victim = self.access_raw(addr, is_write)
        if hit:
            return _HIT
        return AccessOutcome(hit=False, writeback_addr=writeback, victim_addr=victim)

    def install_raw(self, addr: int, dirty: bool = False) -> Optional[int]:
        """Prefetch-style fill; returns the dirty victim address, if any.

        A no-op when the line is already resident (returns None).
        """
        index, tag = self._index_tag(addr)
        cache_set = self._sets[index]
        if cache_set.lines.get(tag) is not None:
            return None
        self._n_installs += 1
        writeback, _ = self._allocate(cache_set, index, tag, dirty)
        return writeback

    def install(self, addr: int, dirty: bool = False) -> AccessOutcome:
        """Fill a line without a demand access (prefetch install).

        A no-op when the line is already resident.
        """
        index, tag = self._index_tag(addr)
        cache_set = self._sets[index]
        if cache_set.lines.get(tag) is not None:
            return _HIT
        self._n_installs += 1
        writeback, victim = self._allocate(cache_set, index, tag, dirty)
        return AccessOutcome(hit=False, writeback_addr=writeback, victim_addr=victim)

    def contains(self, addr: int) -> bool:
        index, tag = self._index_tag(addr)
        return self._sets[index].lookup(tag) is not None

    def invalidate(self, addr: int) -> Optional[int]:
        """Drop a line if present; returns its address when it was dirty."""
        index, tag = self._index_tag(addr)
        line = self._sets[index].invalidate(tag)
        if line is not None and line.dirty:
            return self._addr_of(index, tag)
        return None

    def _allocate(
        self, cache_set: BaseSet, index: int, tag: int, dirty: bool
    ) -> tuple[Optional[int], Optional[int]]:
        writeback = None
        victim_addr = None
        lines = cache_set.lines
        if self._is_lru:
            if len(lines) >= cache_set.ways:
                victim_tag, victim = next(iter(lines.items()))
                victim_addr = (victim_tag * self.num_sets + index) * self._line_size
                if victim.dirty:
                    writeback = victim_addr
                    self._n_writebacks += 1
                del lines[victim_tag]
                self._n_evictions += 1
                # Recycle the evicted line object: reset every field
                # CacheLine.__init__ would set, skipping the allocation.
                victim.tag = tag
                victim.dirty = dirty
                victim.payload = None
                victim.referenced = False
                victim.stamp = 0
                line = victim
            else:
                line = CacheLine(tag, dirty=dirty)
            cache_set._clock += 1
            line.counter = cache_set._clock
            lines[tag] = line
            return writeback, victim_addr
        if len(lines) >= cache_set.ways:
            victim = cache_set.victim()
            victim_addr = self._addr_of(index, victim.tag)
            if victim.dirty:
                writeback = victim_addr
                self._n_writebacks += 1
            cache_set.evict(victim.tag)
            self._n_evictions += 1
        cache_set.insert(CacheLine(tag, dirty=dirty))
        return writeback, victim_addr

    @property
    def hit_rate(self) -> float:
        accesses = self.stats.get("accesses")
        return self.stats.get("hits") / accesses if accesses else 0.0
