"""Replacement policies as per-set data structures.

The paper name-drops LRU, LFU, CLOCK, FIFO and random as interchangeable
fast-to-slow eviction policies (Sec. III-E) and uses LRU in the SRAM
hierarchy, LRU for stage-area block replacement and FIFO for sub-block
replacement. Each policy here is a small class managing one set's lines;
the cache composes one instance per set. Entries carry a ``dirty`` flag and
an opaque ``payload`` so higher-level structures (e.g. Unison's footprint
bitmaps) can ride along.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Hashable, List, Optional


class CacheLine:
    """One resident line: tag plus dirty bit plus policy/user state."""

    __slots__ = ("tag", "dirty", "payload", "counter", "referenced", "stamp")

    def __init__(self, tag: Hashable, dirty: bool = False, payload=None) -> None:
        self.tag = tag
        self.dirty = dirty
        self.payload = payload
        self.counter = 0  # LFU frequency / FIFO sequence number
        self.referenced = False  # CLOCK reference bit
        self.stamp = 0  # LFU insertion order (tiebreak)


class BaseSet:
    """Common storage: a dict of resident lines keyed by tag."""

    def __init__(self, ways: int) -> None:
        self.ways = ways
        self.lines: Dict[Hashable, CacheLine] = {}

    def lookup(self, tag: Hashable) -> Optional[CacheLine]:
        return self.lines.get(tag)

    def is_full(self) -> bool:
        return len(self.lines) >= self.ways

    def touch(self, line: CacheLine) -> None:
        """Policy hook called on every hit."""
        raise NotImplementedError

    def insert(self, line: CacheLine) -> None:
        """Add a line; the caller must have evicted if the set was full."""
        if self.is_full():
            raise ValueError("insert into full set; evict first")
        self.lines[line.tag] = line
        self.touch(line)

    def victim(self) -> CacheLine:
        """Policy hook: choose (without removing) the eviction victim."""
        raise NotImplementedError

    def evict(self, tag: Hashable) -> CacheLine:
        return self.lines.pop(tag)

    def invalidate(self, tag: Hashable) -> Optional[CacheLine]:
        return self.lines.pop(tag, None)


class LruSet(BaseSet):
    """Least-recently-used via a monotonic timestamp per line.

    The ``lines`` dict doubles as the recency order (Python dicts preserve
    insertion order): ``touch`` re-inserts the line at the tail, so the
    head is always the least-recently-used entry and ``victim`` is O(1)
    instead of an O(ways) minimum scan. Timestamps are unique and strictly
    increasing, so dict order and counter order agree and the O(1) victim
    is exactly the line the counter scan used to pick.
    """

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        self._clock = 0

    def touch(self, line: CacheLine) -> None:
        self._clock += 1
        line.counter = self._clock
        # Move to the tail of the recency order.
        tag = line.tag
        lines = self.lines
        lines[tag] = lines.pop(tag)

    def victim(self) -> CacheLine:
        return next(iter(self.lines.values()))

    def mru(self) -> Optional[CacheLine]:
        """Most-recently-used line (needed by the MRUMissCnt statistic)."""
        if not self.lines:
            return None
        return next(reversed(self.lines.values()))


class FifoSet(BaseSet):
    """First-in-first-out: timestamp assigned at insert only.

    Hits never reorder, so dict insertion order *is* FIFO order and the
    head of ``lines`` is the oldest entry — an O(1) victim identical to
    the counter-minimum scan (timestamps are unique and increasing).
    """

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        self._clock = 0

    def touch(self, line: CacheLine) -> None:
        if line.counter == 0:
            self._clock += 1
            line.counter = self._clock

    def victim(self) -> CacheLine:
        return next(iter(self.lines.values()))


class LfuSet(BaseSet):
    """Least-frequently-used with insertion-order tiebreak."""

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        self._clock = 0

    def touch(self, line: CacheLine) -> None:
        line.counter += 1
        if line.stamp == 0:
            self._clock += 1
            line.stamp = self._clock

    def victim(self) -> CacheLine:
        return min(self.lines.values(), key=lambda l: (l.counter, l.stamp))


class ClockSet(BaseSet):
    """Second-chance CLOCK over an explicit ring of tags."""

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        self._ring: List[Hashable] = []
        self._hand = 0

    def touch(self, line: CacheLine) -> None:
        line.referenced = True

    def insert(self, line: CacheLine) -> None:
        super().insert(line)
        self._ring.append(line.tag)

    def _ring_remove(self, tag: Hashable) -> None:
        """Drop ``tag`` from the ring, keeping the hand on the same line.

        Removing an element below the hand shifts every later element left
        one position, so the hand must follow it or it silently skips a
        line's second chance.
        """
        index = self._ring.index(tag)
        self._ring.pop(index)
        if index < self._hand:
            self._hand -= 1
        if self._hand >= len(self._ring):
            self._hand = 0

    def evict(self, tag: Hashable) -> CacheLine:
        self._ring_remove(tag)
        return super().evict(tag)

    def invalidate(self, tag: Hashable) -> Optional[CacheLine]:
        line = super().invalidate(tag)
        if line is not None:
            self._ring_remove(tag)
        return line

    def victim(self) -> CacheLine:
        while True:
            tag = self._ring[self._hand]
            line = self.lines[tag]
            if not line.referenced:
                return line
            line.referenced = False
            self._hand = (self._hand + 1) % len(self._ring)


class RandomSet(BaseSet):
    """Uniform random victim; deterministic under a seeded RNG."""

    def __init__(self, ways: int, rng: Optional[random.Random] = None) -> None:
        super().__init__(ways)
        self._rng = rng or random.Random(0xBA51C)

    def touch(self, line: CacheLine) -> None:
        pass

    def victim(self) -> CacheLine:
        tags = sorted(self.lines.keys(), key=repr)
        return self.lines[self._rng.choice(tags)]


REPLACEMENT_POLICIES: Dict[str, Callable[[int], BaseSet]] = {
    "lru": LruSet,
    "fifo": FifoSet,
    "lfu": LfuSet,
    "clock": ClockSet,
    "random": RandomSet,
}


def make_set(policy: str, ways: int) -> BaseSet:
    """Instantiate one set with the named replacement policy."""
    try:
        factory = REPLACEMENT_POLICIES[policy]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {policy!r}; "
            f"choose from {sorted(REPLACEMENT_POLICIES)}"
        ) from None
    return factory(ways)
