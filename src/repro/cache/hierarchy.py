"""Multi-core cache hierarchy: private L1D/L2 per core, shared LLC.

The hierarchy consumes the raw trace and emits the memory-controller-level
events: demand LLC misses (with their latency contribution) and dirty LLC
writebacks. L1I is omitted — the synthetic traces model data accesses, and
Table I's L1I would filter instruction fetches we do not generate.

The hierarchy is non-inclusive/non-exclusive (the common "NINE" policy):
L2/LLC victims do not back-invalidate inner levels; dirty victims propagate
downward level by level. :meth:`install_llc` supports the bandwidth-free
memory-to-LLC prefetch of Sec. III-E — when the controller decompresses one
64 B chunk into up to four cachelines, the extra lines are installed into
the LLC directly.

Hot-path engineering: :meth:`access_fast` is the allocation-free form the
simulator's batched loop drives — ``None`` for the dominant L1-hit case, a
plain tuple otherwise — and level hit counters accumulate in integers that
fold into the public ``stats`` group lazily on read. :meth:`access` wraps
it into the original :class:`HierarchyResult` for compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.cache.sram_cache import SetAssociativeCache
from repro.common.config import HierarchyConfig
from repro.common.stats import CounterGroup


@dataclass
class HierarchyResult:
    """What one trace access did to the hierarchy.

    ``llc_miss`` — the access needs main memory; ``latency_cycles`` — the
    SRAM lookup latency already spent on the way down; ``writebacks`` —
    dirty LLC victim addresses that must be written to main memory.
    """

    hit_level: str
    llc_miss: bool
    latency_cycles: int
    writebacks: List[int] = field(default_factory=list)


class CacheHierarchy:
    """Private L1D + L2 per core, one shared LLC."""

    def __init__(self, config: Optional[HierarchyConfig] = None) -> None:
        self.config = config or HierarchyConfig()
        cores = self.config.cores
        self._l1: List[SetAssociativeCache] = [
            SetAssociativeCache(self.config.l1d) for _ in range(cores)
        ]
        self._l2: List[SetAssociativeCache] = [
            SetAssociativeCache(self.config.l2) for _ in range(cores)
        ]
        self.llc = SetAssociativeCache(self.config.llc)
        self._stats = CounterGroup("hierarchy")
        self._cores = cores
        self._lat_l1 = self.config.l1d.latency_cycles
        self._lat_l12 = self._lat_l1 + self.config.l2.latency_cycles
        self._lat_full = self._lat_l12 + self.config.llc.latency_cycles
        # Deferred level-hit counters, folded into ``stats`` on read.
        self._n_l1_hits = 0
        self._n_l2_hits = 0
        self._n_llc_hits = 0
        self._n_llc_misses = 0
        self._n_prefetch_installs = 0

    @property
    def stats(self) -> CounterGroup:
        """Counter group with all pending hot-path counts folded in."""
        if self._n_l1_hits:
            self._stats.inc("l1_hits", self._n_l1_hits)
            self._n_l1_hits = 0
        if self._n_l2_hits:
            self._stats.inc("l2_hits", self._n_l2_hits)
            self._n_l2_hits = 0
        if self._n_llc_hits:
            self._stats.inc("llc_hits", self._n_llc_hits)
            self._n_llc_hits = 0
        if self._n_llc_misses:
            self._stats.inc("llc_misses", self._n_llc_misses)
            self._n_llc_misses = 0
        if self._n_prefetch_installs:
            self._stats.inc("llc_prefetch_installs", self._n_prefetch_installs)
            self._n_prefetch_installs = 0
        return self._stats

    def access_fast(
        self, addr: int, is_write: bool, core: int = 0
    ) -> Optional[Tuple[str, int, bool, Optional[List[int]]]]:
        """Run one demand access through L1 -> L2 -> LLC, allocation-free.

        Returns ``None`` for the dominant L1-hit case; otherwise a tuple
        ``(hit_level, latency_cycles, llc_miss, writebacks)`` where
        ``writebacks`` is ``None`` when no dirty LLC victims spilled.
        Simulation effects are identical to :meth:`access`.
        """
        core %= self._cores
        l1 = self._l1[core]
        if l1._is_lru:
            # Inlined L1 LRU probe: the L1 hit is the dominant outcome and
            # this skips the access_raw call for it (same state effects).
            line = addr // l1._line_size
            index = line % l1.num_sets
            cache_set = l1._sets[index]
            tag = line // l1.num_sets
            lines = cache_set.lines
            entry = lines.get(tag)
            l1._n_accesses += 1
            if entry is not None:
                cache_set._clock += 1
                entry.counter = cache_set._clock
                lines[tag] = lines.pop(tag)
                if is_write:
                    entry.dirty = True
                l1._n_hits += 1
                self._n_l1_hits += 1
                return None
            l1._n_misses += 1
            l1_wb, _ = l1._allocate(cache_set, index, tag, is_write)
        else:
            hit, l1_wb, _ = l1.access_raw(addr, is_write)
            if hit:
                self._n_l1_hits += 1
                return None

        writebacks: Optional[List[int]] = None
        l2 = self._l2[core]
        if l2._is_lru:
            # Inlined L2 demand probe (read-only at L2 under NINE; same
            # state transitions and counters as access_raw).
            line = addr // l2._line_size
            index = line % l2.num_sets
            cache_set = l2._sets[index]
            tag = line // l2.num_sets
            lines = cache_set.lines
            entry = lines.get(tag)
            l2._n_accesses += 1
            if entry is not None:
                cache_set._clock += 1
                entry.counter = cache_set._clock
                lines[tag] = lines.pop(tag)
                l2._n_hits += 1
                hit2 = True
                l2_wb = None
            else:
                l2._n_misses += 1
                hit2 = False
                l2_wb, _ = l2._allocate(cache_set, index, tag, False)
        else:
            hit2, l2_wb, _ = l2.access_raw(addr, False)
        if l1_wb is not None:
            # Dirty L1 victim lands in L2 (write-allocate at L2).
            _, spill, _ = l2.access_raw(l1_wb, True)
            if spill is not None:
                _, llc_wb, _ = self.llc.access_raw(spill, True)
                # Truthiness (not `is not None`) preserves the historical
                # spill semantics exactly.
                if llc_wb:
                    writebacks = [llc_wb]
        if hit2:
            self._n_l2_hits += 1
            # Dirtiness is tracked at L1; the L2 copy stays clean (NINE).
            return ("L2", self._lat_l12, False, writebacks)
        if l2_wb is not None:
            _, llc_wb, _ = self.llc.access_raw(l2_wb, True)
            if llc_wb:
                if writebacks is None:
                    writebacks = [llc_wb]
                else:
                    writebacks.append(llc_wb)

        llc = self.llc
        if llc._is_lru:
            # Inlined LLC demand probe (see the L2 probe above).
            line = addr // llc._line_size
            index = line % llc.num_sets
            cache_set = llc._sets[index]
            tag = line // llc.num_sets
            lines = cache_set.lines
            entry = lines.get(tag)
            llc._n_accesses += 1
            if entry is not None:
                cache_set._clock += 1
                entry.counter = cache_set._clock
                lines[tag] = lines.pop(tag)
                llc._n_hits += 1
                hit3 = True
                llc_wb = None
            else:
                llc._n_misses += 1
                hit3 = False
                llc_wb, _ = llc._allocate(cache_set, index, tag, False)
        else:
            hit3, llc_wb, _ = llc.access_raw(addr, False)
        if llc_wb is not None:
            if writebacks is None:
                writebacks = [llc_wb]
            else:
                writebacks.append(llc_wb)
        if hit3:
            self._n_llc_hits += 1
            return ("LLC", self._lat_full, False, writebacks)
        self._n_llc_misses += 1
        return ("MEM", self._lat_full, True, writebacks)

    def access(self, addr: int, is_write: bool, core: int = 0) -> HierarchyResult:
        """Run one demand access through L1 -> L2 -> LLC."""
        outcome = self.access_fast(addr, is_write, core)
        if outcome is None:
            return HierarchyResult("L1", False, self._lat_l1, [])
        level, latency, llc_miss, writebacks = outcome
        return HierarchyResult(
            level, llc_miss, latency, writebacks if writebacks is not None else []
        )

    def install_llc_fast(self, addr: int) -> Optional[int]:
        """Install a prefetched line into the LLC; returns the dirty
        writeback address, if any (allocation-free form)."""
        writeback = self.llc.install_raw(addr)
        self._n_prefetch_installs += 1
        return writeback

    def install_llc(self, addr: int) -> List[int]:
        """Install a prefetched line into the LLC; returns dirty writebacks."""
        writeback = self.install_llc_fast(addr)
        return [writeback] if writeback else []

    @property
    def llc_miss_rate(self) -> float:
        accesses = self.llc.stats.get("accesses")
        return self.llc.stats.get("misses") / accesses if accesses else 0.0
