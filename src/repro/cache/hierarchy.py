"""Multi-core cache hierarchy: private L1D/L2 per core, shared LLC.

The hierarchy consumes the raw trace and emits the memory-controller-level
events: demand LLC misses (with their latency contribution) and dirty LLC
writebacks. L1I is omitted — the synthetic traces model data accesses, and
Table I's L1I would filter instruction fetches we do not generate.

The hierarchy is non-inclusive/non-exclusive (the common "NINE" policy):
L2/LLC victims do not back-invalidate inner levels; dirty victims propagate
downward level by level. :meth:`install_llc` supports the bandwidth-free
memory-to-LLC prefetch of Sec. III-E — when the controller decompresses one
64 B chunk into up to four cachelines, the extra lines are installed into
the LLC directly.

Hot-path engineering: :meth:`access_fast` is the allocation-free form the
simulator's batched loop drives — ``None`` for the dominant L1-hit case, a
plain tuple otherwise — and level hit counters accumulate in integers that
fold into the public ``stats`` group lazily on read. :meth:`access` wraps
it into the original :class:`HierarchyResult` for compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.cache.replacement import CacheLine
from repro.cache.sram_cache import SetAssociativeCache
from repro.common.config import HierarchyConfig
from repro.common.stats import CounterGroup


@dataclass
class HierarchyResult:
    """What one trace access did to the hierarchy.

    ``llc_miss`` — the access needs main memory; ``latency_cycles`` — the
    SRAM lookup latency already spent on the way down; ``writebacks`` —
    dirty LLC victim addresses that must be written to main memory.
    """

    hit_level: str
    llc_miss: bool
    latency_cycles: int
    writebacks: List[int] = field(default_factory=list)


class CacheHierarchy:
    """Private L1D + L2 per core, one shared LLC."""

    def __init__(self, config: Optional[HierarchyConfig] = None) -> None:
        self.config = config or HierarchyConfig()
        cores = self.config.cores
        self._l1: List[SetAssociativeCache] = [
            SetAssociativeCache(self.config.l1d) for _ in range(cores)
        ]
        self._l2: List[SetAssociativeCache] = [
            SetAssociativeCache(self.config.l2) for _ in range(cores)
        ]
        self.llc = SetAssociativeCache(self.config.llc)
        self._stats = CounterGroup("hierarchy")
        self._cores = cores
        self._lat_l1 = self.config.l1d.latency_cycles
        self._lat_l12 = self._lat_l1 + self.config.l2.latency_cycles
        self._lat_full = self._lat_l12 + self.config.llc.latency_cycles
        # Deferred level-hit counters, folded into ``stats`` on read.
        self._n_l1_hits = 0
        self._n_l2_hits = 0
        self._n_llc_hits = 0
        self._n_llc_misses = 0
        self._n_prefetch_installs = 0

    @property
    def stats(self) -> CounterGroup:
        """Counter group with all pending hot-path counts folded in."""
        if self._n_l1_hits:
            self._stats.inc("l1_hits", self._n_l1_hits)
            self._n_l1_hits = 0
        if self._n_l2_hits:
            self._stats.inc("l2_hits", self._n_l2_hits)
            self._n_l2_hits = 0
        if self._n_llc_hits:
            self._stats.inc("llc_hits", self._n_llc_hits)
            self._n_llc_hits = 0
        if self._n_llc_misses:
            self._stats.inc("llc_misses", self._n_llc_misses)
            self._n_llc_misses = 0
        if self._n_prefetch_installs:
            self._stats.inc("llc_prefetch_installs", self._n_prefetch_installs)
            self._n_prefetch_installs = 0
        return self._stats

    def access_fast(
        self, addr: int, is_write: bool, core: int = 0
    ) -> Optional[Tuple[str, int, bool, Optional[List[int]]]]:
        """Run one demand access through L1 -> L2 -> LLC, allocation-free.

        Returns ``None`` for the dominant L1-hit case; otherwise a tuple
        ``(hit_level, latency_cycles, llc_miss, writebacks)`` where
        ``writebacks`` is ``None`` when no dirty LLC victims spilled.
        Simulation effects are identical to :meth:`access`.
        """
        core %= self._cores
        l1 = self._l1[core]
        if l1._is_lru:
            # Inlined L1 LRU probe: the L1 hit is the dominant outcome and
            # this skips the access_raw call for it (same state effects).
            line = addr // l1._line_size
            index = line % l1.num_sets
            cache_set = l1._sets[index]
            tag = line // l1.num_sets
            lines = cache_set.lines
            entry = lines.get(tag)
            l1._n_accesses += 1
            if entry is not None:
                cache_set._clock += 1
                entry.counter = cache_set._clock
                lines[tag] = lines.pop(tag)
                if is_write:
                    entry.dirty = True
                l1._n_hits += 1
                self._n_l1_hits += 1
                return None
            l1._n_misses += 1
            l1_wb, _ = l1._allocate(cache_set, index, tag, is_write)
        else:
            hit, l1_wb, _ = l1.access_raw(addr, is_write)
            if hit:
                self._n_l1_hits += 1
                return None

        writebacks: Optional[List[int]] = None
        l2 = self._l2[core]
        if l2._is_lru:
            # Inlined L2 demand probe (read-only at L2 under NINE; same
            # state transitions and counters as access_raw).
            line = addr // l2._line_size
            index = line % l2.num_sets
            cache_set = l2._sets[index]
            tag = line // l2.num_sets
            lines = cache_set.lines
            entry = lines.get(tag)
            l2._n_accesses += 1
            if entry is not None:
                cache_set._clock += 1
                entry.counter = cache_set._clock
                lines[tag] = lines.pop(tag)
                l2._n_hits += 1
                hit2 = True
                l2_wb = None
            else:
                l2._n_misses += 1
                hit2 = False
                l2_wb, _ = l2._allocate(cache_set, index, tag, False)
        else:
            hit2, l2_wb, _ = l2.access_raw(addr, False)
        if l1_wb is not None:
            # Dirty L1 victim lands in L2 (write-allocate at L2).
            _, spill, _ = l2.access_raw(l1_wb, True)
            if spill is not None:
                _, llc_wb, _ = self.llc.access_raw(spill, True)
                # Truthiness (not `is not None`) preserves the historical
                # spill semantics exactly.
                if llc_wb:
                    writebacks = [llc_wb]
        if hit2:
            self._n_l2_hits += 1
            # Dirtiness is tracked at L1; the L2 copy stays clean (NINE).
            return ("L2", self._lat_l12, False, writebacks)
        if l2_wb is not None:
            _, llc_wb, _ = self.llc.access_raw(l2_wb, True)
            if llc_wb:
                if writebacks is None:
                    writebacks = [llc_wb]
                else:
                    writebacks.append(llc_wb)

        llc = self.llc
        if llc._is_lru:
            # Inlined LLC demand probe (see the L2 probe above).
            line = addr // llc._line_size
            index = line % llc.num_sets
            cache_set = llc._sets[index]
            tag = line // llc.num_sets
            lines = cache_set.lines
            entry = lines.get(tag)
            llc._n_accesses += 1
            if entry is not None:
                cache_set._clock += 1
                entry.counter = cache_set._clock
                lines[tag] = lines.pop(tag)
                llc._n_hits += 1
                hit3 = True
                llc_wb = None
            else:
                llc._n_misses += 1
                hit3 = False
                llc_wb, _ = llc._allocate(cache_set, index, tag, False)
        else:
            hit3, llc_wb, _ = llc.access_raw(addr, False)
        if llc_wb is not None:
            if writebacks is None:
                writebacks = [llc_wb]
            else:
                writebacks.append(llc_wb)
        if hit3:
            self._n_llc_hits += 1
            return ("LLC", self._lat_full, False, writebacks)
        self._n_llc_misses += 1
        return ("MEM", self._lat_full, True, writebacks)

    def access(self, addr: int, is_write: bool, core: int = 0) -> HierarchyResult:
        """Run one demand access through L1 -> L2 -> LLC."""
        outcome = self.access_fast(addr, is_write, core)
        if outcome is None:
            return HierarchyResult("L1", False, self._lat_l1, [])
        level, latency, llc_miss, writebacks = outcome
        return HierarchyResult(
            level, llc_miss, latency, writebacks if writebacks is not None else []
        )

    def make_fast_path(self):
        """Closure triple ``(access, install, flush)`` for the hot loop.

        ``access``/``install`` mirror :meth:`access_fast` and
        :meth:`install_llc_fast` with the per-call attribute walks hoisted
        into closure locals and the hierarchy-level hit counters tallied
        in closure integers; ``flush`` folds the tallies back before any
        :attr:`stats` read. Per-cache counters stay attribute increments
        (their owners read them lazily through their own ``stats``).
        Returns ``None`` when any level is not plain-LRU — the closures
        inline only the LRU probe, so the caller falls back to the bound
        methods.
        """
        l1s = self._l1
        l2s = self._l2
        llc = self.llc
        if not all(c._is_lru for c in (*l1s, *l2s, llc)):
            return None
        cores = self._cores
        lat_l12 = self._lat_l12
        lat_full = self._lat_full
        l1_geom = [(c, c._line_size, c.num_sets, c._sets) for c in l1s]
        l2_geom = [(c, c._line_size, c.num_sets, c._sets) for c in l2s]
        llc_line = llc._line_size
        llc_sets_n = llc.num_sets
        llc_sets = llc._sets
        llc_raw = llc.access_raw
        new_cache_line = CacheLine

        n_l1 = n_l2 = n_llc = n_miss = n_pref = 0

        def access(addr, is_write, core=0):
            nonlocal n_l1, n_l2, n_llc, n_miss
            l1, l1_line, l1_nsets, l1_sets = l1_geom[core % cores]
            line = addr // l1_line
            index = line % l1_nsets
            cache_set = l1_sets[index]
            tag = line // l1_nsets
            lines = cache_set.lines
            entry = lines.get(tag)
            l1._n_accesses += 1
            if entry is not None:
                cache_set._clock += 1
                entry.counter = cache_set._clock
                lines[tag] = lines.pop(tag)
                if is_write:
                    entry.dirty = True
                l1._n_hits += 1
                n_l1 += 1
                return None
            l1._n_misses += 1
            # SetAssociativeCache._allocate (LRU arm), inlined.
            if len(lines) >= cache_set.ways:
                victim_tag, victim = next(iter(lines.items()))
                if victim.dirty:
                    l1_wb = (victim_tag * l1_nsets + index) * l1_line
                    l1._n_writebacks += 1
                else:
                    l1_wb = None
                del lines[victim_tag]
                l1._n_evictions += 1
                victim.tag = tag
                victim.dirty = is_write
                victim.payload = None
                victim.referenced = False
                victim.stamp = 0
                new_line = victim
            else:
                l1_wb = None
                new_line = new_cache_line(tag, dirty=is_write)
            cache_set._clock += 1
            new_line.counter = cache_set._clock
            lines[tag] = new_line

            writebacks = None
            l2, l2_line, l2_nsets, l2_sets = l2_geom[core % cores]
            line = addr // l2_line
            index = line % l2_nsets
            cache_set = l2_sets[index]
            tag = line // l2_nsets
            lines = cache_set.lines
            entry = lines.get(tag)
            l2._n_accesses += 1
            if entry is not None:
                cache_set._clock += 1
                entry.counter = cache_set._clock
                lines[tag] = lines.pop(tag)
                l2._n_hits += 1
                hit2 = True
                l2_wb = None
            else:
                l2._n_misses += 1
                hit2 = False
                if len(lines) >= cache_set.ways:
                    victim_tag, victim = next(iter(lines.items()))
                    if victim.dirty:
                        l2_wb = (victim_tag * l2_nsets + index) * l2_line
                        l2._n_writebacks += 1
                    else:
                        l2_wb = None
                    del lines[victim_tag]
                    l2._n_evictions += 1
                    victim.tag = tag
                    victim.dirty = False
                    victim.payload = None
                    victim.referenced = False
                    victim.stamp = 0
                    new_line = victim
                else:
                    l2_wb = None
                    new_line = new_cache_line(tag)
                cache_set._clock += 1
                new_line.counter = cache_set._clock
                lines[tag] = new_line
            if l1_wb is not None:
                # Dirty L1 victim lands in L2 (write-allocate at L2).
                _, spill, _ = l2.access_raw(l1_wb, True)
                if spill is not None:
                    _, llc_wb, _ = llc_raw(spill, True)
                    # Truthiness (not `is not None`) preserves the
                    # historical spill semantics exactly.
                    if llc_wb:
                        writebacks = [llc_wb]
            if hit2:
                n_l2 += 1
                # Dirtiness is tracked at L1; the L2 copy stays clean.
                return ("L2", lat_l12, False, writebacks)
            if l2_wb is not None:
                _, llc_wb, _ = llc_raw(l2_wb, True)
                if llc_wb:
                    if writebacks is None:
                        writebacks = [llc_wb]
                    else:
                        writebacks.append(llc_wb)

            line = addr // llc_line
            index = line % llc_sets_n
            cache_set = llc_sets[index]
            tag = line // llc_sets_n
            lines = cache_set.lines
            entry = lines.get(tag)
            llc._n_accesses += 1
            if entry is not None:
                cache_set._clock += 1
                entry.counter = cache_set._clock
                lines[tag] = lines.pop(tag)
                llc._n_hits += 1
                hit3 = True
                llc_wb = None
            else:
                llc._n_misses += 1
                hit3 = False
                if len(lines) >= cache_set.ways:
                    victim_tag, victim = next(iter(lines.items()))
                    if victim.dirty:
                        llc_wb = (victim_tag * llc_sets_n + index) * llc_line
                        llc._n_writebacks += 1
                    else:
                        llc_wb = None
                    del lines[victim_tag]
                    llc._n_evictions += 1
                    victim.tag = tag
                    victim.dirty = False
                    victim.payload = None
                    victim.referenced = False
                    victim.stamp = 0
                    new_line = victim
                else:
                    llc_wb = None
                    new_line = new_cache_line(tag)
                cache_set._clock += 1
                new_line.counter = cache_set._clock
                lines[tag] = new_line
            if llc_wb is not None:
                if writebacks is None:
                    writebacks = [llc_wb]
                else:
                    writebacks.append(llc_wb)
            if hit3:
                n_llc += 1
                return ("LLC", lat_full, False, writebacks)
            n_miss += 1
            return ("MEM", lat_full, True, writebacks)

        def install(addr):
            # install_raw with the LRU allocate arm inlined.
            nonlocal n_pref
            n_pref += 1
            line = addr // llc_line
            index = line % llc_sets_n
            cache_set = llc_sets[index]
            tag = line // llc_sets_n
            lines = cache_set.lines
            if lines.get(tag) is not None:
                return None
            llc._n_installs += 1
            if len(lines) >= cache_set.ways:
                victim_tag, victim = next(iter(lines.items()))
                if victim.dirty:
                    wb = (victim_tag * llc_sets_n + index) * llc_line
                    llc._n_writebacks += 1
                else:
                    wb = None
                del lines[victim_tag]
                llc._n_evictions += 1
                victim.tag = tag
                victim.dirty = False
                victim.payload = None
                victim.referenced = False
                victim.stamp = 0
                new_line = victim
            else:
                wb = None
                new_line = new_cache_line(tag)
            cache_set._clock += 1
            new_line.counter = cache_set._clock
            lines[tag] = new_line
            return wb

        def flush():
            nonlocal n_l1, n_l2, n_llc, n_miss, n_pref
            if n_l1:
                self._n_l1_hits += n_l1
                n_l1 = 0
            if n_l2:
                self._n_l2_hits += n_l2
                n_l2 = 0
            if n_llc:
                self._n_llc_hits += n_llc
                n_llc = 0
            if n_miss:
                self._n_llc_misses += n_miss
                n_miss = 0
            if n_pref:
                self._n_prefetch_installs += n_pref
                n_pref = 0

        return access, install, flush

    def install_llc_fast(self, addr: int) -> Optional[int]:
        """Install a prefetched line into the LLC; returns the dirty
        writeback address, if any (allocation-free form)."""
        writeback = self.llc.install_raw(addr)
        self._n_prefetch_installs += 1
        return writeback

    def install_llc(self, addr: int) -> List[int]:
        """Install a prefetched line into the LLC; returns dirty writebacks."""
        writeback = self.install_llc_fast(addr)
        return [writeback] if writeback else []

    @property
    def llc_miss_rate(self) -> float:
        accesses = self.llc.stats.get("accesses")
        return self.llc.stats.get("misses") / accesses if accesses else 0.0
