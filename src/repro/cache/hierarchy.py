"""Multi-core cache hierarchy: private L1D/L2 per core, shared LLC.

The hierarchy consumes the raw trace and emits the memory-controller-level
events: demand LLC misses (with their latency contribution) and dirty LLC
writebacks. L1I is omitted — the synthetic traces model data accesses, and
Table I's L1I would filter instruction fetches we do not generate.

The hierarchy is non-inclusive/non-exclusive (the common "NINE" policy):
L2/LLC victims do not back-invalidate inner levels; dirty victims propagate
downward level by level. :meth:`install_llc` supports the bandwidth-free
memory-to-LLC prefetch of Sec. III-E — when the controller decompresses one
64 B chunk into up to four cachelines, the extra lines are installed into
the LLC directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.cache.sram_cache import SetAssociativeCache
from repro.common.config import HierarchyConfig
from repro.common.stats import CounterGroup


@dataclass
class HierarchyResult:
    """What one trace access did to the hierarchy.

    ``llc_miss`` — the access needs main memory; ``latency_cycles`` — the
    SRAM lookup latency already spent on the way down; ``writebacks`` —
    dirty LLC victim addresses that must be written to main memory.
    """

    hit_level: str
    llc_miss: bool
    latency_cycles: int
    writebacks: List[int] = field(default_factory=list)


class CacheHierarchy:
    """Private L1D + L2 per core, one shared LLC."""

    def __init__(self, config: Optional[HierarchyConfig] = None) -> None:
        self.config = config or HierarchyConfig()
        cores = self.config.cores
        self._l1: List[SetAssociativeCache] = [
            SetAssociativeCache(self.config.l1d) for _ in range(cores)
        ]
        self._l2: List[SetAssociativeCache] = [
            SetAssociativeCache(self.config.l2) for _ in range(cores)
        ]
        self.llc = SetAssociativeCache(self.config.llc)
        self.stats = CounterGroup("hierarchy")

    def access(self, addr: int, is_write: bool, core: int = 0) -> HierarchyResult:
        """Run one demand access through L1 -> L2 -> LLC."""
        core %= self.config.cores
        writebacks: List[int] = []
        latency = self.config.l1d.latency_cycles

        l1 = self._l1[core]
        outcome = l1.access(addr, is_write)
        if outcome.hit:
            self.stats.inc("l1_hits")
            return HierarchyResult("L1", False, latency, writebacks)
        l1_victim_wb = outcome.writeback_addr

        latency += self.config.l2.latency_cycles
        l2 = self._l2[core]
        outcome2 = l2.access(addr, False)
        if l1_victim_wb is not None:
            # Dirty L1 victim lands in L2 (write-allocate at L2).
            wb_out = l2.access(l1_victim_wb, True)
            if wb_out.writeback_addr is not None:
                writebacks.extend(self._spill_to_llc(wb_out.writeback_addr))
        if outcome2.hit:
            self.stats.inc("l2_hits")
            if is_write:
                pass  # dirtiness tracked at L1; L2 copy stays clean (NINE).
            return HierarchyResult("L2", False, latency, writebacks)
        if outcome2.writeback_addr is not None:
            writebacks.extend(self._spill_to_llc(outcome2.writeback_addr))

        latency += self.config.llc.latency_cycles
        outcome3 = self.llc.access(addr, False)
        if outcome3.writeback_addr is not None:
            writebacks.append(outcome3.writeback_addr)
        if outcome3.hit:
            self.stats.inc("llc_hits")
            return HierarchyResult("LLC", False, latency, writebacks)
        self.stats.inc("llc_misses")
        return HierarchyResult("MEM", True, latency, writebacks)

    def install_llc(self, addr: int) -> List[int]:
        """Install a prefetched line into the LLC; returns dirty writebacks."""
        outcome = self.llc.install(addr)
        self.stats.inc("llc_prefetch_installs")
        return [outcome.writeback_addr] if outcome.writeback_addr else []

    def _spill_to_llc(self, addr: int) -> List[int]:
        """A dirty L2 victim is written into the LLC."""
        outcome = self.llc.access(addr, True)
        return [outcome.writeback_addr] if outcome.writeback_addr else []

    @property
    def llc_miss_rate(self) -> float:
        accesses = self.llc.stats.get("accesses")
        return self.llc.stats.get("misses") / accesses if accesses else 0.0
