"""Processor-side SRAM cache models (Table I: L1D, L2, shared LLC).

These caches exist to turn a workload's raw access trace into the stream of
LLC misses and writebacks that actually reaches the hybrid memory
controller — the paper's designs only ever see that filtered stream. The
package provides a generic set-associative cache with pluggable replacement
(LRU, FIFO, CLOCK, LFU, random) and a multi-core hierarchy with private
L1/L2 and a shared LLC, including the LLC-install path for the
memory-to-LLC prefetch of decompressed neighbour lines (Sec. III-E).
"""

from repro.cache.hierarchy import CacheHierarchy, HierarchyResult
from repro.cache.replacement import REPLACEMENT_POLICIES, make_set
from repro.cache.sram_cache import AccessOutcome, SetAssociativeCache

__all__ = [
    "AccessOutcome",
    "CacheHierarchy",
    "HierarchyResult",
    "REPLACEMENT_POLICIES",
    "SetAssociativeCache",
    "make_set",
]
