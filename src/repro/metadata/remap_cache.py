"""On-chip remap cache at super-block-line granularity (Sec. III-C).

Each line caches all eight remap entries of one super-block (16 B of
entries plus a tag), so one fill serves the whole prefix-sum position
calculation. The cache only models presence — the authoritative entries
live in the :class:`~repro.metadata.remap.RemapTable` — because what the
simulator needs from it is the hit/miss behaviour that decides whether an
access pays the extra off-chip remap-table lookup.

Default geometry: 256 sets x 8 ways = 2048 super-block lines ~= 32 kB,
matching Table I, with >90% typical hit rates as the paper reports.
"""

from __future__ import annotations

from typing import List

from repro.cache.replacement import CacheLine, LruSet
from repro.common.errors import CorruptionError
from repro.common.stats import CounterGroup, RatioStat
from repro.obs.tracer import NULL_TRACER


class RemapCache:
    """Set-associative, LRU, super-block-granularity metadata cache."""

    def __init__(
        self,
        num_sets: int = 256,
        ways: int = 8,
        entries_per_line: int = 8,
        latency_cycles: int = 3,
    ) -> None:
        self.num_sets = num_sets
        self.ways = ways
        self.entries_per_line = entries_per_line
        self.latency_cycles = latency_cycles
        self._sets: List[LruSet] = [LruSet(ways) for _ in range(num_sets)]
        self.stats = CounterGroup("remap_cache")
        self.hit_ratio = RatioStat("remap_cache_hits")
        #: Observability hook point; see :mod:`repro.obs`.
        self.obs = NULL_TRACER
        #: Optional :class:`~repro.resilience.faults.FaultInjector`. A
        #: corrupted line raises before any hit/miss accounting; recovery
        #: invalidates and refills with injection paused.
        self.faults = None

    def _split(self, super_block_id: int) -> tuple[int, int]:
        return super_block_id % self.num_sets, super_block_id // self.num_sets

    def access(self, super_block_id: int) -> bool:
        """Probe for a super-block line; fills on miss. Returns hit."""
        if (
            self.faults is not None
            and self.faults.active
            and self.faults.remap_corruption()
        ):
            index, _ = self._split(super_block_id)
            raise CorruptionError(
                f"remap cache line for super-block {super_block_id} corrupted",
                site="remap_cache",
                set_index=index,
                block_id=super_block_id,
            )
        index, tag = self._split(super_block_id)
        cache_set = self._sets[index]
        line = cache_set.lookup(tag)
        hit = line is not None
        self.hit_ratio.record(hit)
        if self.obs.enabled:
            self.obs.emit("remap_cache", super=super_block_id, hit=hit)
        if hit:
            cache_set.touch(line)
            self.stats.inc("hits")
        else:
            self.stats.inc("misses")
            if cache_set.is_full():
                victim = cache_set.victim()
                cache_set.evict(victim.tag)
                self.stats.inc("evictions")
            cache_set.insert(CacheLine(tag))
        return hit

    def contains(self, super_block_id: int) -> bool:
        index, tag = self._split(super_block_id)
        return self._sets[index].lookup(tag) is not None

    def invalidate(self, super_block_id: int) -> None:
        index, tag = self._split(super_block_id)
        self._sets[index].invalidate(tag)

    def storage_bytes(self, entry_bytes: int = 2, tag_bytes: int = 4) -> int:
        line_bytes = self.entries_per_line * entry_bytes + tag_bytes
        return self.num_sets * self.ways * line_bytes

    @property
    def hit_rate(self) -> float:
        return self.hit_ratio.rate
