"""On-chip remap cache at super-block-line granularity (Sec. III-C).

Each line caches all eight remap entries of one super-block (16 B of
entries plus a tag), so one fill serves the whole prefix-sum position
calculation. The cache only models presence — the authoritative entries
live in the :class:`~repro.metadata.remap.RemapTable` — because what the
simulator needs from it is the hit/miss behaviour that decides whether an
access pays the extra off-chip remap-table lookup.

Default geometry: 256 sets x 8 ways = 2048 super-block lines ~= 32 kB,
matching Table I, with >90% typical hit rates as the paper reports.
"""

from __future__ import annotations

from typing import List

from repro.cache.replacement import CacheLine, LruSet
from repro.common.errors import CorruptionError
from repro.common.stats import CounterGroup, RatioStat
from repro.obs.tracer import NULL_TRACER


class RemapCache:
    """Set-associative, LRU, super-block-granularity metadata cache."""

    def __init__(
        self,
        num_sets: int = 256,
        ways: int = 8,
        entries_per_line: int = 8,
        latency_cycles: int = 3,
    ) -> None:
        self.num_sets = num_sets
        self.ways = ways
        self.entries_per_line = entries_per_line
        self.latency_cycles = latency_cycles
        self._sets: List[LruSet] = [LruSet(ways) for _ in range(num_sets)]
        self._stats = CounterGroup("remap_cache")
        # Deferred per-probe counters, folded into ``stats`` on read.
        self._n_hits = 0
        self._n_misses = 0
        self._n_evictions = 0
        self.hit_ratio = RatioStat("remap_cache_hits")
        #: Observability hook point; see :mod:`repro.obs`.
        self.obs = NULL_TRACER
        #: Optional :class:`~repro.resilience.faults.FaultInjector`. A
        #: corrupted line raises before any hit/miss accounting; recovery
        #: invalidates and refills with injection paused.
        self.faults = None
        #: Optional :class:`~repro.core.columnar.ColumnarState` mirror.
        #: Tracks per-set occupancy so :meth:`repair` sizes the refill
        #: without re-probing the set, and invalidations stay exact.
        self.columnar = None

    def _split(self, super_block_id: int) -> tuple[int, int]:
        return super_block_id % self.num_sets, super_block_id // self.num_sets

    @property
    def stats(self) -> CounterGroup:
        """Counter group with all pending probe counts folded in."""
        if self._n_hits:
            self._stats.inc("hits", self._n_hits)
            self._n_hits = 0
        if self._n_misses:
            self._stats.inc("misses", self._n_misses)
            self._n_misses = 0
        if self._n_evictions:
            self._stats.inc("evictions", self._n_evictions)
            self._n_evictions = 0
        return self._stats

    def access(self, super_block_id: int) -> bool:
        """Probe for a super-block line; fills on miss. Returns hit."""
        if (
            self.faults is not None
            and self.faults.active
            and self.faults.remap_corruption()
        ):
            raise CorruptionError(
                f"remap cache line for super-block {super_block_id} corrupted",
                site="remap_cache",
                set_index=super_block_id % self.num_sets,
                block_id=super_block_id,
            )
        index = super_block_id % self.num_sets
        tag = super_block_id // self.num_sets
        cache_set = self._sets[index]
        lines = cache_set.lines
        line = lines.get(tag)
        hit = line is not None
        ratio = self.hit_ratio
        ratio.total += 1
        if self.obs.enabled:
            self.obs.emit("remap_cache", super=super_block_id, hit=hit)
        if hit:
            ratio.hits += 1
            # LRU touch inlined (same transitions as LruSet.touch).
            cache_set._clock += 1
            line.counter = cache_set._clock
            lines[tag] = lines.pop(tag)
            self._n_hits += 1
        else:
            self._n_misses += 1
            if len(lines) >= cache_set.ways:
                victim_tag = next(iter(lines))
                del lines[victim_tag]
                self._n_evictions += 1
            elif self.columnar is not None:
                # Fill without eviction: the set gains a line (an evict +
                # fill pair leaves the occupancy column unchanged).
                self.columnar.rc_occupancy[index] += 1
            line = CacheLine(tag)
            cache_set._clock += 1
            line.counter = cache_set._clock
            lines[tag] = line
        return hit

    def probe_state(self):
        """Bindings for an externally inlined probe loop.

        The deferred-batch server inlines :meth:`access` (minus faults
        and tracing, which disable batching altogether) and needs the
        cache's mutable internals hoisted once per run. Returns
        ``(sets, num_sets, hit_ratio, columnar)``. An inline probe must
        preserve this class's transitions exactly:

        * hit — bump the set ``_clock``, stamp ``line.counter``, and
          re-insert the tag (``lines[tag] = lines.pop(tag)``) so dict
          order stays LRU→MRU;
        * miss at capacity — evict ``next(iter(lines))`` (the LRU);
        * miss with room — bump ``columnar.rc_occupancy[index]`` when a
          columnar mirror is attached (an evict+fill pair leaves it
          unchanged);
        * fill — fresh ``CacheLine(tag)`` stamped from the set clock.

        Hit/miss/eviction outcomes must be tallied by the caller and
        folded back through :meth:`credit_probes` before anything reads
        ``stats`` or ``hit_ratio``.
        """
        return self._sets, self.num_sets, self.hit_ratio, self.columnar

    def credit_probes(
        self, total: int, hits: int, misses: int, evictions: int
    ) -> None:
        """Fold a batch of externally tallied probe outcomes back in.

        The counterpart of :meth:`probe_state`: after this, ``stats``,
        ``hit_ratio`` and ``hit_rate`` read exactly as if every probe
        had gone through :meth:`access`.
        """
        ratio = self.hit_ratio
        ratio.total += total
        ratio.hits += hits
        self._n_hits += hits
        self._n_misses += misses
        self._n_evictions += evictions

    def contains(self, super_block_id: int) -> bool:
        index, tag = self._split(super_block_id)
        return self._sets[index].lookup(tag) is not None

    def invalidate(self, super_block_id: int) -> None:
        index, tag = self._split(super_block_id)
        dropped = self._sets[index].invalidate(tag)
        if dropped is not None and self.columnar is not None:
            self.columnar.rc_occupancy[index] -= 1

    def repair(self, super_block_id: int) -> bool:
        """Drop and refill one (corrupted) line in a single pass.

        Fuses the old ``invalidate`` + fault-paused ``access`` repair
        sequence: the set index and tag are split once and the refill
        reuses the columnar occupancy column instead of re-probing the
        set. Draw-for-draw identical to the two-step sequence — a paused
        access never consults the fault injector, the dropped line makes
        the refill an unconditional miss, and all hit/miss/eviction
        accounting matches a plain missing probe. Returns ``False``: the
        access now pays the off-chip table probe, as any miss would.
        """
        index = super_block_id % self.num_sets
        tag = super_block_id // self.num_sets
        cache_set = self._sets[index]
        lines = cache_set.lines
        col = self.columnar
        dropped = lines.pop(tag, None)
        if dropped is not None and col is not None:
            col.rc_occupancy[index] -= 1
        self.hit_ratio.total += 1
        if self.obs.enabled:
            self.obs.emit("remap_cache", super=super_block_id, hit=False)
        self._n_misses += 1
        occupancy = int(col.rc_occupancy[index]) if col is not None else len(lines)
        if occupancy >= cache_set.ways:
            del lines[next(iter(lines))]
            self._n_evictions += 1
        elif col is not None:
            col.rc_occupancy[index] += 1
        line = CacheLine(tag)
        cache_set._clock += 1
        line.counter = cache_set._clock
        lines[tag] = line
        return False

    def storage_bytes(self, entry_bytes: int = 2, tag_bytes: int = 4) -> int:
        line_bytes = self.entries_per_line * entry_bytes + tag_bytes
        return self.num_sets * self.ways * line_bytes

    @property
    def hit_rate(self) -> float:
        return self.hit_ratio.rate
