"""Baryon's dual-format metadata scheme (Sec. III-C, Fig. 5).

Two formats with opposite trade-offs:

* :class:`~repro.metadata.stage_tag.StageTagEntry` — the flexible 14 B
  (108-bit) format of the on-chip stage tag array: one entry per stage-area
  physical block, eight 8-bit range slots that can hold compressed ranges
  from *any* block of one super-block (Rules 1-2), plus LRU/FIFO/MissCnt
  replacement state;
* :class:`~repro.metadata.remap.RemapEntry` — the compact 2 B format of the
  off-chip remap table: one entry per logical block, a Remap bitmap, a
  single Pointer (Rule 3) and CF2/CF4 range bits describing a *sorted,
  frozen* layout (Rule 4) whose slot positions are recomputed by prefix
  sums rather than stored.

Both encode/decode to exact bit widths so the paper's storage numbers
(448 kB stage tag array, 0.1% remap table overhead) are asserted, not
assumed. :class:`~repro.metadata.remap_cache.RemapCache` models the 32 kB
on-chip cache of remap entries at super-block-line granularity.
"""

from repro.metadata.remap import (
    RemapEntry,
    RemapTable,
    block_occupied_slots,
    locate_sub_block,
)
from repro.metadata.remap_cache import RemapCache
from repro.metadata.stage_tag import RangeSlot, StageTagArray, StageTagEntry

__all__ = [
    "RangeSlot",
    "RemapCache",
    "RemapEntry",
    "RemapTable",
    "StageTagArray",
    "StageTagEntry",
    "block_occupied_slots",
    "locate_sub_block",
]
