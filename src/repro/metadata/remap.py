"""Remap table: the compact metadata format (Fig. 5b).

One 2-byte entry per logical data block over the whole physical address
space. The entry records *which* sub-blocks are cached/migrated (eight
Remap bits), *where* (one short Pointer — Rule 3: all of a block's
remapped sub-blocks live in one physical block), and *how* they are
compressed (CF2/CF4 range bits — Rule 2: contiguous aligned ranges).
Positions inside the physical block are never stored: the layout is sorted
and frozen at commit (Rule 4), so a slot index is the prefix sum

    slots_before = popcount(Remap) - popcount(CF2) - 3 * popcount(CF4)

accumulated over the same-pointer blocks earlier in the super-block, plus
the index of the range inside the block itself. The special *invalid*
combination CF2 = 1111, CF4 = 11 encodes an all-zero block (the Z case),
which occupies no data space at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import MetadataError

def _popcount(value: int) -> int:
    return bin(value).count("1")


def _mask(bits: int) -> int:
    return (1 << bits) - 1


@dataclass(slots=True)
class RemapEntry:
    """Compact per-block remap metadata.

    ``remap`` — bit ``i`` set means sub-block ``i`` is in the fast memory
    at the physical block named by ``pointer``; clear means it stays at its
    original (slow or flat) location. ``cf2`` bit ``j`` marks the aligned
    pair ``(2j, 2j+1)`` as one CF=2 range; ``cf4`` bit ``q`` marks the
    aligned quad starting at ``4q`` as one CF=4 range. ``zero`` uses the
    invalid CF2/CF4 state and means the whole block is zeros.
    """

    remap: int = 0
    pointer: int = 0
    cf2: int = 0
    cf4: int = 0
    zero: bool = False
    #: Sub-blocks per block: 8 for the paper's 256 B sub-blocking, 32 for
    #: the Baryon-64B variant. Non-default widths change the bit budget.
    num_subs: int = 8

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        n = self.num_subs
        # Fast accept for the all-clear entry: RemapTable.get constructs one
        # per probe of an unremapped block, and every check below passes
        # trivially when no field is set.
        if (
            n == 8
            and not self.zero
            and self.remap == 0
            and self.pointer == 0
            and self.cf2 == 0
            and self.cf4 == 0
        ):
            return
        if n < 4 or n % 4:
            raise MetadataError("num_subs must be a multiple of 4")
        if not 0 <= self.remap <= _mask(n):
            raise MetadataError("Remap bits out of range")
        if not 0 <= self.cf2 <= _mask(n // 2) or not 0 <= self.cf4 <= _mask(n // 4):
            raise MetadataError("CF2/CF4 bits out of range")
        if self.pointer < 0:
            raise MetadataError("Pointer must be non-negative")
        if self.zero:
            return
        if self.cf2 == _mask(n // 2) and self.cf4 == _mask(n // 4):
            raise MetadataError("CF2/CF4 all-ones is reserved for the zero state")
        if self.remap == 0:
            # Hint state (Sec. III-F): after a compressed fast-to-slow
            # writeback the Remap bits are cleared but CF2/CF4 persist as
            # slow-to-stage prefetch and compression hints.
            return
        for q in range(n // 4):
            if (self.cf4 >> q) & 1:
                quad_mask = 0xF << (4 * q)
                if (self.remap & quad_mask) != quad_mask:
                    raise MetadataError(f"CF4 quad {q} not fully remapped")
                pair_mask = 0b11 << (2 * q)
                if self.cf2 & pair_mask:
                    raise MetadataError(f"CF2 bits overlap CF4 quad {q}")
        for pair in range(n // 2):
            if (self.cf2 >> pair) & 1:
                pair_mask = 0b11 << (2 * pair)
                if (self.remap & pair_mask) != pair_mask:
                    raise MetadataError(f"CF2 pair {pair} not fully remapped")

    # -- queries -----------------------------------------------------------
    @property
    def is_remapped(self) -> bool:
        """Any sub-block of this block is in fast memory."""
        return self.zero or self.remap != 0

    def sub_block_remapped(self, sub_index: int) -> bool:
        if self.zero:
            return True
        return bool((self.remap >> sub_index) & 1)

    def range_of(self, sub_index: int) -> Optional[Tuple[int, int]]:
        """``(start, cf)`` of the committed range containing ``sub_index``."""
        if self.zero:
            return (0, 1)
        if not self.sub_block_remapped(sub_index):
            return None
        quad = sub_index // 4
        if (self.cf4 >> quad) & 1:
            return (quad * 4, 4)
        pair = sub_index // 2
        if (self.cf2 >> pair) & 1:
            return (pair * 2, 2)
        return (sub_index, 1)

    def ranges(self) -> List[Tuple[int, int]]:
        """All committed ranges, sorted by start: the frozen slot order."""
        if self.zero:
            return []
        out: List[Tuple[int, int]] = []
        sub = 0
        while sub < self.num_subs:
            r = self.range_of(sub)
            if r is None:
                sub += 1
                continue
            start, cf = r
            if start == sub:
                out.append(r)
            sub = start + cf
        return out

    def occupied_slots(self) -> int:
        """Physical sub-block slots this block consumes (zero blocks: 0)."""
        if self.zero or self.remap == 0:
            return 0
        return _popcount(self.remap) - _popcount(self.cf2) - 3 * _popcount(self.cf4)

    def dirty_like_count(self) -> int:
        """Number of remapped sub-blocks (for flat-area swap accounting)."""
        if self.zero:
            return 0
        return _popcount(self.remap)

    # -- 16-bit encoding (at the default 8-sub-block width) -------------------
    def encode(self, pointer_bits: int = 2) -> int:
        if not 0 <= self.pointer < (1 << pointer_bits):
            raise MetadataError(
                f"pointer {self.pointer} exceeds {pointer_bits} bits"
            )
        n = self.num_subs
        if self.zero:
            cf2, cf4 = _mask(n // 2), _mask(n // 4)
        else:
            cf2, cf4 = self.cf2, self.cf4
        value = self.remap
        value = (value << pointer_bits) | self.pointer
        value = (value << (n // 2)) | cf2
        value = (value << (n // 4)) | cf4
        return value

    @staticmethod
    def decode(value: int, pointer_bits: int = 2, num_subs: int = 8) -> "RemapEntry":
        n = num_subs
        total_bits = n + pointer_bits + n // 2 + n // 4
        if not 0 <= value < (1 << total_bits):
            raise MetadataError("encoded remap entry out of range")
        cf4 = value & _mask(n // 4)
        value >>= n // 4
        cf2 = value & _mask(n // 2)
        value >>= n // 2
        pointer = value & _mask(pointer_bits)
        value >>= pointer_bits
        remap = value & _mask(n)
        zero = cf2 == _mask(n // 2) and cf4 == _mask(n // 4)
        if zero:
            cf2, cf4 = 0, 0
        return RemapEntry(
            remap=remap, pointer=pointer, cf2=cf2, cf4=cf4, zero=zero, num_subs=n
        )

    @staticmethod
    def entry_bits(pointer_bits: int = 2, num_subs: int = 8) -> int:
        return num_subs + pointer_bits + num_subs // 2 + num_subs // 4


#: Shared all-clear entry returned for every unremapped probe. Consumers
#: treat entries as read-only records (updates construct fresh entries and
#: go through :meth:`RemapTable.set`), so one instance can serve them all.
_EMPTY_ENTRY = RemapEntry()


def block_occupied_slots(entry: RemapEntry) -> int:
    """Paper's prefix-sum term for one block (module-level convenience)."""
    return entry.occupied_slots()


def locate_sub_block(
    super_entries: Sequence[RemapEntry], blk_off: int, sub_index: int
) -> Optional[int]:
    """Slot index of ``sub_index`` of block ``blk_off`` in its physical block.

    ``super_entries`` are the eight remap entries of one super-block in
    block order — exactly what one remap-cache line holds. Returns None
    when the sub-block is not remapped, and never returns a slot for a
    zero block (its data occupy no space).
    """
    if not 0 <= blk_off < len(super_entries):
        raise MetadataError("blk_off outside the super-block")
    target = super_entries[blk_off]
    target_range = target.range_of(sub_index)
    if target_range is None or target.zero:
        return None
    position = 0
    for off in range(blk_off):
        entry = super_entries[off]
        if entry.is_remapped and not entry.zero and entry.pointer == target.pointer:
            position += entry.occupied_slots()
    start, _cf = target_range
    for range_start, _range_cf in target.ranges():
        if range_start < start:
            position += 1
    return position


@dataclass
class RemapTable:
    """The full off-chip remap table: one entry per logical block.

    Backed by a dict so the 36 GB address space costs memory only for
    blocks that are actually remapped; absent blocks read as the identity
    entry (no remap). ``pointer_bits`` tracks the configured associativity
    for size accounting.
    """

    pointer_bits: int = 2
    _entries: Dict[int, RemapEntry] = field(default_factory=dict)
    #: Optional update observer (duck-typed ``on_set``/``on_clear``).
    #: Observers chain: :class:`~repro.core.columnar.ColumnarState` mirrors
    #: every authoritative update into its structured-array arena and
    #: forwards to the previous shadow (e.g. the
    #: :class:`~repro.resilience.checker.ShadowChecker` shadow copy).
    shadow: Optional[object] = field(default=None, compare=False, repr=False)

    def get(self, block_id: int) -> RemapEntry:
        entry = self._entries.get(block_id)
        return entry if entry is not None else _EMPTY_ENTRY

    def set(self, block_id: int, entry: RemapEntry) -> None:
        # Every entry self-validates in ``__post_init__``; re-validating
        # here would only re-check an already-accepted construction.
        if entry.is_remapped:
            self._entries[block_id] = entry
        else:
            self._entries.pop(block_id, None)
        if self.shadow is not None:
            self.shadow.on_set(block_id, entry)

    def clear(self, block_id: int) -> None:
        self._entries.pop(block_id, None)
        if self.shadow is not None:
            self.shadow.on_clear(block_id)

    def super_block_entries(
        self, super_block_id: int, blocks_per_super: int = 8
    ) -> List[RemapEntry]:
        """The remap-cache line: all entries of one super-block, in order."""
        base = super_block_id * blocks_per_super
        return [self.get(base + off) for off in range(blocks_per_super)]

    def remapped_blocks(self) -> List[int]:
        return sorted(self._entries.keys())

    def storage_bytes(self, total_blocks: int) -> int:
        """Table size if materialized: entry bits x total block count."""
        bits = RemapEntry.entry_bits(self.pointer_bits)
        return (total_blocks * bits + 7) // 8
