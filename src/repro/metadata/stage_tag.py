"""Stage tag array: the flexible metadata format (Fig. 5a).

One entry per stage-area physical block. An entry holds the super-block
tag (Rule 1: a physical block only stores sub-blocks of one super-block),
eight 8-bit *range slots*, 3-bit LRU and FIFO fields for the two-level
replacement policy, and a 16-bit MissCnt for the selective-commit cost
model. Total: 21 + 1 + 64 + 3 + 3 + 16 = 108 bits = 14 B, matching the
paper.

Each slot describes one contiguous, aligned, compressed range (Rule 2)
with a prefix code — the paper states the slot fits 8 bits across four
types but does not spell out the code, so we reconstruct the only prefix
code that fits all widths:

====== ======================================= ====================
bits   type                                    layout (8 bits)
====== ======================================= ====================
``1``  CF=1 range (one sub-block)              1 D BlkOff(3) SubOff(3)
``01`` CF=2 range (aligned pair)               01 D BlkOff(3) SubOff(2)
``001`` CF=4 range (aligned quad)              001 D BlkOff(3) SubOff(1)
``000`` special: empty or all-zero block       000 Z D BlkOff(3)
====== ======================================= ====================

SubOff counts aligned ranges, not raw sub-blocks: a CF=2 slot's SubOff of
``01`` means the second aligned pair, i.e. sub-blocks 2-3 (the paper's
H2-H3 example encodes exactly as ``01 0 111 01``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.common.errors import MetadataError

#: Slot byte value meaning "empty" (special type, Z=0, D=0, BlkOff=0).
EMPTY_SLOT = 0b000_00000

_TAG_BITS = 21
_LRU_BITS = 3
_FIFO_BITS = 3
_MISS_BITS = 16
ENTRY_BITS = _TAG_BITS + 1 + 8 * 8 + _LRU_BITS + _FIFO_BITS + _MISS_BITS


@dataclass(slots=True)
class RangeSlot:
    """One physical sub-block slot holding a compressed aligned range.

    ``cf`` in {1, 2, 4}; ``blk_off`` is the block within the super-block
    (0..7); ``sub_start`` is the first sub-block of the range inside that
    block, always a multiple of ``cf``. ``zero`` marks the all-zero-block
    special encoding, in which case the slot stores no data and covers the
    entire block (``cf``/``sub_start`` are ignored).
    """

    cf: int = 1
    dirty: bool = False
    blk_off: int = 0
    sub_start: int = 0
    zero: bool = False

    def __post_init__(self) -> None:
        if self.cf not in (1, 2, 4):
            raise MetadataError(f"invalid CF {self.cf}")
        if not 0 <= self.blk_off < 32:
            raise MetadataError(f"BlkOff {self.blk_off} out of range")
        if not self.zero:
            if not 0 <= self.sub_start < 32:
                raise MetadataError(f"SubOff {self.sub_start} out of range")
            if self.sub_start % self.cf != 0:
                raise MetadataError(
                    f"range start {self.sub_start} not aligned to CF {self.cf}"
                )

    def covers(self, blk_off: int, sub_index: int) -> bool:
        """Does this range contain ``sub_index`` of block ``blk_off``?"""
        if blk_off != self.blk_off:
            return False
        if self.zero:
            return True
        return self.sub_start <= sub_index < self.sub_start + self.cf

    @property
    def sub_blocks(self) -> Tuple[int, ...]:
        """The sub-block indices covered by this range.

        Empty for the all-zero encoding, which covers the whole block
        without storing anything (callers handle ``zero`` explicitly).
        """
        if self.zero:
            return ()
        return tuple(range(self.sub_start, self.sub_start + self.cf))

    # -- 8-bit prefix-code encoding ---------------------------------------
    def encode(self) -> int:
        if (not self.zero and self.sub_start >= 8) or self.blk_off >= 8:
            raise MetadataError(
                "the 8-bit slot encoding is defined for 8 sub-blocks per "
                "block and 8 blocks per super-block; wider geometries "
                "(Baryon-64B, Fig. 13b sweeps) are simulated only"
            )
        if self.zero:
            return (0b000 << 5) | (1 << 4) | (int(self.dirty) << 3) | self.blk_off
        d = int(self.dirty)
        if self.cf == 1:
            return (0b1 << 7) | (d << 6) | (self.blk_off << 3) | self.sub_start
        if self.cf == 2:
            return (0b01 << 6) | (d << 5) | (self.blk_off << 2) | (self.sub_start // 2)
        return (0b001 << 5) | (d << 4) | (self.blk_off << 1) | (self.sub_start // 4)

    @staticmethod
    def decode(byte: int) -> Optional["RangeSlot"]:
        """Decode an 8-bit slot; None for the empty encoding."""
        if not 0 <= byte <= 0xFF:
            raise MetadataError(f"slot byte {byte} out of range")
        if byte >> 7 == 1:
            return RangeSlot(
                cf=1,
                dirty=bool((byte >> 6) & 1),
                blk_off=(byte >> 3) & 0x7,
                sub_start=byte & 0x7,
            )
        if byte >> 6 == 0b01:
            return RangeSlot(
                cf=2,
                dirty=bool((byte >> 5) & 1),
                blk_off=(byte >> 2) & 0x7,
                sub_start=(byte & 0x3) * 2,
            )
        if byte >> 5 == 0b001:
            return RangeSlot(
                cf=4,
                dirty=bool((byte >> 4) & 1),
                blk_off=(byte >> 1) & 0x7,
                sub_start=(byte & 0x1) * 4,
            )
        # Special type: Z bit selects zero-block vs empty.
        if (byte >> 4) & 1:
            return RangeSlot(
                cf=1,
                dirty=bool((byte >> 3) & 1),
                blk_off=byte & 0x7,
                zero=True,
            )
        if byte != EMPTY_SLOT:
            raise MetadataError(f"non-canonical empty slot {byte:#010b}")
        return None


@dataclass(slots=True)
class StageTagEntry:
    """One stage tag array entry: a staged physical block's full metadata."""

    tag: int = 0
    valid: bool = False
    slots: List[Optional[RangeSlot]] = field(default_factory=lambda: [None] * 8)
    lru: int = 0
    fifo: int = 0
    miss_count: int = 0

    def __post_init__(self) -> None:
        if not self.slots:
            raise MetadataError("entry must have at least one slot")

    # -- queries -----------------------------------------------------------
    def find_sub_block(self, blk_off: int, sub_index: int) -> Optional[int]:
        """Slot index holding ``sub_index`` of block ``blk_off``, if staged."""
        # ``covers`` inlined: this is the innermost loop of the stage tag probe.
        for i, slot in enumerate(self.slots):
            if (
                slot is not None
                and slot.blk_off == blk_off
                and (slot.zero or slot.sub_start <= sub_index < slot.sub_start + slot.cf)
            ):
                return i
        return None

    def slots_of_block(self, blk_off: int) -> List[int]:
        """All slot indices holding ranges of block ``blk_off``."""
        return [
            i
            for i, slot in enumerate(self.slots)
            if slot is not None and slot.blk_off == blk_off
        ]

    def free_slot(self) -> Optional[int]:
        """Lowest empty slot index, or None when the block is full."""
        for i, slot in enumerate(self.slots):
            if slot is None:
                return i
        return None

    def occupancy(self) -> int:
        return sum(1 for slot in self.slots if slot is not None)

    def blocks_present(self) -> List[int]:
        """Distinct BlkOffs with at least one staged range."""
        return sorted({s.blk_off for s in self.slots if s is not None})

    def dirty_sub_block_count(self) -> int:
        """#Dirty term of the commit cost model: dirty sub-blocks staged."""
        total = 0
        for slot in self.slots:
            if slot is not None and slot.dirty and not slot.zero:
                total += slot.cf
        return total

    # -- bit-exact encoding -------------------------------------------------
    def encode(self) -> int:
        if len(self.slots) != 8:
            raise MetadataError("the 108-bit encoding is defined for 8 slots")
        if not 0 <= self.tag < (1 << _TAG_BITS):
            raise MetadataError(f"tag {self.tag} exceeds {_TAG_BITS} bits")
        if not 0 <= self.miss_count < (1 << _MISS_BITS):
            raise MetadataError("MissCnt overflow")
        if not 0 <= self.lru < (1 << _LRU_BITS) or not 0 <= self.fifo < (1 << _FIFO_BITS):
            raise MetadataError("LRU/FIFO field overflow")
        value = self.tag
        value = (value << 1) | int(self.valid)
        for slot in self.slots:
            value = (value << 8) | (EMPTY_SLOT if slot is None else slot.encode())
        value = (value << _LRU_BITS) | self.lru
        value = (value << _FIFO_BITS) | self.fifo
        value = (value << _MISS_BITS) | self.miss_count
        return value

    @staticmethod
    def decode(value: int) -> "StageTagEntry":
        """Decode the canonical 108-bit entry (8-slot geometry only)."""
        if not 0 <= value < (1 << ENTRY_BITS):
            raise MetadataError("encoded entry exceeds 108 bits")
        miss = value & ((1 << _MISS_BITS) - 1)
        value >>= _MISS_BITS
        fifo = value & ((1 << _FIFO_BITS) - 1)
        value >>= _FIFO_BITS
        lru = value & ((1 << _LRU_BITS) - 1)
        value >>= _LRU_BITS
        slots: List[Optional[RangeSlot]] = []
        for i in range(8):
            byte = (value >> (8 * (7 - i))) & 0xFF
            slots.append(RangeSlot.decode(byte))
        value >>= 64
        valid = bool(value & 1)
        tag = value >> 1
        return StageTagEntry(
            tag=tag, valid=valid, slots=slots, lru=lru, fifo=fifo, miss_count=miss
        )


class StageTagArray:
    """The on-chip stage tag array: ``num_sets`` x ``ways`` entries.

    Entry/stage-block correspondence is one-to-one, so a tag hit/miss here
    *is* a stage-area hit/miss (Sec. III-D). Matching is associative by
    super-block tag; multiple ways may stage the same super-block (a
    super-block's hot data can span several physical blocks).
    """

    def __init__(self, num_sets: int, ways: int, slots_per_entry: int = 8) -> None:
        self.num_sets = num_sets
        self.ways = ways
        self.slots_per_entry = slots_per_entry
        self.entries: List[List[StageTagEntry]] = [
            [
                StageTagEntry(slots=[None] * slots_per_entry)
                for _ in range(ways)
            ]
            for _ in range(num_sets)
        ]

    def lookup(self, set_index: int, tag: int) -> List[Tuple[int, StageTagEntry]]:
        """All valid ways of ``set_index`` whose tag matches."""
        return [
            (way, entry)
            for way, entry in enumerate(self.entries[set_index])
            if entry.valid and entry.tag == tag
        ]

    def entry(self, set_index: int, way: int) -> StageTagEntry:
        return self.entries[set_index][way]

    def invalid_way(self, set_index: int) -> Optional[int]:
        for way, entry in enumerate(self.entries[set_index]):
            if not entry.valid:
                return way
        return None

    def storage_bytes(self) -> int:
        """Total SRAM budget (14 B per entry at the paper's geometry,
        giving 448 kB for a 64 MB stage area; wider geometries scale the
        per-slot field linearly)."""
        bits = ENTRY_BITS + 8 * (self.slots_per_entry - 8)
        return self.num_sets * self.ways * ((bits + 7) // 8)
