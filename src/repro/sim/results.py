"""Simulation result container and derived metrics."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict

from repro.devices.energy import EnergyReport


@dataclass
class SimResult:
    """Measured outcome of one simulation run (post-warmup window).

    ``bandwidth_bloat`` is Fig. 11's metric: total fast-memory traffic
    (fills, writebacks, migrations, metadata) divided by the useful demand
    traffic delivered to the LLC. ``serve_rate`` is the fraction of
    memory-level accesses answered by the fast memory.
    """

    name: str = ""
    design: str = ""
    instructions: int = 0
    cycles: float = 0.0
    memory_accesses: int = 0
    llc_misses: int = 0
    served_fast: int = 0
    fast_traffic_bytes: int = 0
    slow_traffic_bytes: int = 0
    useful_bytes: int = 0
    case_counts: Dict[str, int] = field(default_factory=dict)
    energy: EnergyReport | None = None
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def serve_rate(self) -> float:
        if not self.memory_accesses:
            return 0.0
        return self.served_fast / self.memory_accesses

    @property
    def bandwidth_bloat(self) -> float:
        if not self.useful_bytes:
            return 0.0
        return self.fast_traffic_bytes / self.useful_bytes

    @property
    def slow_bloat(self) -> float:
        if not self.useful_bytes:
            return 0.0
        return self.slow_traffic_bytes / self.useful_bytes

    def speedup_over(self, other: "SimResult") -> float:
        """IPC ratio of this run over ``other`` (same trace assumed)."""
        if other.ipc == 0.0:
            return 0.0
        return self.ipc / other.ipc

    # -- serialization -------------------------------------------------------
    # The parallel matrix runner moves results across process boundaries as
    # plain dicts (JSON-compatible, independent of pickle implementation
    # details), so a result survives any transport a sweep harness uses.

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-compatible snapshot; inverse of :meth:`from_dict`."""
        payload = asdict(self)
        payload["energy"] = asdict(self.energy) if self.energy else None
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SimResult":
        """Rebuild a result serialized with :meth:`to_dict`."""
        data = dict(payload)
        energy = data.pop("energy", None)
        return cls(
            energy=EnergyReport(**energy) if energy else None,
            **data,
        )

    def summary(self) -> Dict[str, float]:
        return {
            "ipc": self.ipc,
            "serve_rate": self.serve_rate,
            "bandwidth_bloat": self.bandwidth_bloat,
            "fast_traffic_mb": self.fast_traffic_bytes / (1 << 20),
            "slow_traffic_mb": self.slow_traffic_bytes / (1 << 20),
            "energy_j": self.energy.total_j if self.energy else 0.0,
        }
