"""Trace-driven system simulation: cores + cache hierarchy + memory system.

This replaces the paper's zsim substrate. The model:

* the workload trace carries, for each memory access, the number of
  non-memory instructions since the previous access (``igaps``) and the
  issuing core;
* non-memory instructions retire at ``base_cpi``; the SRAM hierarchy adds
  its lookup latencies; LLC misses go to the hybrid memory controller and
  their latency is charged divided by the memory-level-parallelism factor
  (an analytic stand-in for an OoO core's overlap);
* dirty LLC writebacks and the memory-to-LLC prefetch installs round-trip
  through the controller/hierarchy exactly like real traffic;
* a warmup fraction of the trace runs before measurement starts.

Outputs (:class:`~repro.sim.results.SimResult`) carry everything the
paper's figures need: IPC, fast-memory serve rate, bandwidth bloat factor,
per-case access counts and the energy report.
"""

from repro.sim.results import SimResult
from repro.sim.system import SystemSimulator

__all__ = ["SimResult", "SystemSimulator"]
