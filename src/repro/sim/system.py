"""The system simulator: drive a trace through caches into a controller."""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Optional

from repro.cache.hierarchy import CacheHierarchy
from repro.common.config import SimulationConfig
from repro.devices.energy import EnergyModel
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import NULL_PROFILER, PhaseProfiler
from repro.sim.results import SimResult


class SystemSimulator:
    """Runs one (controller, trace) pair and produces a :class:`SimResult`.

    The controller is any object with the
    ``access(addr, is_write, now) -> AccessResult`` duck type (Baryon or a
    baseline). A fresh :class:`~repro.cache.hierarchy.CacheHierarchy` is
    built per simulator unless one is injected.

    Observability (all optional, all free when absent):

    ``metrics``
        A :class:`~repro.obs.metrics.MetricsRegistry`; the simulator
        registers a memory-latency histogram plus windowed serve-rate and
        IPC time series sampled every ``metrics_window`` accesses.
    ``profiler``
        A :class:`~repro.obs.profiler.PhaseProfiler`; wall-clock is split
        into warmup/measured phases and cache-hierarchy vs controller
        time, with instruction counts per phase.
    """

    def __init__(
        self,
        controller,
        config: Optional[SimulationConfig] = None,
        hierarchy: Optional[CacheHierarchy] = None,
        metrics: Optional[MetricsRegistry] = None,
        profiler: Optional[PhaseProfiler] = None,
        metrics_window: int = 1000,
    ) -> None:
        self.controller = controller
        self.config = config or SimulationConfig()
        self.hierarchy = hierarchy or CacheHierarchy(self.config.hierarchy)
        self.profiler = profiler or NULL_PROFILER
        self.metrics = metrics
        self.cycles = 0.0
        self.instructions = 0
        if metrics is not None:
            self._h_latency = metrics.histogram(
                "repro_mem_latency_cycles",
                help="memory-level demand access latency (cycles)",
            )
            self._ts_serve = metrics.series(
                "repro_serve_rate",
                help="running fast-memory serve rate",
                every=metrics_window,
            )
            self._ts_ipc = metrics.series(
                "repro_ipc", help="running instructions per cycle",
                every=metrics_window,
            )

    def run(self, trace, name: str = "", design: str = "") -> SimResult:
        """Simulate the whole trace; measure after the warmup fraction.

        The measured window is ``[warmup_end, n)``: the snapshot is taken
        just before access ``warmup_end`` runs, or after the loop when
        warmup covers the whole (possibly empty) trace — so the window is
        always well-defined, at worst empty.
        """
        n = len(trace)
        warmup_end = min(n, int(n * self.config.warmup_fraction))
        mark: Optional[Dict[str, float]] = None

        addrs = trace.addrs
        writes = trace.writes
        igaps = trace.igaps
        cores = trace.cores
        mlp = self.config.memory_level_parallelism
        base_cpi = self.config.base_cpi
        # The trace interleaves all cores' streams: wall-clock compute
        # time per access is the per-thread time over the core count.
        threads = max(1, self.config.hierarchy.cores)

        profiling = self.profiler.enabled
        observing = self.metrics is not None
        served_fast = 0
        mem_seen = 0
        wall_start = perf_counter() if profiling else 0.0

        for i in range(n):
            if i == warmup_end:
                mark = self._snapshot()
                if profiling:
                    self.profiler.add("warmup", perf_counter() - wall_start, calls=i)
                    self.profiler.count("warmup_instructions", self.instructions)
                    wall_start = perf_counter()
            gap = int(igaps[i])
            self.instructions += gap + 1
            self.cycles += gap * base_cpi / threads

            addr = int(addrs[i])
            is_write = bool(writes[i])
            if profiling:
                t0 = perf_counter()
                result = self.hierarchy.access(addr, is_write, int(cores[i]))
                self.profiler.add("hierarchy", perf_counter() - t0)
            else:
                result = self.hierarchy.access(addr, is_write, int(cores[i]))
            self.cycles += result.latency_cycles / threads
            if result.llc_miss:
                if profiling:
                    t0 = perf_counter()
                    mem = self.controller.access(addr, is_write, self.cycles)
                    self.profiler.add("controller", perf_counter() - t0)
                else:
                    mem = self.controller.access(addr, is_write, self.cycles)
                if not is_write:
                    # Writes are posted; only read latency stalls the core.
                    self.cycles += mem.latency_cycles / mlp
                if observing:
                    self._h_latency.observe(mem.latency_cycles)
                    mem_seen += 1
                    if mem.served_fast:
                        served_fast += 1
                for line_addr in mem.prefetched_lines:
                    for wb in self.hierarchy.install_llc(line_addr):
                        self.controller.access(wb, True, self.cycles)
            for wb in result.writebacks:
                self.controller.access(wb, True, self.cycles)
            if observing:
                self._ts_serve.tick(served_fast / mem_seen if mem_seen else 0.0)
                self._ts_ipc.tick(
                    self.instructions / self.cycles if self.cycles else 0.0
                )

        tracker = getattr(self.controller, "tracker", None)
        if tracker is not None:
            tracker.finalize()

        if mark is None:
            # Warmup covered the whole trace (or it was empty): the
            # measured window is empty and every delta below is zero.
            mark = self._snapshot()
        if profiling:
            phase = "measured" if warmup_end < n else "warmup"
            self.profiler.add(phase, perf_counter() - wall_start, calls=n - warmup_end)
            self.profiler.count(
                "measured_instructions",
                self.instructions - self.profiler.counters.get("warmup_instructions", 0),
            )
            self.profiler.count("accesses", n)
        end = self._snapshot()
        ctrl_stats = self.controller.stats
        cases = {
            key[len("case_"):]: int(end.get(key, 0) - mark.get(key, 0))
            for key in end
            if key.startswith("case_")
        }
        energy = EnergyModel(self.controller.devices.timings).report(
            self.controller.devices.fast, self.controller.devices.slow
        )
        return SimResult(
            name=name or getattr(trace, "name", ""),
            design=design or getattr(self.controller, "name", type(self.controller).__name__),
            instructions=int(end["instructions"] - mark["instructions"]),
            cycles=end["cycles"] - mark["cycles"],
            memory_accesses=int(end["mem_accesses"] - mark["mem_accesses"]),
            llc_misses=int(end["llc_misses"] - mark["llc_misses"]),
            served_fast=int(end["served_fast"] - mark["served_fast"]),
            fast_traffic_bytes=int(end["fast_bytes"] - mark["fast_bytes"]),
            slow_traffic_bytes=int(end["slow_bytes"] - mark["slow_bytes"]),
            useful_bytes=int(end["useful_bytes"] - mark["useful_bytes"]),
            case_counts=cases,
            energy=energy,
            extra={
                "llc_miss_rate": self.hierarchy.llc_miss_rate,
                "ctrl_commits": float(ctrl_stats.get("commits")),
            },
        )

    def _snapshot(self) -> Dict[str, float]:
        devices = self.controller.devices
        stats = self.controller.stats
        snap: Dict[str, float] = {
            "instructions": float(self.instructions),
            "cycles": self.cycles,
            "mem_accesses": float(stats.get("accesses")),
            "served_fast": float(stats.get("served_fast")),
            "fast_bytes": float(devices.fast.total_bytes),
            "slow_bytes": float(devices.slow.total_bytes),
            "llc_misses": float(self.hierarchy.llc.stats.get("misses")),
            "useful_bytes": float(
                self.hierarchy.llc.stats.get("misses") * 64
            ),
        }
        for key, value in stats.as_dict().items():
            if key.startswith("case_"):
                snap[key] = float(value)
        return snap
