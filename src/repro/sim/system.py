"""The system simulator: drive a trace through caches into a controller."""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Optional, Tuple

from repro.cache.hierarchy import CacheHierarchy
from repro.common.config import SimulationConfig
from repro.core.columnar import CLS_DECLINE_STAGING_FETCH, DECLINE_REASONS
from repro.devices.energy import EnergyModel
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import NULL_PROFILER, PhaseProfiler
from repro.obs.spans import NULL_SPANS, SpanTracer
from repro.sim.results import SimResult


class SystemSimulator:
    """Runs one (controller, trace) pair and produces a :class:`SimResult`.

    The controller is any object with the
    ``access(addr, is_write, now) -> AccessResult`` duck type (Baryon or a
    baseline). A fresh :class:`~repro.cache.hierarchy.CacheHierarchy` is
    built per simulator unless one is injected.

    Two interchangeable per-access loops drive the trace:

    ``scalar``
        The original reference loop, kept verbatim: one
        :class:`~repro.cache.hierarchy.HierarchyResult` per access,
        per-access metric ticks, per-access profiling.
    ``batched`` (default)
        The hot-path loop: trace arrays are converted to plain Python
        lists once, the hierarchy runs through the allocation-free
        :meth:`~repro.cache.hierarchy.CacheHierarchy.access_fast`, and
        observing/profiling hooks fire on interval samples instead of
        every access. Simulation state and every :class:`SimResult`
        counter are bit-identical to the scalar loop (the float
        accumulation order of ``cycles`` is preserved operation for
        operation); ``tests/test_hotpath_equivalence.py`` asserts this.

    When the controller advertises ``supports_batching`` (no fault
    injection, recovery, shadow checker, phase tracker or event tracing
    attached) and neither profiling nor metrics are active, the batched
    loop additionally *defers* the timing of safe LLC-miss reads: runs of
    consecutive misses are classified and state-applied eagerly through
    ``BaryonController.access_deferred`` and their channel timing replays
    in one ``BaryonController.access_batch`` call. Any unsafe access
    (writes, staging fetches, evictions) flushes the pending run and
    falls back to the scalar ``access`` call, so results — cycles,
    counters, energy — stay bit-identical to both reference loops.

    Observability (all optional, all free when absent):

    ``metrics``
        A :class:`~repro.obs.metrics.MetricsRegistry`; the simulator
        registers a memory-latency histogram plus windowed serve-rate and
        IPC time series sampled every ``metrics_window`` accesses.
    ``profiler``
        A :class:`~repro.obs.profiler.PhaseProfiler`; wall-clock is split
        into warmup/measured phases and cache-hierarchy vs controller
        time, with instruction counts per phase. The batched loop samples
        the hierarchy/controller timers one access in 64.
    ``spans``
        A :class:`~repro.obs.spans.SpanTracer`; the run is wrapped in a
        ``sim.run`` span with ``sim.warmup``/``sim.measured`` child
        phase spans (batched loop; the scalar reference loop records the
        run span only).
    ``progress``
        A ``callable(done, total)`` invoked every ``progress_every``
        accesses (and at each phase boundary). With a callback attached
        the batched loop runs in ``progress_every``-sized chunks — the
        chunking only changes where local accumulators are written back,
        so results stay bit-identical to the unchunked loop.
    """

    def __init__(
        self,
        controller,
        config: Optional[SimulationConfig] = None,
        hierarchy: Optional[CacheHierarchy] = None,
        metrics: Optional[MetricsRegistry] = None,
        profiler: Optional[PhaseProfiler] = None,
        metrics_window: int = 1000,
        spans: Optional[SpanTracer] = None,
        progress=None,
        progress_every: int = 2048,
    ) -> None:
        self.controller = controller
        self.config = config or SimulationConfig()
        self.hierarchy = hierarchy or CacheHierarchy(self.config.hierarchy)
        self.profiler = profiler or NULL_PROFILER
        self.metrics = metrics
        self.spans = spans or NULL_SPANS
        self._progress = progress
        self._progress_every = max(1, progress_every)
        self._run_span = None
        self._deferred = False
        self._classifier = None
        self._server = None
        self._fast_path = None
        self.cycles = 0.0
        self.instructions = 0
        self._served_fast = 0
        self._mem_seen = 0
        if metrics is not None:
            self._h_latency = metrics.histogram(
                "repro_mem_latency_cycles",
                help="memory-level demand access latency (cycles)",
            )
            self._ts_serve = metrics.series(
                "repro_serve_rate",
                help="running fast-memory serve rate",
                every=metrics_window,
            )
            self._ts_ipc = metrics.series(
                "repro_ipc", help="running instructions per cycle",
                every=metrics_window,
            )

    def run(
        self, trace, name: str = "", design: str = "", *, scalar: bool = False
    ) -> SimResult:
        """Simulate the whole trace; measure after the warmup fraction.

        The measured window is ``[warmup_end, n)``: the snapshot is taken
        just before access ``warmup_end`` runs, or after the loop when
        warmup covers the whole (possibly empty) trace — so the window is
        always well-defined, at worst empty. ``scalar=True`` selects the
        reference per-access loop instead of the batched hot path.
        """
        n = len(trace)
        warmup_end = min(n, int(n * self.config.warmup_fraction))
        # The deferred batch path needs full custody of the per-access
        # flow: no per-access profiling/metrics hooks, and a controller
        # with no per-access observers of its own.
        self._deferred = (
            not scalar
            and not self.profiler.enabled
            and self.metrics is None
            and getattr(self.controller, "supports_batching", False)
        )
        spans = self.spans
        if spans.enabled:
            self._run_span = spans.start(
                "sim.run", design=design or getattr(self.controller, "name", ""),
                workload=name, accesses=n, warmup=warmup_end,
            )
        try:
            if scalar:
                mark, wall_start = self._run_scalar(trace, n, warmup_end)
            else:
                mark, wall_start = self._run_batched(trace, n, warmup_end)
            return self._finalize(
                trace, name, design, n, warmup_end, mark, wall_start
            )
        finally:
            if self._run_span is not None:
                spans.end(
                    self._run_span,
                    instructions=self.instructions, cycles=self.cycles,
                )
                self._run_span = None

    # ----------------------------------------------------- reference loop
    def _run_scalar(
        self, trace, n: int, warmup_end: int
    ) -> Tuple[Optional[Dict[str, float]], float]:
        """The original per-access loop, kept verbatim as the equivalence
        reference for the batched hot path."""
        mark: Optional[Dict[str, float]] = None

        addrs = trace.addrs
        writes = trace.writes
        igaps = trace.igaps
        cores = trace.cores
        mlp = self.config.memory_level_parallelism
        base_cpi = self.config.base_cpi
        # The trace interleaves all cores' streams: wall-clock compute
        # time per access is the per-thread time over the core count.
        threads = max(1, self.config.hierarchy.cores)

        profiling = self.profiler.enabled
        observing = self.metrics is not None
        progress = self._progress
        progress_stride = self._progress_every
        served_fast = 0
        mem_seen = 0
        wall_start = perf_counter() if profiling else 0.0

        for i in range(n):
            if i == warmup_end:
                mark = self._snapshot()
                if profiling:
                    self.profiler.add("warmup", perf_counter() - wall_start, calls=i)
                    self.profiler.count("warmup_instructions", self.instructions)
                    wall_start = perf_counter()
            gap = int(igaps[i])
            self.instructions += gap + 1
            self.cycles += gap * base_cpi / threads

            addr = int(addrs[i])
            is_write = bool(writes[i])
            if profiling:
                t0 = perf_counter()
                result = self.hierarchy.access(addr, is_write, int(cores[i]))
                self.profiler.add("hierarchy", perf_counter() - t0)
            else:
                result = self.hierarchy.access(addr, is_write, int(cores[i]))
            self.cycles += result.latency_cycles / threads
            if result.llc_miss:
                if profiling:
                    t0 = perf_counter()
                    mem = self.controller.access(addr, is_write, self.cycles)
                    self.profiler.add("controller", perf_counter() - t0)
                else:
                    mem = self.controller.access(addr, is_write, self.cycles)
                if not is_write:
                    # Writes are posted; only read latency stalls the core.
                    self.cycles += mem.latency_cycles / mlp
                if observing:
                    self._h_latency.observe(mem.latency_cycles)
                    mem_seen += 1
                    if mem.served_fast:
                        served_fast += 1
                for line_addr in mem.prefetched_lines:
                    for wb in self.hierarchy.install_llc(line_addr):
                        self.controller.access(wb, True, self.cycles)
            for wb in result.writebacks:
                self.controller.access(wb, True, self.cycles)
            if observing:
                self._ts_serve.tick(served_fast / mem_seen if mem_seen else 0.0)
                self._ts_ipc.tick(
                    self.instructions / self.cycles if self.cycles else 0.0
                )
            if progress is not None and not ((i + 1) % progress_stride):
                progress(i + 1, n)

        self._served_fast = served_fast
        self._mem_seen = mem_seen
        if progress is not None and n % progress_stride:
            progress(n, n)
        return mark, wall_start

    # ----------------------------------------------------- batched hot path
    def _run_batched(
        self, trace, n: int, warmup_end: int
    ) -> Tuple[Optional[Dict[str, float]], float]:
        """Segmented hot-path loop: warmup span, boundary snapshot,
        measured span. State effects are bit-identical to the scalar
        loop (see :meth:`run`)."""
        mark: Optional[Dict[str, float]] = None
        profiling = self.profiler.enabled
        self._served_fast = 0
        self._mem_seen = 0

        # One bulk conversion: list indexing beats numpy scalar reads in
        # a Python loop, and ``tolist`` yields native int/bool objects.
        addrs = trace.addrs
        writes = trace.writes
        igaps = trace.igaps
        cores = trace.cores
        # Bulk verdicts for the deferred path: the classifier keeps the
        # numpy trace arrays and gather-classifies chunks of future
        # indices ahead of the loop (see repro.core.columnar). Controllers
        # without one (or non-numpy traces) classify per op as before.
        make = getattr(self.controller, "make_run_classifier", None)
        self._classifier = (
            make(addrs, writes) if (self._deferred and make is not None) else None
        )
        # The inlined serve/flush closure pair (tallied counters, inline
        # LRU/row-buffer transitions); None falls back to access_deferred.
        # The server holds the classifier's dirty set so coded verdicts
        # are revalidated against post-gather mutations inside serve().
        make_server = getattr(self.controller, "make_deferred_server", None)
        self._server = (
            make_server(
                None if self._classifier is None else self._classifier.dirty_blocks
            )
            if (self._deferred and make_server is not None)
            else None
        )
        # Closure form of the hierarchy walk (attribute binds hoisted,
        # tallied hit counters); None falls back to the bound methods.
        self._fast_path = self.hierarchy.make_fast_path() if self._deferred else None
        addrs = addrs.tolist() if hasattr(addrs, "tolist") else list(addrs)
        writes = writes.tolist() if hasattr(writes, "tolist") else list(writes)
        igaps = igaps.tolist() if hasattr(igaps, "tolist") else list(igaps)
        cores = cores.tolist() if hasattr(cores, "tolist") else list(cores)

        spans = self.spans
        wall_start = perf_counter() if profiling else 0.0
        phase_span = (
            spans.start("sim.warmup", parent=self._run_span, accesses=warmup_end)
            if spans.enabled and warmup_end else None
        )
        self._segment(0, warmup_end, addrs, writes, igaps, cores, n)
        if phase_span is not None:
            spans.end(phase_span)
        if warmup_end < n:
            mark = self._snapshot()
            if profiling:
                self.profiler.add(
                    "warmup", perf_counter() - wall_start, calls=warmup_end
                )
                self.profiler.count("warmup_instructions", self.instructions)
                wall_start = perf_counter()
            phase_span = (
                spans.start(
                    "sim.measured", parent=self._run_span,
                    accesses=n - warmup_end,
                )
                if spans.enabled else None
            )
            self._segment(warmup_end, n, addrs, writes, igaps, cores, n)
            if phase_span is not None:
                spans.end(phase_span)
        return mark, wall_start

    def _segment(
        self, start: int, stop: int, addrs, writes, igaps, cores, total: int
    ) -> None:
        """One warmup/measured segment, chunked only when a progress
        callback is attached (state write-back between chunks is the
        only difference, so counters stay bit-identical)."""
        progress = self._progress
        if progress is None:
            self._batched_span(start, stop, addrs, writes, igaps, cores)
            return
        stride = self._progress_every
        pos = start
        while pos < stop:
            chunk_end = min(stop, pos + stride)
            self._batched_span(pos, chunk_end, addrs, writes, igaps, cores)
            pos = chunk_end
            progress(pos, total)

    def _batched_span(
        self, start: int, stop: int, addrs, writes, igaps, cores
    ) -> None:
        """Run accesses ``[start, stop)`` through the allocation-free path.

        The float accumulation into ``cycles`` keeps the scalar loop's
        operation order exactly: the only skipped additions are ``+ 0.0``
        terms (zero instruction gaps), which cannot change a non-negative
        accumulator bit pattern, and the precomputed L1 quotient equals
        the per-access division bit for bit.
        """
        if start >= stop:
            return
        if self._deferred:
            self._deferred_span(start, stop, addrs, writes, igaps, cores)
            return
        cfg = self.config
        base_cpi = cfg.base_cpi
        mlp = cfg.memory_level_parallelism
        threads = max(1, cfg.hierarchy.cores)
        hierarchy = self.hierarchy
        access_fast = hierarchy.access_fast
        install_fast = hierarchy.install_llc_fast
        ctrl_access = self.controller.access
        l1_div = hierarchy.config.l1d.latency_cycles / threads
        profiler = self.profiler
        profiling = profiler.enabled
        observing = self.metrics is not None

        cycles = self.cycles
        instructions = self.instructions
        served_fast = self._served_fast
        mem_seen = self._mem_seen
        if observing:
            ts_serve = self._ts_serve
            ts_ipc = self._ts_ipc
            observe_latency = self._h_latency.observe
            serve_ticks = ts_serve.ticks
            due_serve = ts_serve.next_due()
            ipc_ticks = ts_ipc.ticks
            due_ipc = ts_ipc.next_due()

        for i in range(start, stop):
            gap = igaps[i]
            instructions += gap + 1
            if gap:
                cycles += gap * base_cpi / threads

            addr = addrs[i]
            is_write = writes[i]
            if profiling and not (i & 63):
                t0 = perf_counter()
                outcome = access_fast(addr, is_write, cores[i])
                profiler.add("hierarchy", perf_counter() - t0)
            else:
                outcome = access_fast(addr, is_write, cores[i])
            if outcome is None:
                cycles += l1_div
            else:
                cycles += outcome[1] / threads
                if outcome[2]:  # LLC miss: the controller serves it.
                    if profiling and not (i & 63):
                        t0 = perf_counter()
                        mem = ctrl_access(addr, is_write, cycles)
                        profiler.add("controller", perf_counter() - t0)
                    else:
                        mem = ctrl_access(addr, is_write, cycles)
                    if not is_write:
                        # Writes are posted; only reads stall the core.
                        cycles += mem.latency_cycles / mlp
                    if observing:
                        observe_latency(mem.latency_cycles)
                        mem_seen += 1
                        if mem.served_fast:
                            served_fast += 1
                    pls = mem.prefetched_lines
                    if pls:
                        for line_addr in pls:
                            wb = install_fast(line_addr)
                            if wb:
                                ctrl_access(wb, True, cycles)
                wbs = outcome[3]
                if wbs is not None:
                    for wb in wbs:
                        ctrl_access(wb, True, cycles)
            if observing:
                serve_ticks += 1
                if serve_ticks == due_serve:
                    ts_serve.sample_at(
                        serve_ticks, served_fast / mem_seen if mem_seen else 0.0
                    )
                    due_serve = ts_serve.next_due()
                ipc_ticks += 1
                if ipc_ticks == due_ipc:
                    ts_ipc.sample_at(
                        ipc_ticks, instructions / cycles if cycles else 0.0
                    )
                    due_ipc = ts_ipc.next_due()

        self.cycles = cycles
        self.instructions = instructions
        self._served_fast = served_fast
        self._mem_seen = mem_seen
        if observing:
            ts_serve.advance_to(serve_ticks)
            ts_ipc.advance_to(ipc_ticks)

    def _deferred_span(
        self, start: int, stop: int, addrs, writes, igaps, cores
    ) -> None:
        """The deferred-timing variant of :meth:`_batched_span`.

        Safe LLC misses — reads, write hits that provably do not
        overflow, and dirty writebacks of batch-safe blocks — are
        state-applied eagerly (in trace order) and their op records
        accumulate in ``ops`` together with the interleaved core-side
        cycle increments; one ``access_batch`` call replays the run,
        evolving the channel pools and the ``cycles`` accumulator in the
        scalar loop's exact float operation order. Unsafe accesses —
        staging cases, overflowing or zero-breaking writes, block-filling
        writebacks — first flush the pending run (so ``cycles`` is
        current) and then take the scalar ``controller.access`` call with
        that clock, exactly as the plain batched loop would.

        With a run classifier attached, membership verdicts for chunks of
        future trace indices are precomputed in one numpy gather pass:
        accepted verdicts route through the lean ``access_classified``
        serve, pre-resolved declines skip classification entirely (the
        per-reason decline counter is charged here), and verdicts whose
        block mutated since the gather (``dirty`` set) or that need the
        oracle's per-op probes fall back to ``access_deferred``. Either
        way every op is still served in exact trace order, so state and
        cycles stay bit-identical.
        """
        cfg = self.config
        base_cpi = cfg.base_cpi
        mlp = cfg.memory_level_parallelism
        threads = max(1, cfg.hierarchy.cores)
        hierarchy = self.hierarchy
        fast_path = self._fast_path
        if fast_path is not None:
            access_fast, install_fast, hier_flush = fast_path
        else:
            access_fast = hierarchy.access_fast
            install_fast = hierarchy.install_llc_fast
            hier_flush = None
        controller = self.controller
        ctrl_access = controller.access
        ctrl_deferred = controller.access_deferred
        ctrl_batch = controller.access_batch
        l1_div = hierarchy.config.l1d.latency_cycles / threads

        server = self._server
        if server is not None:
            serve, server_flush, ctrl_batch = server
        else:
            serve = server_flush = None
        classifier = self._classifier
        if classifier is not None:
            declines = controller.deferred_declines
            reason_of = DECLINE_REASONS
            sf_code = CLS_DECLINE_STAGING_FETCH
            dirty = classifier.dirty_blocks
            block_size = classifier.block_size
            chunk = classifier.chunk
            codes = None
            cls_base = cls_end = start

        cycles = self.cycles
        instructions = self.instructions
        ops = []
        append = ops.append
        # zip over list slices: one C-level iteration replaces four
        # per-element list index reads in the hottest Python loop.
        i = start - 1
        for addr, is_write, gap, core in zip(
            addrs[start:stop], writes[start:stop],
            igaps[start:stop], cores[start:stop],
        ):
            i += 1
            instructions += gap + 1
            if gap:
                g = gap * base_cpi / threads
                if ops:
                    append(g)
                else:
                    cycles += g
            outcome = access_fast(addr, is_write, core)
            if outcome is None:
                if ops:
                    append(l1_div)
                else:
                    cycles += l1_div
                continue
            h = outcome[1] / threads
            if ops:
                append(h)
            else:
                cycles += h
            if outcome[2]:  # LLC miss: the controller serves it.
                if serve is None:
                    op = ctrl_deferred(addr, is_write)
                elif classifier is None:
                    op = serve(addr, is_write, 0, 0)
                else:
                    if i >= cls_end:
                        cls_base = i
                        cls_end = min(stop, i + chunk)
                        codes, auxes = classifier.classify(cls_base, cls_end)
                    code = codes[i - cls_base]
                    if code > 0:
                        # serve() rechecks the dirty set itself (it already
                        # has block_id in hand) before trusting the verdict.
                        op = serve(addr, is_write, code, auxes[i - cls_base])
                    elif code == 0:
                        op = serve(addr, is_write, 0, 0)
                    elif code == sf_code or addr // block_size in dirty:
                        # Staging fetches serve inline (the closure runs
                        # the real fetch-and-stage with its transfers
                        # captured for replay); stale pre-resolved
                        # declines re-classify inline the same way.
                        op = serve(addr, is_write, 0, 0)
                    else:
                        declines[reason_of[code]] += 1
                        op = None
                if op is not None:
                    append(op)
                    pls = op[6]
                    if pls:
                        for line_addr in pls:
                            wb = install_fast(line_addr)
                            if wb:
                                wop = (
                                    serve(wb, True, 0, 0)
                                    if serve is not None
                                    else ctrl_deferred(wb, True)
                                )
                                if wop is not None:
                                    append(wop)
                                else:
                                    cycles = ctrl_batch(ops, cycles, mlp)
                                    ops.clear()
                                    if server_flush is not None:
                                        server_flush()
                                    ctrl_access(wb, True, cycles)
                else:
                    if ops:
                        cycles = ctrl_batch(ops, cycles, mlp)
                        ops.clear()
                    if server_flush is not None:
                        server_flush()
                    mem = ctrl_access(addr, is_write, cycles)
                    if not is_write:
                        # Writes are posted; only reads stall the core.
                        cycles += mem.latency_cycles / mlp
                    pls = mem.prefetched_lines
                    if pls:
                        for line_addr in pls:
                            wb = install_fast(line_addr)
                            if wb:
                                ctrl_access(wb, True, cycles)
            wbs = outcome[3]
            if wbs is not None:
                for wb in wbs:
                    # Writebacks are posted ops: a deferred one replays at
                    # the exact clock the scalar call would have seen, so
                    # batch-safe writebacks extend the run instead of
                    # flushing it.
                    wop = (
                        serve(wb, True, 0, 0)
                        if serve is not None
                        else ctrl_deferred(wb, True)
                    )
                    if wop is not None:
                        append(wop)
                    else:
                        if ops:
                            cycles = ctrl_batch(ops, cycles, mlp)
                            ops.clear()
                        if server_flush is not None:
                            server_flush()
                        ctrl_access(wb, True, cycles)
        if ops:
            cycles = ctrl_batch(ops, cycles, mlp)
            ops.clear()
        if server_flush is not None:
            server_flush()
        if hier_flush is not None:
            hier_flush()
        self.cycles = cycles
        self.instructions = instructions

    # -------------------------------------------------------- result assembly
    def _finalize(
        self,
        trace,
        name: str,
        design: str,
        n: int,
        warmup_end: int,
        mark: Optional[Dict[str, float]],
        wall_start: float,
    ) -> SimResult:
        profiling = self.profiler.enabled
        tracker = getattr(self.controller, "tracker", None)
        if tracker is not None:
            tracker.finalize()
        # Deterministic tail flush: a traced run's JSONL sink holds every
        # event the moment the simulator finalizes, even if the caller
        # never closes the tracer (short runs used to lose buffered tail
        # events to the file object's write buffer).
        obs = getattr(self.controller, "obs", None)
        if obs is not None and obs.enabled:
            obs.flush()

        if mark is None:
            # Warmup covered the whole trace (or it was empty): the
            # measured window is empty and every delta below is zero.
            mark = self._snapshot()
        if profiling:
            phase = "measured" if warmup_end < n else "warmup"
            self.profiler.add(phase, perf_counter() - wall_start, calls=n - warmup_end)
            self.profiler.count(
                "measured_instructions",
                self.instructions - self.profiler.counters.get("warmup_instructions", 0),
            )
            self.profiler.count("accesses", n)
        end = self._snapshot()
        cases = {
            key[len("case_"):]: int(end.get(key, 0) - mark.get(key, 0))
            for key in end
            if key.startswith("case_")
        }
        # Energy for the measured window only: charging the whole run's
        # traffic would inflate the window's joules by the warmup share.
        energy = EnergyModel(self.controller.devices.timings).report_deltas(
            int(end["fast_read_bytes"] - mark["fast_read_bytes"]),
            int(end["fast_write_bytes"] - mark["fast_write_bytes"]),
            int(end["fast_ops"] - mark["fast_ops"]),
            int(end["slow_read_bytes"] - mark["slow_read_bytes"]),
            int(end["slow_write_bytes"] - mark["slow_write_bytes"]),
        )
        # Windowed extras: full-run rates would smear warmup transients
        # into the measurement window (e.g. cold-cache misses).
        d_llc_accesses = end["llc_accesses"] - mark["llc_accesses"]
        d_llc_misses = end["llc_misses"] - mark["llc_misses"]
        extra = {
            "llc_miss_rate": (
                d_llc_misses / d_llc_accesses if d_llc_accesses else 0.0
            ),
            "ctrl_commits": end["commits"] - mark["commits"],
        }
        return SimResult(
            name=name or getattr(trace, "name", ""),
            design=design or getattr(self.controller, "name", type(self.controller).__name__),
            instructions=int(end["instructions"] - mark["instructions"]),
            cycles=end["cycles"] - mark["cycles"],
            memory_accesses=int(end["mem_accesses"] - mark["mem_accesses"]),
            llc_misses=int(d_llc_misses),
            served_fast=int(end["served_fast"] - mark["served_fast"]),
            fast_traffic_bytes=int(end["fast_bytes"] - mark["fast_bytes"]),
            slow_traffic_bytes=int(end["slow_bytes"] - mark["slow_bytes"]),
            useful_bytes=int(end["useful_bytes"] - mark["useful_bytes"]),
            case_counts=cases,
            energy=energy,
            extra=extra,
        )

    def _snapshot(self) -> Dict[str, float]:
        devices = self.controller.devices
        stats = self.controller.stats
        fast_stats = devices.fast.stats
        slow_stats = devices.slow.stats
        llc_stats = self.hierarchy.llc.stats
        llc_misses = llc_stats.get("misses")
        snap: Dict[str, float] = {
            "instructions": float(self.instructions),
            "cycles": self.cycles,
            "mem_accesses": float(stats.get("accesses")),
            "served_fast": float(stats.get("served_fast")),
            "fast_bytes": float(devices.fast.total_bytes),
            "slow_bytes": float(devices.slow.total_bytes),
            "llc_misses": float(llc_misses),
            "llc_accesses": float(llc_stats.get("accesses")),
            # Useful bytes = demanded lines at the configured LLC line
            # granularity (the unit moved between memory and the LLC).
            "useful_bytes": float(llc_misses * self.hierarchy.llc.geometry.line_size),
            "commits": float(stats.get("commits")),
            "fast_read_bytes": float(fast_stats.get("read_bytes")),
            "fast_write_bytes": float(fast_stats.get("write_bytes")),
            "fast_ops": float(fast_stats.get("reads") + fast_stats.get("writes")),
            "slow_read_bytes": float(slow_stats.get("read_bytes")),
            "slow_write_bytes": float(slow_stats.get("write_bytes")),
        }
        for key, value in stats.as_dict().items():
            if key.startswith("case_"):
                snap[key] = float(value)
        return snap
