"""The system simulator: drive a trace through caches into a controller."""

from __future__ import annotations

from typing import Dict, Optional

from repro.cache.hierarchy import CacheHierarchy
from repro.common.config import SimulationConfig
from repro.devices.energy import EnergyModel
from repro.sim.results import SimResult


class SystemSimulator:
    """Runs one (controller, trace) pair and produces a :class:`SimResult`.

    The controller is any object with the
    ``access(addr, is_write, now) -> AccessResult`` duck type (Baryon or a
    baseline). A fresh :class:`~repro.cache.hierarchy.CacheHierarchy` is
    built per simulator unless one is injected.
    """

    def __init__(
        self,
        controller,
        config: Optional[SimulationConfig] = None,
        hierarchy: Optional[CacheHierarchy] = None,
    ) -> None:
        self.controller = controller
        self.config = config or SimulationConfig()
        self.hierarchy = hierarchy or CacheHierarchy(self.config.hierarchy)
        self.cycles = 0.0
        self.instructions = 0

    def run(self, trace, name: str = "", design: str = "") -> SimResult:
        """Simulate the whole trace; measure after the warmup fraction."""
        n = len(trace)
        warmup_end = int(n * self.config.warmup_fraction)
        mark: Optional[Dict[str, float]] = None

        addrs = trace.addrs
        writes = trace.writes
        igaps = trace.igaps
        cores = trace.cores
        mlp = self.config.memory_level_parallelism
        base_cpi = self.config.base_cpi
        # The trace interleaves all cores' streams: wall-clock compute
        # time per access is the per-thread time over the core count.
        threads = max(1, self.config.hierarchy.cores)

        for i in range(n):
            if i == warmup_end:
                mark = self._snapshot()
            gap = int(igaps[i])
            self.instructions += gap + 1
            self.cycles += gap * base_cpi / threads

            addr = int(addrs[i])
            is_write = bool(writes[i])
            result = self.hierarchy.access(addr, is_write, int(cores[i]))
            self.cycles += result.latency_cycles / threads
            if result.llc_miss:
                mem = self.controller.access(addr, is_write, self.cycles)
                if not is_write:
                    # Writes are posted; only read latency stalls the core.
                    self.cycles += mem.latency_cycles / mlp
                for line_addr in mem.prefetched_lines:
                    for wb in self.hierarchy.install_llc(line_addr):
                        self.controller.access(wb, True, self.cycles)
            for wb in result.writebacks:
                self.controller.access(wb, True, self.cycles)

        if mark is None:
            mark = self._snapshot() if n == 0 else mark
        end = self._snapshot()
        assert mark is not None or warmup_end == 0
        if mark is None:
            mark = {k: 0.0 for k in end}
        ctrl_stats = self.controller.stats
        cases = {
            key[len("case_"):]: int(end.get(key, 0) - mark.get(key, 0))
            for key in end
            if key.startswith("case_")
        }
        energy = EnergyModel(self.controller.devices.timings).report(
            self.controller.devices.fast, self.controller.devices.slow
        )
        return SimResult(
            name=name or getattr(trace, "name", ""),
            design=design or getattr(self.controller, "name", type(self.controller).__name__),
            instructions=int(end["instructions"] - mark["instructions"]),
            cycles=end["cycles"] - mark["cycles"],
            memory_accesses=int(end["mem_accesses"] - mark["mem_accesses"]),
            llc_misses=int(end["llc_misses"] - mark["llc_misses"]),
            served_fast=int(end["served_fast"] - mark["served_fast"]),
            fast_traffic_bytes=int(end["fast_bytes"] - mark["fast_bytes"]),
            slow_traffic_bytes=int(end["slow_bytes"] - mark["slow_bytes"]),
            useful_bytes=int(end["useful_bytes"] - mark["useful_bytes"]),
            case_counts=cases,
            energy=energy,
            extra={
                "llc_miss_rate": self.hierarchy.llc_miss_rate,
                "ctrl_commits": float(ctrl_stats.get("commits")),
            },
        )

    def _snapshot(self) -> Dict[str, float]:
        devices = self.controller.devices
        stats = self.controller.stats
        snap: Dict[str, float] = {
            "instructions": float(self.instructions),
            "cycles": self.cycles,
            "mem_accesses": float(stats.get("accesses")),
            "served_fast": float(stats.get("served_fast")),
            "fast_bytes": float(devices.fast.total_bytes),
            "slow_bytes": float(devices.slow.total_bytes),
            "llc_misses": float(self.hierarchy.llc.stats.get("misses")),
            "useful_bytes": float(
                self.hierarchy.llc.stats.get("misses") * 64
            ),
        }
        for key, value in stats.as_dict().items():
            if key.startswith("case_"):
                snap[key] = float(value)
        return snap
