"""Experiment harness and reporting: run design matrices, print figures.

:mod:`repro.analysis.experiments` builds controllers by name, runs
(workload x design) matrices through the system simulator, and
:mod:`repro.analysis.report` renders the paper-style tables (normalized
speedups, serve rates, bloat factors, geometric means) that the
``benchmarks/`` directory emits for every figure.
"""

from repro.analysis.experiments import (
    DESIGNS,
    build_controller,
    run_cell,
    run_matrix,
    run_matrix_sharded,
    run_one,
)
from repro.analysis.report import (
    format_matrix,
    format_series,
    geomean_row,
    normalize_to,
)

__all__ = [
    "DESIGNS",
    "build_controller",
    "format_matrix",
    "format_series",
    "geomean_row",
    "normalize_to",
    "run_cell",
    "run_matrix",
    "run_matrix_sharded",
    "run_one",
]
