"""Table rendering for the paper-style figures.

All figures in the paper are bar charts over workloads; in a terminal
reproduction they become fixed-width tables with one row per workload, one
column per design, plus the geometric-mean row the paper always reports.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.common.stats import geometric_mean
from repro.sim.results import SimResult

Matrix = Mapping[Tuple[str, str], SimResult]


def normalize_to(
    matrix: Matrix, baseline: str, metric: str = "ipc"
) -> Dict[Tuple[str, str], float]:
    """Normalize a metric to one design per workload (Fig. 9/10 style)."""
    out: Dict[Tuple[str, str], float] = {}
    workloads = {wl for wl, _ in matrix}
    for wl in workloads:
        base = getattr(matrix[(wl, baseline)], metric)
        for (w, design), result in matrix.items():
            if w != wl:
                continue
            value = getattr(result, metric)
            out[(wl, design)] = value / base if base else 0.0
    return out


def geomean_row(
    values: Mapping[Tuple[str, str], float], designs: Sequence[str]
) -> Dict[str, float]:
    """Geometric mean per design over all workloads (positive cells only)."""
    out = {}
    for design in designs:
        cells = [v for (_, d), v in values.items() if d == design and v > 0]
        out[design] = geometric_mean(cells) if cells else 0.0
    return out


def format_matrix(
    matrix: Matrix,
    workloads: Sequence[str],
    designs: Sequence[str],
    metric: str = "ipc",
    baseline: str | None = None,
    title: str = "",
    fmt: str = "{:.2f}",
) -> str:
    """Render one figure as a fixed-width table.

    With ``baseline`` set, cells are normalized per workload to that
    design and a geometric-mean row is appended — exactly the shape of
    Fig. 9/10. Without it, raw metric values are printed (Fig. 11).
    """
    if baseline is not None:
        values = normalize_to(matrix, baseline, metric)
    else:
        values = {
            key: getattr(result, metric) for key, result in matrix.items()
        }
    name_width = max([len(w) for w in workloads] + [8])
    col_width = max([len(d) for d in designs] + [7]) + 1
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " " * name_width + "".join(d.rjust(col_width) for d in designs)
    lines.append(header)
    for wl in workloads:
        row = wl.ljust(name_width)
        for design in designs:
            row += fmt.format(values.get((wl, design), float("nan"))).rjust(col_width)
        lines.append(row)
    gmean = geomean_row(values, designs)
    row = "geomean".ljust(name_width)
    for design in designs:
        row += fmt.format(gmean.get(design, 0.0)).rjust(col_width)
    lines.append(row)
    return "\n".join(lines)


def format_series(
    title: str,
    points: Iterable[Tuple[str, float]],
    fmt: str = "{:.3f}",
    bar_width: int = 32,
) -> str:
    """Render a parameter sweep (Fig. 13 panels) as label/value rows with
    a proportional ASCII bar — a terminal stand-in for the paper's bar
    charts."""
    points = list(points)
    peak = max((v for _, v in points if v > 0), default=1.0)
    lines = [title]
    for label, value in points:
        bar = "#" * max(0, round(bar_width * value / peak)) if peak else ""
        lines.append(f"  {str(label):<24} {fmt.format(value):>8}  {bar}")
    return "\n".join(lines)
