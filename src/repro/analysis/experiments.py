"""Build controllers by name and run (workload x design) matrices."""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Optional, Tuple

from repro.baselines import DiceCache, Hybrid2, SimpleCache, UnisonCache
from repro.common.config import BaryonConfig, SimulationConfig
from repro.common.errors import (
    CellExecutionError,
    ConfigurationError,
    PoisonCellError,
)
from repro.core import BaryonController
from repro.core.tracking import StagePhaseTracker
from repro.obs import attach_observability
from repro.sim import SimResult, SystemSimulator
from repro.workloads import build_workload

#: Cache-mode designs of Fig. 9 plus the flat-mode pair of Fig. 10.
DESIGNS = (
    "simple",
    "unison",
    "dice",
    "baryon-64b",
    "baryon",
    "hybrid2",
    "baryon-fa",
)


def _flat_variant(config: BaryonConfig) -> BaryonConfig:
    """The Fig. 10 flat organization, shared by Hybrid2 and Baryon-FA.

    Both designs statically provision a cache section next to the
    OS-visible flat space (Hybrid2 by construction — "Hybrid2 provisioned
    a fixed cache capacity" — and Baryon supports the same static
    combination), so commits land in cache ways and OS-resident blocks are
    displaced only by explicit migrations.
    """
    layout = dataclasses.replace(
        config.layout, flat_fraction=0.75, fully_associative=True
    )
    return dataclasses.replace(config, layout=layout)


def build_controller(
    design: str,
    config: BaryonConfig,
    seed: int = 1,
    tracker: Optional[StagePhaseTracker] = None,
):
    """Instantiate a controller by its Fig. 9/10 name.

    ``config`` is the cache-mode configuration; flat designs derive their
    fully-associative flat variant from it automatically.
    """
    if design == "simple":
        return SimpleCache(config)
    if design == "unison":
        return UnisonCache(config)
    if design == "dice":
        return DiceCache(config, seed=seed)
    if design == "baryon":
        return BaryonController(config, seed=seed, tracker=tracker)
    if design == "baryon-64b":
        return BaryonController(
            config.with_sub_block_size(64), seed=seed, tracker=tracker
        )
    if design == "hybrid2":
        return Hybrid2(_flat_variant(config), seed=seed)
    if design == "baryon-fa":
        return BaryonController(_flat_variant(config), seed=seed, tracker=tracker)
    raise ConfigurationError(f"unknown design {design!r}; choose from {DESIGNS}")


def run_cell(
    workload: str,
    design: str,
    config: BaryonConfig,
    sim_config: SimulationConfig,
    n_accesses: int = 50_000,
    seed: int = 1,
    tracker: Optional[StagePhaseTracker] = None,
    tracer=None,
    metrics=None,
    profiler=None,
    trace=None,
    spans=None,
    progress=None,
    progress_every: int = 2048,
):
    """Run one (workload, design) cell; return ``(result, controller)``.

    The controller is returned alongside the result so harnesses (the
    parallel matrix runner, metrics collection) can snapshot its counter
    state; plain callers use :func:`run_one`.

    ``trace`` injects a pre-generated stream (typically a
    :meth:`~repro.workloads.base.Trace.replay_view` shared across the
    designs of one workload); when absent the trace is generated from
    ``(workload, seed)`` exactly as before, so injected and generated
    streams are bit-identical for the same seed.

    ``spans``/``progress``/``progress_every`` feed the sweep-telemetry
    layer (see :mod:`repro.obs.spans` and :mod:`repro.obs.progress`):
    the simulator records ``sim.*`` phase spans into ``spans`` and calls
    ``progress(done, total)`` every ``progress_every`` accesses.
    """
    if trace is None:
        trace = build_workload(
            workload, config.layout.fast_capacity, n_accesses=n_accesses, seed=seed
        )
    controller = build_controller(design, config, seed=seed, tracker=tracker)
    if tracer is not None or metrics is not None:
        attach_observability(controller, tracer, metrics)
    if hasattr(controller, "oracle"):
        trace.apply_compressibility(controller.oracle)
    simulator = SystemSimulator(
        controller, sim_config, metrics=metrics, profiler=profiler,
        spans=spans, progress=progress, progress_every=progress_every,
    )
    result = simulator.run(trace, name=workload, design=design)
    if metrics is not None:
        from repro.obs import collect_run_metrics

        collect_run_metrics(metrics, controller, result=result)
    return result, controller


def run_one(
    workload: str,
    design: str,
    config: BaryonConfig,
    sim_config: SimulationConfig,
    n_accesses: int = 50_000,
    seed: int = 1,
    tracker: Optional[StagePhaseTracker] = None,
    tracer=None,
    metrics=None,
    profiler=None,
    trace=None,
    spans=None,
    progress=None,
) -> SimResult:
    """Run one (workload, design) cell and return its result.

    ``tracer``/``metrics``/``profiler``/``spans``/``progress`` attach
    the observability layer (see :mod:`repro.obs`) to the controller and
    simulator; all default to off and cost nothing when absent.
    """
    result, _ = run_cell(
        workload, design, config, sim_config, n_accesses, seed,
        tracker=tracker, tracer=tracer, metrics=metrics, profiler=profiler,
        trace=trace, spans=spans, progress=progress,
    )
    return result


def run_matrix(
    workloads: Iterable[str],
    designs: Iterable[str],
    config: BaryonConfig,
    sim_config: SimulationConfig,
    n_accesses: int = 50_000,
    seed: int = 1,
    jobs: int = 1,
    seeds: Optional[Iterable[int]] = None,
    max_attempts: int = 2,
    cell_timeout_s: Optional[float] = None,
    checkpoint: Optional[str] = None,
    resume: Optional[str] = None,
    telemetry=None,
    manifest: Optional[str] = None,
    **runner_kwargs,
) -> Dict[Tuple, SimResult]:
    """Run the full (workload × design × seed) cross product.

    Every design of a workload replays the *same* generated stream: the
    trace is built once per (workload, seed) and each cell receives an
    immutable replay view, which is both the identical-stream guarantee
    and the reason a sweep no longer pays trace generation per cell.

    ``jobs > 1`` shards the cells across a process pool (see
    :mod:`repro.parallel`); results are bit-identical to the serial run
    because each cell derives all randomness from its own deterministic
    seed. With ``seeds`` given, the matrix is keyed
    ``(workload, design, seed)``; otherwise the single ``seed`` is used
    and keys stay ``(workload, design)`` as before.

    Crashed or raising cells are retried up to ``max_attempts`` times
    each (see :func:`repro.parallel.run_plan`); a cell still failing
    after that raises :class:`~repro.common.errors.CellExecutionError`
    — callers wanting partial results use :func:`run_matrix_sharded`.
    ``checkpoint``/``resume`` name a checkpoint file so an interrupted
    sweep continues where it died. Extra keyword arguments (``chaos``,
    ``progress_timeout_s``, ``quarantine_after``, ``retry_budget``,
    ``backoff_base_s``, ``handle_signals``, ``interrupt_grace_s``) pass
    straight through to :func:`repro.parallel.run_plan`; a quarantined
    cell raises :class:`~repro.common.errors.PoisonCellError` here —
    callers wanting the degraded partial outcome use
    :func:`run_matrix_sharded`.
    """
    from repro.parallel import plan_cells, run_plan
    from repro.parallel.runner import DEFAULT_CELL_TIMEOUT_S

    plan = plan_cells(workloads, designs, seed=seed, seeds=seeds)
    outcome = run_plan(
        plan, config, sim_config, n_accesses=n_accesses, jobs=jobs,
        max_attempts=max_attempts,
        cell_timeout_s=(
            DEFAULT_CELL_TIMEOUT_S if cell_timeout_s is None else cell_timeout_s
        ),
        checkpoint=checkpoint, resume=resume,
        telemetry=telemetry, manifest=manifest,
        **runner_kwargs,
    )
    if outcome.quarantined:
        cell_key, record = next(iter(outcome.quarantined.items()))
        raise PoisonCellError(
            f"{len(outcome.quarantined)} matrix cell(s) quarantined; "
            f"first: {cell_key} ({record['message']})",
            cell=cell_key,
            attempts=record.get("attempts", max_attempts),
            reasons=record.get("reasons"),
            partial=record.get("partial"),
        )
    if outcome.failed:
        cell_key, error = next(iter(outcome.failed.items()))
        raise CellExecutionError(
            f"{len(outcome.failed)} matrix cell(s) failed; first: {cell_key} "
            f"({error['type']}: {error['message']})",
            cell=cell_key,
            attempts=error.get("attempt", max_attempts),
            traceback_text=error.get("traceback"),
        )
    return outcome.results


def run_matrix_sharded(
    workloads: Iterable[str],
    designs: Iterable[str],
    config: BaryonConfig,
    sim_config: SimulationConfig,
    n_accesses: int = 50_000,
    seed: int = 1,
    jobs: int = 1,
    seeds: Optional[Iterable[int]] = None,
    max_attempts: int = 2,
    cell_timeout_s: Optional[float] = None,
    checkpoint: Optional[str] = None,
    resume: Optional[str] = None,
    telemetry=None,
    manifest: Optional[str] = None,
    **runner_kwargs,
):
    """Like :func:`run_matrix` but returns the full
    :class:`~repro.parallel.MatrixOutcome` — per-cell results plus
    counter shards merged through the ``CounterGroup.merge`` /
    ``RatioStat.merge`` APIs and runner telemetry. Unlike
    :func:`run_matrix` this never raises on failed or quarantined cells:
    they are reported in ``MatrixOutcome.failed`` /
    ``MatrixOutcome.quarantined`` alongside the partial results.
    """
    from repro.parallel import plan_cells, run_plan
    from repro.parallel.runner import DEFAULT_CELL_TIMEOUT_S

    plan = plan_cells(workloads, designs, seed=seed, seeds=seeds)
    return run_plan(
        plan, config, sim_config, n_accesses=n_accesses, jobs=jobs,
        max_attempts=max_attempts,
        cell_timeout_s=(
            DEFAULT_CELL_TIMEOUT_S if cell_timeout_s is None else cell_timeout_s
        ),
        checkpoint=checkpoint, resume=resume,
        telemetry=telemetry, manifest=manifest,
        **runner_kwargs,
    )
