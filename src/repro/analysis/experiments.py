"""Build controllers by name and run (workload x design) matrices."""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Optional, Tuple

from repro.baselines import DiceCache, Hybrid2, SimpleCache, UnisonCache
from repro.common.config import BaryonConfig, SimulationConfig
from repro.common.errors import ConfigurationError
from repro.core import BaryonController
from repro.core.tracking import StagePhaseTracker
from repro.obs import attach_observability
from repro.sim import SimResult, SystemSimulator
from repro.workloads import build_workload

#: Cache-mode designs of Fig. 9 plus the flat-mode pair of Fig. 10.
DESIGNS = (
    "simple",
    "unison",
    "dice",
    "baryon-64b",
    "baryon",
    "hybrid2",
    "baryon-fa",
)


def _flat_variant(config: BaryonConfig) -> BaryonConfig:
    """The Fig. 10 flat organization, shared by Hybrid2 and Baryon-FA.

    Both designs statically provision a cache section next to the
    OS-visible flat space (Hybrid2 by construction — "Hybrid2 provisioned
    a fixed cache capacity" — and Baryon supports the same static
    combination), so commits land in cache ways and OS-resident blocks are
    displaced only by explicit migrations.
    """
    layout = dataclasses.replace(
        config.layout, flat_fraction=0.75, fully_associative=True
    )
    return dataclasses.replace(config, layout=layout)


def build_controller(
    design: str,
    config: BaryonConfig,
    seed: int = 1,
    tracker: Optional[StagePhaseTracker] = None,
):
    """Instantiate a controller by its Fig. 9/10 name.

    ``config`` is the cache-mode configuration; flat designs derive their
    fully-associative flat variant from it automatically.
    """
    if design == "simple":
        return SimpleCache(config)
    if design == "unison":
        return UnisonCache(config)
    if design == "dice":
        return DiceCache(config, seed=seed)
    if design == "baryon":
        return BaryonController(config, seed=seed, tracker=tracker)
    if design == "baryon-64b":
        return BaryonController(
            config.with_sub_block_size(64), seed=seed, tracker=tracker
        )
    if design == "hybrid2":
        return Hybrid2(_flat_variant(config), seed=seed)
    if design == "baryon-fa":
        return BaryonController(_flat_variant(config), seed=seed, tracker=tracker)
    raise ConfigurationError(f"unknown design {design!r}; choose from {DESIGNS}")


def run_one(
    workload: str,
    design: str,
    config: BaryonConfig,
    sim_config: SimulationConfig,
    n_accesses: int = 50_000,
    seed: int = 1,
    tracker: Optional[StagePhaseTracker] = None,
    tracer=None,
    metrics=None,
    profiler=None,
) -> SimResult:
    """Run one (workload, design) cell and return its result.

    ``tracer``/``metrics``/``profiler`` attach the observability layer
    (see :mod:`repro.obs`) to the controller and simulator; all default
    to off and cost nothing when absent.
    """
    trace = build_workload(
        workload, config.layout.fast_capacity, n_accesses=n_accesses, seed=seed
    )
    controller = build_controller(design, config, seed=seed, tracker=tracker)
    if tracer is not None or metrics is not None:
        attach_observability(controller, tracer, metrics)
    if hasattr(controller, "oracle"):
        trace.apply_compressibility(controller.oracle)
    simulator = SystemSimulator(
        controller, sim_config, metrics=metrics, profiler=profiler
    )
    result = simulator.run(trace, name=workload, design=design)
    if metrics is not None:
        from repro.obs import collect_run_metrics

        collect_run_metrics(metrics, controller, result=result)
    return result


def run_matrix(
    workloads: Iterable[str],
    designs: Iterable[str],
    config: BaryonConfig,
    sim_config: SimulationConfig,
    n_accesses: int = 50_000,
    seed: int = 1,
) -> Dict[Tuple[str, str], SimResult]:
    """Run the full cross product; traces are regenerated per cell so every
    design sees an identical, independent stream."""
    results: Dict[Tuple[str, str], SimResult] = {}
    for workload in workloads:
        for design in designs:
            results[(workload, design)] = run_one(
                workload, design, config, sim_config, n_accesses, seed
            )
    return results
