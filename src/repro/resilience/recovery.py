"""Bounded-retry recovery for transient device faults.

:class:`RecoveryManager` wraps the controller's device accesses. When a
:class:`~repro.common.errors.TransientDeviceError` fires it retries up to
``max_retries`` times with exponential backoff, charging the backoff as
extra latency on the eventually-successful access. Because the injection
hooks fire *before* device traffic/statistics accounting, the retried
attempts leave no accounting trace: a recovered run carries identical
traffic and energy to the fault-free run, differing only in cycles.

Recovery-side actions that the controller performs itself (quarantine,
metadata repair, stage flush) are counted here too, so the controller's
own :class:`~repro.common.stats.CounterGroup` stays bit-identical
between a recovered and a fault-free run.
"""

from __future__ import annotations

from typing import Optional

from repro.common.config import ResilienceConfig
from repro.common.errors import TransientDeviceError
from repro.common.stats import CounterGroup
from repro.obs.tracer import NULL_TRACER
from repro.resilience.faults import _MASK64, _mix64


def requeue_backoff_s(
    base_s: float, attempt: int, cell_index: int = 0, seed: int = 0
) -> float:
    """Orchestration-level requeue delay: exponential + deterministic jitter.

    Attempt *n* (1-based, the attempt that just failed) waits
    ``base_s * 2**(n-1)`` scaled by a jitter factor in ``[1.0, 1.5)``
    drawn from a keyed SplitMix64 hash of ``(seed, cell, attempt)`` — so
    a thundering herd of requeues de-synchronizes, yet two runs of the
    same sweep back off identically (no wall-clock or PRNG state
    involved). ``base_s <= 0`` disables backoff entirely.
    """
    if base_s <= 0.0 or attempt < 1:
        return 0.0
    key = ((seed << 1) ^ 0x51EE9) & _MASK64
    jitter = _mix64(_mix64(key + cell_index) + attempt) / 2.0 ** 64
    return base_s * (2.0 ** (attempt - 1)) * (1.0 + 0.5 * jitter)


class RecoveryManager:
    """Retry/backoff engine plus the recovery-action scoreboard."""

    def __init__(self, config: ResilienceConfig) -> None:
        self.max_retries = config.max_retries
        self.backoff_base_cycles = config.backoff_base_cycles
        self.stats = CounterGroup("recovery")
        #: Observability hook point; see :mod:`repro.obs`.
        self.obs = NULL_TRACER

    def record(self, action: str, **context) -> None:
        """Count a controller-side recovery action (quarantine, repair...)."""
        self.stats.inc(action)
        if self.obs.enabled:
            self.obs.emit("recovery", action=action, **context)

    def _backoff(self, attempt: int) -> float:
        return float(self.backoff_base_cycles * (2 ** attempt))

    def retry_read(self, device, now: float, nbytes: int, *, demand: bool = True,
                   addr: Optional[int] = None):
        """``device.read`` with bounded retry; backoff lands in latency."""
        penalty = 0.0
        for attempt in range(self.max_retries + 1):
            try:
                access = device.read(now + penalty, nbytes, demand=demand, addr=addr)
            except TransientDeviceError:
                if attempt >= self.max_retries:
                    self.record("retry_exhausted", site=f"{device.name}.read",
                                attempt=attempt + 1)
                    raise
                self.stats.inc("retries")
                penalty += self._backoff(attempt)
                continue
            if penalty > 0.0:
                self.record("retried_read", site=f"{device.name}.read")
                access = access._replace(
                    latency_cycles=access.latency_cycles + penalty
                )
            return access
        raise AssertionError("unreachable")  # pragma: no cover

    def retry_write(self, device, now: float, nbytes: int, *,
                    addr: Optional[int] = None):
        """``device.write`` with bounded retry; backoff lands in latency."""
        penalty = 0.0
        for attempt in range(self.max_retries + 1):
            try:
                access = device.write(now + penalty, nbytes, addr=addr)
            except TransientDeviceError:
                if attempt >= self.max_retries:
                    self.record("retry_exhausted", site=f"{device.name}.write",
                                attempt=attempt + 1)
                    raise
                self.stats.inc("retries")
                penalty += self._backoff(attempt)
                continue
            if penalty > 0.0:
                self.record("retried_write", site=f"{device.name}.write")
                access = access._replace(
                    latency_cycles=access.latency_cycles + penalty
                )
            return access
        raise AssertionError("unreachable")  # pragma: no cover
