"""Crash-safe sweep checkpoints with per-cell salvage.

A checkpoint records the finished cells of a matrix run, rewritten
durably (temp file + fsync + ``os.replace`` + directory fsync, via
:func:`repro.common.fsio.durable_replace`) after each completed cell so
a killed sweep loses at most the in-flight cells. Format version 2 is
line-oriented precisely so *partial* corruption stays partially
recoverable:

* line 1 — a self-describing header: magic string, version, SHA-256
  fingerprint of the exact plan (cells, access count, configs), and the
  cell count;
* one line per finished cell — ``{"index", "digest", "payload"}`` where
  ``digest`` is the SHA-256 of the payload's canonical JSON.

:func:`load_checkpoint` is strict: a wrong-plan or unreadable file
raises :class:`~repro.common.errors.ConfigurationError` as before, and
any body damage (torn tail, flipped bit, missing lines) raises the
:class:`~repro.common.errors.CheckpointCorruptError` subtype.
:func:`salvage_checkpoint` is the recovery path the runner takes on
that subtype: it keeps every cell whose line parses *and* whose digest
verifies (optionally cross-checked against the run manifest's per-cell
result digests) and reports what was dropped — a torn checkpoint costs
re-running the damaged cells, never the whole sweep.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import CheckpointCorruptError, ConfigurationError
from repro.common.fsio import durable_replace
from repro.resilience.chaos import write_effect_mutator

CHECKPOINT_MAGIC = "repro-matrix-checkpoint"
CHECKPOINT_VERSION = 2

#: Version of the fingerprint *scheme* (independent of the file format
#: version above). v1 digests are bare hex; v2 digests carry a ``"v2:"``
#: prefix and additionally cover the orchestration knobs that change
#: which cells a checkpoint can contain — worker-level chaos and the
#: poison-cell quarantine threshold. A run with none of those knobs
#: still produces the bare v1 digest, so every pre-v2 clean (or
#: fault-injected: fault specs live inside ``config.resilience`` and are
#: covered by ``config!r``) checkpoint remains resumable.
FINGERPRINT_VERSION = 2

#: ChaosPlan fields folded into a v2 fingerprint. Deliberately only the
#: *worker-level* schedule: kills/hangs/heartbeat loss change retry and
#: quarantine outcomes, and ``poison_cells`` changes which cells can
#: ever land in the checkpoint. Write-effect chaos (torn/flip/enospc)
#: damages the *file*, never the payloads — the per-cell digests and
#: salvage already guard that — and ``interrupt_after_cells`` / drain
#: delays only change *when* a run stops, so excluding them keeps an
#: interrupted chaos run resumable by its chaos-free (or
#: interrupt-free) continuation.
_CHAOS_IDENTITY_FIELDS = (
    "seed",
    "p_kill_worker",
    "p_hang_worker",
    "hang_s",
    "p_drop_heartbeat",
    "p_stall_heartbeats",
    "stall_beats",
    "poison_cells",
)


def _chaos_identity(chaos) -> Optional[Dict[str, Any]]:
    """The fingerprint-relevant slice of a ChaosPlan, or ``None`` when
    the plan injects nothing a checkpoint's contents could depend on."""
    if chaos is None or not chaos.wants_worker_chaos:
        return None
    return {name: getattr(chaos, name) for name in _CHAOS_IDENTITY_FIELDS}


def plan_fingerprint(
    plan: Sequence,
    n_accesses: int,
    config,
    sim_config,
    *,
    chaos=None,
    quarantine_after: Optional[int] = None,
) -> str:
    """SHA-256 over the full plan identity.

    Frozen-dataclass ``repr`` is deterministic and covers every field, so
    any change to cells, configs, or access count yields a new
    fingerprint. Fault-injection specs ride along for free: they live in
    ``config.resilience`` and are covered by ``config!r``.

    ``chaos`` (a :class:`~repro.resilience.chaos.ChaosPlan`) and
    ``quarantine_after`` extend the identity to the orchestration knobs
    that change checkpoint contents — see :data:`FINGERPRINT_VERSION`
    and :data:`_CHAOS_IDENTITY_FIELDS`. When neither is in play the
    digest is byte-identical to the v1 scheme.
    """
    digest = hashlib.sha256()
    digest.update(f"n_accesses={n_accesses}\n".encode("utf-8"))
    digest.update(f"config={config!r}\n".encode("utf-8"))
    digest.update(f"sim_config={sim_config!r}\n".encode("utf-8"))
    for cell in plan:
        digest.update(f"cell={cell!r}\n".encode("utf-8"))
    identity = _chaos_identity(chaos)
    if identity is None and quarantine_after is None:
        return digest.hexdigest()
    digest.update(f"fingerprint_version={FINGERPRINT_VERSION}\n".encode("utf-8"))
    if identity is not None:
        encoded = json.dumps(identity, sort_keys=True, separators=(",", ":"))
        digest.update(f"chaos={encoded}\n".encode("utf-8"))
    if quarantine_after is not None:
        digest.update(f"quarantine_after={quarantine_after}\n".encode("utf-8"))
    return f"v{FINGERPRINT_VERSION}:{digest.hexdigest()}"


def cell_fingerprint(
    workload: str, design: str, seed: int, n_accesses: int, config, sim_config
) -> str:
    """SHA-256 identity of one cell's *simulation inputs*.

    Unlike :func:`plan_fingerprint` this is independent of the
    surrounding plan (cell index, sibling cells, orchestration knobs):
    a cell is a pure function of ``(workload, design, seed, n_accesses,
    configs)``, so two jobs that happen to share a cell — whatever else
    they sweep — share this key. The serve-layer result cache is keyed
    by it.
    """
    digest = hashlib.sha256()
    digest.update(b"cell-fingerprint-v1\n")
    digest.update(f"n_accesses={n_accesses}\n".encode("utf-8"))
    digest.update(f"config={config!r}\n".encode("utf-8"))
    digest.update(f"sim_config={sim_config!r}\n".encode("utf-8"))
    digest.update(f"workload={workload}\n".encode("utf-8"))
    digest.update(f"design={design}\n".encode("utf-8"))
    digest.update(f"seed={seed}\n".encode("utf-8"))
    return digest.hexdigest()


def payload_digest(payload: dict) -> str:
    """SHA-256 of a cell payload's canonical JSON encoding."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def write_checkpoint(
    path: str,
    fingerprint: str,
    payloads: Dict[int, dict],
    effect: Optional[str] = None,
) -> None:
    """Durably (re)write the checkpoint with all finished payloads.

    ``effect`` is the chaos hook (``"torn"``/``"flip"``/``"enospc"``,
    see :func:`repro.resilience.chaos.write_effect_mutator`): the damage
    is applied to the temp file *before* the rename, modelling a write
    path that corrupts data the crash-consistency machinery then
    faithfully publishes.
    """
    lines: List[str] = [
        json.dumps({
            "magic": CHECKPOINT_MAGIC,
            "version": CHECKPOINT_VERSION,
            "fingerprint": fingerprint,
            "cells": len(payloads),
        })
    ]
    for index, payload in sorted(payloads.items()):
        lines.append(json.dumps({
            "index": index,
            "digest": payload_digest(payload),
            "payload": payload,
        }))
    data = ("\n".join(lines) + "\n").encode("utf-8")
    durable_replace(
        path, data, prefix=".checkpoint-", mutate=write_effect_mutator(effect)
    )


def _read_lines(path: str) -> List[str]:
    # errors="replace", not strict: a bit-flip that lands outside the
    # UTF-8 subset must surface as a digest mismatch on that line (body
    # corruption, salvageable) — not a raw UnicodeDecodeError.
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as handle:
            return handle.read().splitlines()
    except OSError as err:
        raise ConfigurationError(f"cannot read checkpoint {path!r}: {err}") from err


def _parse_header(path: str, lines: List[str], fingerprint: Optional[str]) -> dict:
    """Validate the header line; raises :class:`ConfigurationError` for
    anything that makes the whole file untrustworthy (wrong plan, wrong
    format) — salvage is pointless past this point."""
    if not lines:
        raise ConfigurationError(
            f"checkpoint {path!r} is not valid JSON (truncated write?): empty file"
        )
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as err:
        raise ConfigurationError(
            f"checkpoint {path!r} is not valid JSON (truncated write?): {err}"
        ) from err
    if not isinstance(header, dict):
        raise ConfigurationError(f"checkpoint {path!r} is not a JSON object")
    magic = header.get("magic")
    if magic != CHECKPOINT_MAGIC:
        raise ConfigurationError(
            f"checkpoint {path!r} has magic {magic!r}, expected {CHECKPOINT_MAGIC!r}"
        )
    version = header.get("version")
    if version != CHECKPOINT_VERSION:
        raise ConfigurationError(
            f"checkpoint {path!r} has version {version!r}, this build reads "
            f"version {CHECKPOINT_VERSION}"
        )
    if fingerprint is not None and header.get("fingerprint") != fingerprint:
        raise ConfigurationError(
            f"checkpoint {path!r} was written for a different sweep "
            "(plan fingerprint mismatch); refusing to resume"
        )
    return header


def _parse_records(
    lines: List[str],
) -> Tuple[Dict[int, dict], Dict[int, str], List[str]]:
    """``(verified payloads, verified digests by index, damage notes)``
    for the body lines; damaged lines are noted, never fatal here."""
    payloads: Dict[int, dict] = {}
    digests: Dict[int, str] = {}
    damage: List[str] = []
    for lineno, line in enumerate(lines, start=2):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            damage.append(f"line {lineno}: invalid JSON (torn write?)")
            continue
        if not isinstance(record, dict) or not isinstance(record.get("index"), int):
            damage.append(f"line {lineno}: not a cell record")
            continue
        index = record["index"]
        payload = record.get("payload")
        if not isinstance(payload, dict):
            damage.append(f"line {lineno}: cell {index} has no payload")
            continue
        if record.get("digest") != payload_digest(payload):
            damage.append(f"line {lineno}: cell {index} failed its digest check")
            continue
        payloads[index] = payload
        digests[index] = record["digest"]
    return payloads, digests, damage


def load_checkpoint(path: str, fingerprint: Optional[str] = None) -> Dict[int, dict]:
    """Load and validate a checkpoint; payloads keyed by cell index.

    Raises :class:`ConfigurationError` for a missing/unreadable file, a
    wrong magic/version, or a plan-fingerprint mismatch, and its
    :class:`CheckpointCorruptError` subtype (``salvageable=True``) for
    body damage — torn tail, flipped bits, records missing against the
    header count — which :func:`salvage_checkpoint` can partially
    recover.
    """
    lines = _read_lines(path)
    header = _parse_header(path, lines, fingerprint)
    payloads, _, damage = _parse_records(lines[1:])
    expected_cells = header.get("cells")
    if isinstance(expected_cells, int) and len(payloads) != expected_cells:
        damage.append(
            f"header promises {expected_cells} cell(s), {len(payloads)} verified"
        )
    if damage:
        raise CheckpointCorruptError(
            f"checkpoint {path!r} is damaged ({'; '.join(damage)}); "
            "per-cell salvage may recover part of it",
            salvageable=True,
        )
    return payloads


def salvage_checkpoint(
    path: str,
    fingerprint: Optional[str] = None,
    expected: Optional[Dict[int, str]] = None,
) -> Tuple[Dict[int, dict], Dict[str, Any]]:
    """Recover every digest-verified cell from a damaged checkpoint.

    ``expected`` optionally maps cell index → the *result* digest the
    run manifest recorded for that cell
    (:func:`repro.obs.manifest.result_digests`); a salvaged payload
    whose re-computed result digest disagrees is dropped too — the
    manifest is the independent witness. Header-level problems (wrong
    plan/magic/version, unreadable file) still raise
    :class:`ConfigurationError`: salvage recovers *cells*, never trust.

    Returns ``(payloads, report)`` where ``report`` counts
    ``recovered``/``dropped``/``manifest_mismatch`` and lists the damage.
    """
    lines = _read_lines(path)
    _parse_header(path, lines, fingerprint)
    payloads, _, damage = _parse_records(lines[1:])
    manifest_mismatch = 0
    if expected is not None:
        from repro.obs.manifest import _result_digest

        for index in sorted(payloads):
            want = expected.get(index)
            if want is None:
                continue
            result = payloads[index].get("result", {})
            if _result_digest(result) != want:
                del payloads[index]
                manifest_mismatch += 1
                damage.append(
                    f"cell {index} disagrees with the manifest result digest"
                )
    report = {
        "recovered": len(payloads),
        "dropped": len(damage),
        "manifest_mismatch": manifest_mismatch,
        "damage": damage,
    }
    return payloads, report
