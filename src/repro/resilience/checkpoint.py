"""Crash-safe sweep checkpoints.

A checkpoint is one JSON document recording the finished cells of a
matrix run, written atomically (temp file + ``os.replace``) after each
completed cell so a killed sweep loses at most the in-flight cells. The
file is self-describing — magic string, format version, and a SHA-256
fingerprint of the exact plan (cells, access count, configs) — so
``run_matrix(..., resume=path)`` refuses, with a clear
:class:`~repro.common.errors.ConfigurationError`, to resume a different
sweep or a truncated/incompatible file rather than silently mixing
results.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Dict, Optional, Sequence

from repro.common.errors import ConfigurationError

CHECKPOINT_MAGIC = "repro-matrix-checkpoint"
CHECKPOINT_VERSION = 1


def plan_fingerprint(plan: Sequence, n_accesses: int, config, sim_config) -> str:
    """SHA-256 over the full plan identity.

    Frozen-dataclass ``repr`` is deterministic and covers every field, so
    any change to cells, configs, or access count yields a new fingerprint.
    """
    digest = hashlib.sha256()
    digest.update(f"n_accesses={n_accesses}\n".encode("utf-8"))
    digest.update(f"config={config!r}\n".encode("utf-8"))
    digest.update(f"sim_config={sim_config!r}\n".encode("utf-8"))
    for cell in plan:
        digest.update(f"cell={cell!r}\n".encode("utf-8"))
    return digest.hexdigest()


def write_checkpoint(
    path: str, fingerprint: str, payloads: Dict[int, dict]
) -> None:
    """Atomically (re)write the checkpoint with all finished payloads."""
    document = {
        "magic": CHECKPOINT_MAGIC,
        "version": CHECKPOINT_VERSION,
        "fingerprint": fingerprint,
        "cells": len(payloads),
        "payloads": {str(index): payload for index, payload in sorted(payloads.items())},
    }
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(prefix=".checkpoint-", dir=directory)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def load_checkpoint(path: str, fingerprint: Optional[str] = None) -> Dict[int, dict]:
    """Load and validate a checkpoint; payloads keyed by cell index.

    Raises :class:`ConfigurationError` for anything other than a valid
    checkpoint of the expected plan: missing file, truncated/invalid
    JSON, wrong magic or version, or a fingerprint mismatch.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as err:
        raise ConfigurationError(f"cannot read checkpoint {path!r}: {err}") from err
    except json.JSONDecodeError as err:
        raise ConfigurationError(
            f"checkpoint {path!r} is not valid JSON (truncated write?): {err}"
        ) from err
    if not isinstance(document, dict):
        raise ConfigurationError(f"checkpoint {path!r} is not a JSON object")
    magic = document.get("magic")
    if magic != CHECKPOINT_MAGIC:
        raise ConfigurationError(
            f"checkpoint {path!r} has magic {magic!r}, expected {CHECKPOINT_MAGIC!r}"
        )
    version = document.get("version")
    if version != CHECKPOINT_VERSION:
        raise ConfigurationError(
            f"checkpoint {path!r} has version {version!r}, this build reads "
            f"version {CHECKPOINT_VERSION}"
        )
    if fingerprint is not None and document.get("fingerprint") != fingerprint:
        raise ConfigurationError(
            f"checkpoint {path!r} was written for a different sweep "
            "(plan fingerprint mismatch); refusing to resume"
        )
    payloads = document.get("payloads")
    if not isinstance(payloads, dict):
        raise ConfigurationError(f"checkpoint {path!r} is missing its payloads table")
    try:
        return {int(index): payload for index, payload in payloads.items()}
    except (TypeError, ValueError) as err:
        raise ConfigurationError(
            f"checkpoint {path!r} has malformed payload keys: {err}"
        ) from err
