"""Deterministic seeded fault injection.

A :class:`FaultPlan` is a frozen value object naming the fault kinds and
their per-draw probabilities; a :class:`FaultInjector` evaluates it with
counter-based SplitMix64 hashing (the same generator family the synthetic
compressibility oracle uses), so the *n*-th draw at a given site is a
pure function of ``(fault_seed, site, n)``:

* two runs with the same plan inject bit-identical fault sequences;
* draws at one site never perturb another site's stream, so adding a new
  hook point does not reshuffle existing injections.

Injection sites live in the component models (``devices/memory.py``,
``devices/rowbuffer.py``, ``metadata/remap_cache.py``,
``core/stage_area.py``) and fire *before* any traffic or statistics
accounting, so a retried operation leaves no trace of its failed
attempts — a fully recovered run differs from the fault-free run only in
latency. The injector can be ``paused`` while the controller executes a
recovery path, guaranteeing recovery itself terminates.
"""

from __future__ import annotations

import dataclasses
import zlib
from dataclasses import dataclass
from typing import Dict

from repro.common.config import ResilienceConfig
from repro.common.errors import ConfigurationError, TransientDeviceError
from repro.common.stats import CounterGroup
from repro.obs.tracer import NULL_TRACER

#: Short CLI spec keys (``--faults "read=0.01,write=0.005"``) mapped to
#: :class:`~repro.common.config.ResilienceConfig` field names.
FAULT_SPEC_KEYS: Dict[str, str] = {
    "read": "p_read_transient",
    "write": "p_write_drop",
    "remap": "p_remap_corruption",
    "stage": "p_stage_tag_corruption",
    "table": "p_table_corruption",
    "spike": "p_latency_spike",
    "row": "p_row_glitch",
}

_MASK64 = (1 << 64) - 1


def _mix64(value: int) -> int:
    """SplitMix64 finalizer: a high-quality 64-bit bijective hash."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def parse_fault_spec(spec: str) -> Dict[str, float]:
    """Parse ``"read=0.01,write=0.005"`` into ResilienceConfig kwargs."""
    out: Dict[str, float] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, value = part.partition("=")
        key = key.strip()
        if key not in FAULT_SPEC_KEYS:
            raise ConfigurationError(
                f"unknown fault kind {key!r}; choose from "
                f"{', '.join(sorted(FAULT_SPEC_KEYS))}"
            )
        if not sep:
            raise ConfigurationError(f"fault spec entry {part!r} needs key=probability")
        try:
            probability = float(value)
        except ValueError as err:
            raise ConfigurationError(f"bad probability in fault spec: {part!r}") from err
        out[FAULT_SPEC_KEYS[key]] = probability
    if not out:
        raise ConfigurationError("empty fault spec")
    return out


@dataclass(frozen=True)
class FaultPlan:
    """The seeded fault schedule: kinds, probabilities, magnitudes."""

    seed: int = 0xBA51C
    p_read_transient: float = 0.0
    p_write_drop: float = 0.0
    p_remap_corruption: float = 0.0
    p_stage_tag_corruption: float = 0.0
    p_table_corruption: float = 0.0
    p_latency_spike: float = 0.0
    latency_spike_cycles: int = 500
    p_row_glitch: float = 0.0

    @staticmethod
    def from_config(config: ResilienceConfig) -> "FaultPlan":
        return FaultPlan(
            seed=config.fault_seed,
            p_read_transient=config.p_read_transient,
            p_write_drop=config.p_write_drop,
            p_remap_corruption=config.p_remap_corruption,
            p_stage_tag_corruption=config.p_stage_tag_corruption,
            p_table_corruption=config.p_table_corruption,
            p_latency_spike=config.p_latency_spike,
            latency_spike_cycles=config.latency_spike_cycles,
            p_row_glitch=config.p_row_glitch,
        )

    def describe(self) -> Dict[str, float]:
        """Non-zero probabilities by config field name (for reporting)."""
        return {
            field.name: getattr(self, field.name)
            for field in dataclasses.fields(self)
            if field.name.startswith("p_") and getattr(self, field.name) > 0.0
        }


class FaultInjector:
    """Evaluates a :class:`FaultPlan` with per-site deterministic draws.

    Each injection site (e.g. ``"slow.read"``) owns an independent draw
    counter; the decision for draw *n* is ``hash(seed, site, n) < p``.
    ``paused`` suspends injection (recovery paths must not fault), and a
    paused call neither draws nor advances any counter, so the schedule
    of a site is a function of how often the *normal* path reaches it.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.paused = False
        self.stats = CounterGroup("faults")
        #: Observability hook point; see :mod:`repro.obs`.
        self.obs = NULL_TRACER
        self._counts: Dict[str, int] = {}
        self._site_seeds: Dict[str, int] = {}

    @property
    def active(self) -> bool:
        return not self.paused

    def _uniform(self, site: str) -> float:
        """The next deterministic U[0,1) draw of ``site``."""
        base = self._site_seeds.get(site)
        if base is None:
            base = _mix64((self.plan.seed << 1) ^ zlib.crc32(site.encode("ascii")))
            self._site_seeds[site] = base
        n = self._counts.get(site, 0)
        self._counts[site] = n + 1
        return _mix64(base + n) / 2.0 ** 64

    def _fire(self, site: str, kind: str) -> None:
        self.stats.inc(f"injected_{kind}")
        if self.obs.enabled:
            self.obs.emit("fault", site=site, kind=kind)

    # -- device hooks -------------------------------------------------------
    def on_read(self, device_name: str) -> float:
        """Device read hook: may raise a transient fault; returns the
        latency-spike penalty in cycles (0.0 almost always)."""
        if self.paused:
            return 0.0
        site = f"{device_name}.read"
        if self.plan.p_read_transient > 0.0 and (
            self._uniform(site) < self.plan.p_read_transient
        ):
            self._fire(site, "read_transient")
            raise TransientDeviceError(f"transient read failure on {device_name}", site=site)
        if device_name == "slow" and self.plan.p_latency_spike > 0.0 and (
            self._uniform(f"{site}.spike") < self.plan.p_latency_spike
        ):
            self._fire(site, "latency_spike")
            return float(self.plan.latency_spike_cycles)
        return 0.0

    def on_write(self, device_name: str) -> None:
        """Device write hook: may drop the writeback (raises, retryable)."""
        if self.paused:
            return
        site = f"{device_name}.write"
        if self.plan.p_write_drop > 0.0 and (
            self._uniform(site) < self.plan.p_write_drop
        ):
            self._fire(site, "write_drop")
            raise TransientDeviceError(f"dropped writeback on {device_name}", site=site)

    # -- metadata hooks -----------------------------------------------------
    def remap_corruption(self) -> bool:
        if self.paused or self.plan.p_remap_corruption <= 0.0:
            return False
        if self._uniform("remap_cache") < self.plan.p_remap_corruption:
            self._fire("remap_cache", "remap_corruption")
            return True
        return False

    def stage_corruption(self) -> bool:
        if self.paused or self.plan.p_stage_tag_corruption <= 0.0:
            return False
        if self._uniform("stage_tag") < self.plan.p_stage_tag_corruption:
            self._fire("stage_tag", "stage_tag_corruption")
            return True
        return False

    def table_corruption(self) -> bool:
        if self.paused or self.plan.p_table_corruption <= 0.0:
            return False
        if self._uniform("remap_table") < self.plan.p_table_corruption:
            self._fire("remap_table", "table_corruption")
            return True
        return False

    def row_glitch(self) -> bool:
        if self.paused or self.plan.p_row_glitch <= 0.0:
            return False
        if self._uniform("row_buffer") < self.plan.p_row_glitch:
            self._fire("row_buffer", "row_glitch")
            return True
        return False

    # -- accounting ---------------------------------------------------------
    def injected_total(self) -> int:
        return sum(self.stats.as_dict().values())
