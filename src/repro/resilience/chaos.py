"""Deterministic seeded orchestration-layer chaos injection.

Where :mod:`repro.resilience.faults` chaos-tests the *simulated
hardware*, this module chaos-tests the *sweep machinery itself*: the
fork pool, heartbeat channel, checkpoint/manifest writers, and signal
handling that ``run_plan`` is built from. A :class:`ChaosPlan` names the
failure kinds and probabilities; the draws reuse the same SplitMix64
hashing as :class:`~repro.resilience.faults.FaultInjector`, but with one
deliberate difference:

* **Worker-side** decisions (kill, hang, heartbeat drop/stall) are pure
  functions of ``(seed, site, cell_index, attempt[, beat])`` — keyed
  hashes, not per-site counters — because pool workers race and a
  counter shared across processes would make the schedule depend on OS
  scheduling. Keyed draws give the same injections for a given cell and
  attempt no matter which worker runs it or when.
* **Parent-side** decisions (checkpoint/manifest write effects, drain
  delays) keep the counter-per-site design of ``faults.py``: the parent
  is single-threaded, so the *n*-th write at a site is well defined.

Either way, the *merged results* of a chaos run are bit-identical to a
chaos-free run — every cell is a pure function of its seed, so chaos can
only change *which attempt* produces a payload, never the payload. The
chaos soak (``repro chaos-soak``) asserts exactly that.

Worker chaos pieces run inside the worker process
(:class:`WorkerChaos`, shipped through
:class:`~repro.parallel.telemetry.WorkerTelemetry`); the rest runs in
the parent (:class:`ChaosInjector`).
"""

from __future__ import annotations

import dataclasses
import errno
import os
import signal
import zlib
from dataclasses import dataclass
from time import monotonic, sleep
from typing import Callable, Dict, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.common.stats import CounterGroup
from repro.resilience.faults import _MASK64, _mix64

#: Short CLI spec keys (``--chaos "kill=0.2,torn=0.3"``) mapped to
#: :class:`ChaosPlan` field names. Mirrors ``FAULT_SPEC_KEYS``.
CHAOS_SPEC_KEYS: Dict[str, str] = {
    "kill": "p_kill_worker",
    "hang": "p_hang_worker",
    "hang_s": "hang_s",
    "drop": "p_drop_heartbeat",
    "stall": "p_stall_heartbeats",
    "drain": "p_delay_drain",
    "torn": "p_torn_checkpoint",
    "flip": "p_flip_checkpoint",
    "enospc": "p_enospc",
}

#: Write-effect names returned by :meth:`ChaosInjector.write_effect`.
WRITE_EFFECTS = ("torn", "flip", "enospc")


def parse_chaos_spec(spec: str) -> Dict[str, float]:
    """Parse ``"kill=0.2,torn=0.3"`` into :class:`ChaosPlan` kwargs."""
    out: Dict[str, float] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, value = part.partition("=")
        key = key.strip()
        if key not in CHAOS_SPEC_KEYS:
            raise ConfigurationError(
                f"unknown chaos kind {key!r}; choose from "
                f"{', '.join(sorted(CHAOS_SPEC_KEYS))}"
            )
        if not sep:
            raise ConfigurationError(f"chaos spec entry {part!r} needs key=value")
        try:
            number = float(value)
        except ValueError as err:
            raise ConfigurationError(f"bad value in chaos spec: {part!r}") from err
        out[CHAOS_SPEC_KEYS[key]] = number
    if not out:
        raise ConfigurationError("empty chaos spec")
    return out


def chaos_uniform(seed: int, site: str, *coords: int) -> float:
    """A schedule-independent U[0,1) draw keyed by site + coordinates.

    Pure function of its arguments — two processes (or two runs) asking
    about the same ``(seed, site, coords)`` always agree, which is what
    lets worker-side chaos stay deterministic across pool scheduling.
    """
    value = _mix64((seed << 1) ^ zlib.crc32(site.encode("ascii")))
    for coord in coords:
        value = _mix64(value ^ (coord & _MASK64))
    return _mix64(value) / 2.0 ** 64


def chaos_randint(seed: int, site: str, bound: int, *coords: int) -> int:
    """A keyed draw in ``[0, bound)`` (same determinism contract)."""
    return int(chaos_uniform(seed, site, *coords) * bound)


@dataclass(frozen=True)
class ChaosPlan:
    """The seeded orchestration-chaos schedule.

    Probabilities are per-attempt (kill/hang/stall), per-beat (drop),
    per-write (torn/flip/enospc), or per-drain (drain delay).
    ``poison_cells`` names plan indices whose worker is killed on
    *every* attempt — the input that must trip the poison-cell circuit
    breaker. ``interrupt_after_cells`` > 0 simulates an operator SIGINT
    after that many cells complete.
    """

    seed: int = 0xC7A05
    p_kill_worker: float = 0.0
    p_hang_worker: float = 0.0
    hang_s: float = 2.0
    p_drop_heartbeat: float = 0.0
    p_stall_heartbeats: float = 0.0
    stall_beats: int = 8
    p_delay_drain: float = 0.0
    drain_delay_s: float = 0.05
    p_torn_checkpoint: float = 0.0
    p_flip_checkpoint: float = 0.0
    p_enospc: float = 0.0
    poison_cells: Tuple[int, ...] = ()
    interrupt_after_cells: int = 0

    @property
    def wants_worker_chaos(self) -> bool:
        """True when any injection must run inside worker processes."""
        return bool(
            self.p_kill_worker > 0.0
            or self.p_hang_worker > 0.0
            or self.p_drop_heartbeat > 0.0
            or self.p_stall_heartbeats > 0.0
            or self.poison_cells
        )

    @property
    def active(self) -> bool:
        return bool(
            self.wants_worker_chaos
            or self.p_delay_drain > 0.0
            or self.p_torn_checkpoint > 0.0
            or self.p_flip_checkpoint > 0.0
            or self.p_enospc > 0.0
            or self.interrupt_after_cells > 0
        )

    def describe(self) -> Dict[str, float]:
        """Non-zero probabilities by field name (for reporting)."""
        out = {
            field.name: getattr(self, field.name)
            for field in dataclasses.fields(self)
            if field.name.startswith("p_") and getattr(self, field.name) > 0.0
        }
        if self.poison_cells:
            out["poison_cells"] = len(self.poison_cells)
        if self.interrupt_after_cells:
            out["interrupt_after_cells"] = self.interrupt_after_cells
        return out


class WorkerChaos:
    """Worker-side chaos schedule for one ``(cell, attempt)`` execution.

    Built inside the worker process from the picklable plan; all
    decisions are keyed draws, so the schedule is identical no matter
    which pool worker picks the task up. Hooks into the heartbeat path
    (:meth:`on_beat`) because beats are the only periodic callback the
    worker already has — a kill or hang therefore lands *mid-cell*, at a
    beat boundary, which is exactly the failure mode dead/hung-worker
    detection must catch.
    """

    #: Kills/hangs land within the first few beats so small test cells
    #: (a handful of beats total) still exercise them.
    _EARLY_BEATS = 3

    def __init__(self, plan: ChaosPlan, cell_index: int, attempt: int) -> None:
        self.plan = plan
        self.cell_index = cell_index
        self.attempt = attempt
        self._beats = 0
        seed = plan.seed
        self.kill_at = -1
        if cell_index in plan.poison_cells:
            # A poison cell dies on every attempt: that is the input the
            # circuit breaker exists for.
            self.kill_at = 1 + chaos_randint(
                seed, "worker.poison", self._EARLY_BEATS, cell_index, attempt
            )
        elif plan.p_kill_worker > 0.0 and (
            chaos_uniform(seed, "worker.kill", cell_index, attempt)
            < plan.p_kill_worker
        ):
            self.kill_at = 1 + chaos_randint(
                seed, "worker.kill_at", self._EARLY_BEATS, cell_index, attempt
            )
        self.hang_at = -1
        if self.kill_at < 0 and plan.p_hang_worker > 0.0 and (
            chaos_uniform(seed, "worker.hang", cell_index, attempt)
            < plan.p_hang_worker
        ):
            self.hang_at = 1 + chaos_randint(
                seed, "worker.hang_at", self._EARLY_BEATS, cell_index, attempt
            )
        self.stall_from = -1
        if plan.p_stall_heartbeats > 0.0 and (
            chaos_uniform(seed, "worker.stall", cell_index, attempt)
            < plan.p_stall_heartbeats
        ):
            self.stall_from = 1 + chaos_randint(
                seed, "worker.stall_at", self._EARLY_BEATS, cell_index, attempt
            )

    def _dropped(self, beat: int) -> bool:
        if self.stall_from >= 0 and (
            self.stall_from <= beat < self.stall_from + self.plan.stall_beats
        ):
            return True
        return self.plan.p_drop_heartbeat > 0.0 and (
            chaos_uniform(
                self.plan.seed, "worker.drop",
                self.cell_index, self.attempt, beat,
            )
            < self.plan.p_drop_heartbeat
        )

    def on_beat(self, emit: Callable[[dict], None], event: dict) -> None:
        """Filter one heartbeat through the chaos schedule.

        May kill the process (SIGKILL — indistinguishable from an OOM
        kill), hang (keep re-emitting the same frozen-progress beat for
        ``hang_s``, then resume — alive but stalled), or swallow the
        beat. Otherwise forwards ``event`` to ``emit``.
        """
        beat = self._beats
        self._beats += 1
        if beat == self.kill_at:
            os.kill(os.getpid(), signal.SIGKILL)
        if beat == self.hang_at:
            deadline = monotonic() + self.plan.hang_s
            while monotonic() < deadline:
                emit(dict(event))  # frozen ``done``: beating, not progressing
                sleep(0.1)
            # fall through: the worker resumes, but by now the parent has
            # usually requeued the cell and abandoned this attempt.
        if self._dropped(beat):
            return
        emit(event)


def write_effect_mutator(effect: Optional[str]) -> Optional[Callable[[int, str], None]]:
    """The ``mutate`` hook for :func:`repro.common.fsio.durable_replace`
    realizing a checkpoint-write effect.

    ``"torn"`` truncates the payload to ~2/3 (a torn page writeback
    surviving the rename), ``"flip"`` flips one bit in the middle
    (silent media corruption), ``"enospc"`` raises ``OSError(ENOSPC)``
    before anything reaches disk. ``None`` means write faithfully.
    """
    if effect is None:
        return None
    if effect not in WRITE_EFFECTS:
        raise ConfigurationError(f"unknown write effect {effect!r}")

    def mutate(fd: int, tmp_path: str) -> None:
        if effect == "enospc":
            raise OSError(errno.ENOSPC, "No space left on device (injected)")
        size = os.fstat(fd).st_size
        if effect == "torn":
            os.ftruncate(fd, (size * 2) // 3)
        elif effect == "flip" and size > 0:
            offset = size // 2
            byte = os.pread(fd, 1, offset)
            os.pwrite(fd, bytes([byte[0] ^ 0x01]), offset)

    return mutate


class ChaosInjector:
    """Parent-side chaos: write effects, drain delays, interrupts.

    Counter-per-site draws like :class:`FaultInjector` — the parent loop
    is single-threaded, so the *n*-th draw at a site is well defined.
    ``stats`` counts everything injected (worker-side injections are
    inferred by the runner from requeue reasons, since a SIGKILLed
    worker cannot report its own death).
    """

    def __init__(self, plan: ChaosPlan) -> None:
        self.plan = plan
        self.stats = CounterGroup("chaos")
        self._counts: Dict[str, int] = {}
        self._interrupted = False

    def _uniform(self, site: str) -> float:
        n = self._counts.get(site, 0)
        self._counts[site] = n + 1
        return chaos_uniform(self.plan.seed, site, n)

    def write_effect(self, site: str) -> Optional[str]:
        """The effect (if any) to apply to the next write at ``site``
        (``"checkpoint"`` or ``"manifest"``)."""
        plan = self.plan
        if plan.p_enospc > 0.0 and self._uniform(f"{site}.enospc") < plan.p_enospc:
            self.stats.inc(f"injected_{site}_enospc")
            return "enospc"
        if site == "checkpoint":
            if plan.p_torn_checkpoint > 0.0 and (
                self._uniform("checkpoint.torn") < plan.p_torn_checkpoint
            ):
                self.stats.inc("injected_checkpoint_torn")
                return "torn"
            if plan.p_flip_checkpoint > 0.0 and (
                self._uniform("checkpoint.flip") < plan.p_flip_checkpoint
            ):
                self.stats.inc("injected_checkpoint_flip")
                return "flip"
        return None

    def drain_delay(self) -> float:
        """Seconds to dawdle before draining the heartbeat queue (models
        a parent busy elsewhere while beats pile up)."""
        plan = self.plan
        if plan.p_delay_drain > 0.0 and (
            self._uniform("drain.delay") < plan.p_delay_drain
        ):
            self.stats.inc("injected_drain_delay")
            return plan.drain_delay_s
        return 0.0

    def should_interrupt(self, completed_cells: int) -> bool:
        """True exactly once, when ``interrupt_after_cells`` is reached —
        the runner then behaves as if SIGINT arrived."""
        if (
            not self._interrupted
            and self.plan.interrupt_after_cells > 0
            and completed_cells >= self.plan.interrupt_after_cells
        ):
            self._interrupted = True
            self.stats.inc("injected_interrupt")
            return True
        return False

    def injected_total(self) -> int:
        return sum(self.stats.as_dict().values())
