"""Fault injection, recovery, and crash-safe sweeps (``repro.resilience``).

Three coordinated pieces:

* :mod:`~repro.resilience.faults` — a seeded, deterministic
  :class:`FaultPlan`/:class:`FaultInjector` pair hooked into the device
  and metadata models;
* :mod:`~repro.resilience.recovery` — :class:`RecoveryManager`, the
  controller's bounded-retry/backoff engine and recovery scoreboard;
* :mod:`~repro.resilience.checker` — :class:`ShadowChecker`, a shadow
  remap table plus R1-R4 validation on every commit;
* :mod:`~repro.resilience.checkpoint` — durable, fingerprinted JSONL
  checkpoints (per-cell digests + salvage) that let
  ``run_matrix(..., resume=path)`` skip finished cells after a crash;
* :mod:`~repro.resilience.chaos` — seeded *orchestration-layer* chaos
  (worker kills/hangs, heartbeat loss, torn/ENOSPC checkpoint writes,
  simulated operator interrupts) for soak-testing the sweep runner
  itself.

Everything is opt-in through
:class:`~repro.common.config.ResilienceConfig`; with
``BaryonConfig.resilience`` left as ``None`` the hot path is untouched.

See ``docs/resilience.md`` for the fault model and recovery state machine.
"""

from repro.resilience.chaos import (
    CHAOS_SPEC_KEYS,
    ChaosInjector,
    ChaosPlan,
    WorkerChaos,
    parse_chaos_spec,
)
from repro.resilience.checker import ShadowChecker
from repro.resilience.checkpoint import (
    CHECKPOINT_MAGIC,
    CHECKPOINT_VERSION,
    FINGERPRINT_VERSION,
    cell_fingerprint,
    load_checkpoint,
    plan_fingerprint,
    salvage_checkpoint,
    write_checkpoint,
)
from repro.resilience.faults import (
    FAULT_SPEC_KEYS,
    FaultInjector,
    FaultPlan,
    parse_fault_spec,
)
from repro.resilience.recovery import RecoveryManager

__all__ = [
    "CHAOS_SPEC_KEYS",
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "ChaosInjector",
    "ChaosPlan",
    "FAULT_SPEC_KEYS",
    "FINGERPRINT_VERSION",
    "FaultInjector",
    "FaultPlan",
    "RecoveryManager",
    "ShadowChecker",
    "WorkerChaos",
    "cell_fingerprint",
    "load_checkpoint",
    "parse_chaos_spec",
    "parse_fault_spec",
    "plan_fingerprint",
    "salvage_checkpoint",
    "write_checkpoint",
]
