"""Continuous shadow-memory invariant checker.

The checker mirrors every authoritative :class:`~repro.metadata.remap.RemapTable`
update into a shadow copy kept outside the modelled metadata path. That
gives fault injection a detector: when the injector corrupts a table read,
the checker notices the divergence from shadow truth and the controller
repairs the entry (counted, plus a charged metadata write). Without the
checker such corruption would be a silent wrong result — which is why
:class:`~repro.common.config.ResilienceConfig` refuses
``p_table_corruption > 0`` unless ``check_invariants`` is on.

On every commit it also re-validates the paper's layout rules over the
affected super-block:

* **R1** — a sub-block is never simultaneously staged and committed;
* **R2** — compressed ranges are aligned/contiguous
  (:meth:`RemapEntry.validate`);
* **R3/R4** — the compact encoding round-trips bit-exactly, i.e. the
  sorted-frozen slot layout is reconstructible from Remap/CF2/CF4 bits
  alone, and the physical block's slot budget is respected.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.common.errors import CorruptionError, MetadataError
from repro.common.stats import CounterGroup
from repro.metadata.remap import RemapEntry
from repro.metadata.stage_tag import StageTagEntry
from repro.obs.tracer import NULL_TRACER

_IDENTITY = RemapEntry()


def _signature(entry: RemapEntry):
    return (entry.remap, entry.pointer, entry.cf2, entry.cf4, entry.zero)


class ShadowChecker:
    """Shadow remap table + R1-R4 commit validation."""

    def __init__(self, pointer_bits: int = 2) -> None:
        self.pointer_bits = pointer_bits
        self.stats = CounterGroup("checker")
        #: Observability hook point; see :mod:`repro.obs`.
        self.obs = NULL_TRACER
        self._shadow: Dict[int, RemapEntry] = {}

    # -- RemapTable observer hooks ------------------------------------------
    def on_set(self, block_id: int, entry: RemapEntry) -> None:
        if entry.is_remapped:
            self._shadow[block_id] = dataclasses.replace(entry)
        else:
            self._shadow.pop(block_id, None)

    def on_clear(self, block_id: int) -> None:
        self._shadow.pop(block_id, None)

    def shadow_entry(self, block_id: int) -> RemapEntry:
        entry = self._shadow.get(block_id)
        return entry if entry is not None else _IDENTITY

    def __len__(self) -> int:
        return len(self._shadow)

    # -- read-path verification ---------------------------------------------
    def verified_get(
        self, block_id: int, entry: RemapEntry, corrupted: bool = False
    ) -> RemapEntry:
        """Cross-check a table read against the shadow copy.

        ``corrupted`` marks an injected corruption of this read: the
        checker counts the detection and returns the shadow-true entry
        (the repair the controller then writes back). A mismatch *without*
        injection is a real inconsistency and raises.
        """
        truth = self.shadow_entry(block_id)
        if corrupted:
            self.stats.inc("corruptions_detected")
            self.stats.inc("entries_repaired")
            if self.obs.enabled:
                self.obs.emit(
                    "recovery", action="table_repair", site="remap_table",
                    attempt=None,
                )
            return dataclasses.replace(truth) if truth is not _IDENTITY else _IDENTITY
        self.stats.inc("reads_verified")
        if _signature(entry) != _signature(truth):
            raise CorruptionError(
                f"remap table entry for block {block_id} diverged from shadow",
                site="remap_table",
                block_id=block_id,
            )
        return entry

    # -- commit-time validation ---------------------------------------------
    def check_commit(
        self,
        super_id: int,
        *,
        table,
        stage,
        fa_state=None,
        snapshot: Optional[StageTagEntry] = None,
        blocks_per_super: int = 8,
        slots_per_block: int = 8,
    ) -> None:
        """Validate R1-R4 for one super-block after a commit.

        Called with the stage entry already invalidated (``snapshot`` is
        its pre-invalidation copy) and the committed state installed, so
        staged/committed exclusivity must hold unconditionally.
        """
        self.stats.inc("commit_checks")
        base = super_id * blocks_per_super
        for off in range(blocks_per_super):
            block_id = base + off
            entry = table.get(block_id)
            try:
                entry.validate()  # R2: aligned, contiguous, consistent ranges
            except MetadataError as err:
                raise CorruptionError(
                    f"R2 violated for block {block_id}: {err}",
                    site="remap_table",
                    block_id=block_id,
                ) from err
            if _signature(entry) != _signature(self.shadow_entry(block_id)):
                raise CorruptionError(
                    f"shadow divergence at commit for block {block_id}",
                    site="remap_table",
                    block_id=block_id,
                )
            if not entry.is_remapped:
                continue
            # R3/R4: the compact encoding must reconstruct the frozen
            # layout exactly (pointer width permitting).
            if entry.num_subs == 8 and entry.pointer < (1 << self.pointer_bits):
                decoded = RemapEntry.decode(
                    entry.encode(self.pointer_bits), self.pointer_bits
                )
                if _signature(decoded) != _signature(entry):
                    raise CorruptionError(
                        f"remap entry round-trip mismatch for block {block_id}",
                        site="remap_table",
                        block_id=block_id,
                    )
            if entry.occupied_slots() > slots_per_block:
                raise CorruptionError(
                    f"R4 violated: block {block_id} occupies "
                    f"{entry.occupied_slots()} > {slots_per_block} slots",
                    site="remap_table",
                    block_id=block_id,
                )
            # R1: a committed sub-block must no longer be staged.
            if entry.zero:
                continue
            for sub in range(entry.num_subs):
                if not entry.sub_block_remapped(sub):
                    continue
                if stage.lookup_sub_block(super_id, off, sub) is not None:
                    raise CorruptionError(
                        f"R1 violated: sub-block {sub} of block {block_id} "
                        "is both staged and committed",
                        site="stage_tag",
                        block_id=block_id,
                    )
        if fa_state is not None:
            expected = sum(fa_state.committed.values())
            if fa_state.slots_used != expected or fa_state.slots_used > slots_per_block:
                raise CorruptionError(
                    f"R4 violated: fast block for super {super_id} reports "
                    f"{fa_state.slots_used} slots, layout holds {expected}",
                    site="fast_area",
                    block_id=super_id,
                )
        # Data round-trip of the just-retired stage entry: the 108-bit
        # tag encoding must reproduce every slot bit-exactly.
        if (
            snapshot is not None
            and len(snapshot.slots) == 8
            and snapshot.tag < (1 << 21)
        ):
            try:
                decoded = StageTagEntry.decode(snapshot.encode())
            except MetadataError as err:
                raise CorruptionError(
                    f"stage tag entry of super {super_id} failed to encode: {err}",
                    site="stage_tag",
                    block_id=super_id,
                ) from err
            if (
                decoded.slots != snapshot.slots
                or decoded.valid != snapshot.valid
                or decoded.tag != snapshot.tag
                or decoded.miss_count != snapshot.miss_count
            ):
                raise CorruptionError(
                    f"stage tag round-trip mismatch for super {super_id}",
                    site="stage_tag",
                    block_id=super_id,
                )
