"""Differential checking: one trace, every design, identical served data.

Correct memory management is invisible to software: whatever Baryon
variant (cache scheme, flat scheme, fully-associative flat, 64 B
sub-blocks) or baseline (SimpleCache, Unison, DICE, Hybrid2) manages the
hybrid memory, a read must return the bytes last written to its address.
The differential checker replays one trace through all of them and
asserts the served-read streams are bit-identical.

The Baryon variants run as :class:`ContentBackedController`, so their
stream is produced by the real staging/commit/swap machinery; the
baselines are content-transparent (their accounting moves no data) and
run behind the :class:`GoldenReference` shim, which serves the golden
write-token model directly. Any variant diverging from that stream has
lost or misplaced data somewhere in its movement machinery.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.experiments import build_controller
from repro.common.config import BaryonConfig
from repro.common.errors import OracleViolation
from repro.validation.content import ContentBackedController, GoldenReference, replay

#: Baryon variants checked content-backed, in report order.
BARYON_VARIANTS = ("cache", "flat", "fa", "64b")
#: Baselines checked through the golden-reference shim.
BASELINE_DESIGNS = ("simple", "unison", "dice", "hybrid2")


def variant_config(config: BaryonConfig, variant: str) -> BaryonConfig:
    """Derive one Baryon variant's config from the cache-scheme base."""
    if variant == "cache":
        return config
    if variant == "flat":
        layout = dataclasses.replace(config.layout, flat_fraction=0.75)
        return dataclasses.replace(config, layout=layout)
    if variant == "fa":
        layout = dataclasses.replace(
            config.layout, flat_fraction=0.75, fully_associative=True
        )
        return dataclasses.replace(config, layout=layout)
    if variant == "64b":
        return config.with_sub_block_size(64)
    raise ValueError(f"unknown variant {variant!r}; choose from {BARYON_VARIANTS}")


def run_differential(
    config: BaryonConfig,
    trace: Sequence[Tuple[int, bool]],
    seed: int = 0,
    variants: Iterable[str] = BARYON_VARIANTS,
    baselines: Iterable[str] = BASELINE_DESIGNS,
    inject_bug: Optional[str] = None,
) -> Dict[str, List[int]]:
    """Replay ``trace`` through every design; raise on any divergence.

    Returns the per-design served-read streams on success. Raises
    :class:`OracleViolation` — ``kind="stale_read"``/``"conservation"``
    from inside a content-backed variant, or ``kind="differential"``
    when two designs' streams disagree (reporting the first divergent
    read and both values).
    """
    streams: Dict[str, List[int]] = {}
    for variant in variants:
        controller = ContentBackedController(
            variant_config(config, variant), seed=seed, inject_bug=inject_bug
        )
        replay(controller, trace)
        streams[f"baryon-{variant}"] = controller.served_reads
    for design in baselines:
        shim = GoldenReference(build_controller(design, config, seed=seed))
        replay(shim, trace)
        streams[design] = shim.served_reads
    _compare_streams(streams, trace)
    return streams


def _compare_streams(
    streams: Dict[str, List[int]], trace: Sequence[Tuple[int, bool]]
) -> None:
    names = list(streams)
    reference_name = names[0]
    reference = streams[reference_name]
    read_addrs = [addr for addr, is_write in trace if not is_write]
    for name in names[1:]:
        other = streams[name]
        if other == reference:
            continue
        index = next(
            (i for i, (a, b) in enumerate(zip(reference, other)) if a != b),
            min(len(reference), len(other)),
        )
        addr = read_addrs[index] if index < len(read_addrs) else None
        expected = reference[index] if index < len(reference) else None
        got = other[index] if index < len(other) else None
        raise OracleViolation(
            f"designs {reference_name} and {name} served different data at "
            f"read #{index}"
            + (f" (addr {addr:#x})" if addr is not None else "")
            + f": {expected} vs {got}",
            kind="differential", addr=addr, access_index=index,
            location=name, expected=expected, got=got,
        )
