"""Differential-oracle validation subsystem.

Three layers of end-to-end data-integrity checking for the controller:

* :mod:`repro.validation.content` — content-backed oracle mode: a
  :class:`~repro.validation.content.ContentBackedController` threads a
  write-token value through every data movement (staging, commit,
  eviction, swaps, home displacement) and asserts every read returns
  the last-written value, plus conservation invariants (each sub-block
  resident in exactly one tier).
* :mod:`repro.validation.differential` — replays one trace through all
  Baryon variants and the baselines and asserts bit-identical served
  data.
* :mod:`repro.validation.fuzz` / :mod:`~repro.validation.minimize` /
  :mod:`~repro.validation.emit` — seeded trace fuzzing, ddmin trace
  minimization and pytest regression-fixture emission.

CLI: ``python -m repro validate --fuzz N --seed S``. Docs:
``docs/validation.md``.
"""

from repro.common.errors import OracleViolation
from repro.validation.content import (
    ContentBackedController,
    GoldenReference,
    INJECTABLE_BUGS,
    replay,
)
from repro.validation.differential import (
    BARYON_VARIANTS,
    BASELINE_DESIGNS,
    run_differential,
    variant_config,
)
from repro.validation.emit import emit_fixture, run_fixture
from repro.validation.fuzz import (
    FuzzFailure,
    FuzzReport,
    generate_trace,
    make_tiny_config,
    run_batched_case,
    run_case,
    run_fuzz,
    sample_config_kwargs,
    selftest_case,
)
from repro.validation.minimize import ddmin

__all__ = [
    "BARYON_VARIANTS",
    "BASELINE_DESIGNS",
    "ContentBackedController",
    "FuzzFailure",
    "FuzzReport",
    "GoldenReference",
    "INJECTABLE_BUGS",
    "OracleViolation",
    "ddmin",
    "emit_fixture",
    "generate_trace",
    "make_tiny_config",
    "replay",
    "run_batched_case",
    "run_case",
    "run_differential",
    "run_fixture",
    "run_fuzz",
    "sample_config_kwargs",
    "selftest_case",
    "variant_config",
]
