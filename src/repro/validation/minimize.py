"""Delta debugging: shrink a failing trace to a minimal reproducer.

A fuzzer-found violation typically sits at the end of hundreds of
records, most of which are irrelevant. :func:`ddmin` is Zeller's
classic delta-debugging minimizer: it repeatedly tries dropping chunks
(complements of an ever-finer partition) of the trace, keeping any
subset that still fails, until the result is 1-minimal — removing any
single record makes the failure disappear. The output is small enough
to read, reason about, and freeze as a pytest regression fixture (see
:mod:`repro.validation.emit`).
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

TraceRecord = Tuple[int, bool]


def ddmin(
    trace: Sequence[TraceRecord],
    fails: Callable[[Sequence[TraceRecord]], bool],
    max_tests: int = 10_000,
) -> List[TraceRecord]:
    """Return a 1-minimal subsequence of ``trace`` on which ``fails`` holds.

    ``fails`` must be deterministic and return True for ``trace`` itself
    (checked). ``max_tests`` bounds the number of predicate evaluations;
    on exhaustion the best reduction found so far is returned (still a
    failing trace, merely not guaranteed 1-minimal).
    """
    current = list(trace)
    if not fails(current):
        raise ValueError("ddmin needs a failing input to minimize")
    tests = 0
    granularity = 2
    while len(current) >= 2:
        chunk = len(current) // granularity or 1
        reduced = False
        start = 0
        while start < len(current):
            candidate = current[:start] + current[start + chunk:]
            tests += 1
            if tests > max_tests:
                return current
            if candidate and fails(candidate):
                current = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                # Re-test from the same offset: the records that moved
                # into this window are exactly the ones not yet tried.
            else:
                start += chunk
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)
    return current
