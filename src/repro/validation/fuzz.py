"""Deterministic trace fuzzing for the content oracle.

Random traces through random tiny configurations exercise controller
paths no hand-written test reaches: stage overflow under every toggle
combination, commits racing home displacement, zero-block breaks in the
flat scheme, 64 B sub-blocking, the no-stage ablation. Everything is
seeded — an iteration is fully reproduced by ``(seed, iteration)`` — so
any violation the fuzzer finds can be replayed, delta-debugged
(:mod:`repro.validation.minimize`) and frozen as a pytest fixture
(:mod:`repro.validation.emit`).
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.config import (
    BaryonConfig,
    CommitConfig,
    CompressionConfig,
    HybridLayout,
    StageConfig,
)
from repro.common.errors import OracleViolation
from repro.common.stats import CounterGroup
from repro.validation.content import ContentBackedController, replay

KB = 1024
TraceRecord = Tuple[int, bool]


def make_tiny_config(
    fast_kb: int = 64,
    ratio: int = 8,
    stage_kb: int = 4,
    stage_ways: int = 2,
    flat: float = 0.0,
    fully_associative: bool = False,
    stage_enabled: bool = True,
    sub_block_size: Optional[int] = None,
    compression_enabled: bool = True,
    compressed_writeback: bool = True,
    two_level_replacement: bool = True,
    share_physical_blocks: bool = True,
    cacheline_aligned: bool = True,
    zero_block_support: bool = True,
    commit_all: bool = False,
    stability_only: bool = False,
) -> BaryonConfig:
    """A deliberately tiny configuration for fast, stressful fuzzing.

    Small capacities force constant replacement/commit/swap traffic, so a
    few hundred accesses visit every movement path. All parameters are
    plain scalars so a sampled configuration round-trips through the
    emitted fixture's ``CONFIG_KWARGS`` literal.
    """
    layout = HybridLayout(
        fast_capacity=fast_kb * KB,
        slow_capacity=ratio * fast_kb * KB,
        associativity=4,
        flat_fraction=flat,
        fully_associative=fully_associative,
    )
    stage = StageConfig(
        size_bytes=stage_kb * KB,
        ways=stage_ways,
        enabled=stage_enabled,
        aging_period_accesses=64,
    )
    compression = CompressionConfig(
        cacheline_aligned=cacheline_aligned,
        zero_block_support=zero_block_support,
    )
    commit = CommitConfig(commit_all=commit_all, stability_only=stability_only)
    config = dataclasses.replace(
        BaryonConfig(),
        layout=layout,
        stage=stage,
        compression=compression,
        commit=commit,
        compression_enabled=compression_enabled,
        compressed_writeback=compressed_writeback,
        two_level_replacement=two_level_replacement,
        share_physical_blocks=share_physical_blocks,
    )
    if sub_block_size is not None:
        config = config.with_sub_block_size(sub_block_size)
    return config


def sample_config_kwargs(rng: random.Random) -> Dict:
    """Draw one :func:`make_tiny_config` parameterization."""
    kwargs: Dict = {
        "fast_kb": rng.choice([64, 128, 256]),
        "ratio": rng.choice([4, 8]),
        "stage_kb": rng.choice([4, 8, 16]),
        "stage_ways": rng.choice([2, 4]),
        "flat": rng.choice([0.0, 0.0, 0.75, 1.0]),
        "stage_enabled": rng.random() > 0.15,
        "compression_enabled": rng.random() > 0.25,
        "compressed_writeback": rng.random() > 0.5,
        "two_level_replacement": rng.random() > 0.25,
        "share_physical_blocks": rng.random() > 0.25,
        "cacheline_aligned": rng.random() > 0.5,
        "zero_block_support": rng.random() > 0.5,
    }
    if kwargs["flat"] > 0 and rng.random() > 0.5:
        kwargs["fully_associative"] = True
    if rng.random() > 0.8:
        kwargs["sub_block_size"] = 64
    commit = rng.random()
    if commit > 0.85:
        kwargs["commit_all"] = True
    elif commit > 0.7:
        kwargs["stability_only"] = True
    # stage blocks must divide evenly into ways
    if (kwargs["stage_kb"] * KB) // 2048 < kwargs["stage_ways"]:
        kwargs["stage_ways"] = 2
    return kwargs


def generate_trace(
    rng: random.Random, config: BaryonConfig, n_accesses: int = 600
) -> List[TraceRecord]:
    """A seeded workload with enough locality to stage and commit.

    Accesses concentrate on a small hot set of super-blocks (so stage
    phases complete and commits happen) with a cold tail (so evictions,
    swaps and zero-block fetches happen), mixing sequential bursts with
    random single accesses at a configurable write fraction.
    """
    g = config.geometry
    span_bytes = config.layout.fast_capacity + config.layout.slow_capacity
    n_supers = max(2, span_bytes // g.super_block_size)
    hot = rng.sample(range(n_supers), min(n_supers, rng.randint(4, 12)))
    write_fraction = rng.uniform(0.2, 0.6)
    trace: List[TraceRecord] = []
    while len(trace) < n_accesses:
        super_id = (
            rng.choice(hot) if rng.random() < 0.85 else rng.randrange(n_supers)
        )
        base = super_id * g.super_block_size
        offset = rng.randrange(g.super_block_size // g.cacheline_size)
        addr = base + offset * g.cacheline_size
        if rng.random() < 0.3:
            # Sequential burst: consecutive cachelines, one r/w mode.
            is_write = rng.random() < write_fraction
            for step in range(rng.randint(2, 8)):
                line_addr = addr + step * g.cacheline_size
                if line_addr >= base + g.super_block_size:
                    break
                trace.append((line_addr, is_write))
        else:
            trace.append((addr, rng.random() < write_fraction))
    return trace[:n_accesses]


@dataclass
class FuzzFailure:
    """One fuzzer-found violation, with everything needed to replay it."""

    iteration: int
    config_kwargs: Dict
    seed: int
    trace: List[TraceRecord]
    error: OracleViolation
    minimized: Optional[List[TraceRecord]] = None


@dataclass
class FuzzReport:
    iterations: int = 0
    accesses: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)
    stats: CounterGroup = field(
        default_factory=lambda: CounterGroup("repro_validation")
    )

    @property
    def ok(self) -> bool:
        return not self.failures


def run_case(
    config_kwargs: Dict,
    trace: List[TraceRecord],
    seed: int,
    inject_bug: Optional[str] = None,
) -> ContentBackedController:
    """Replay one (config, trace) case content-backed; raises on violation."""
    controller = ContentBackedController(
        make_tiny_config(**config_kwargs), seed=seed, inject_bug=inject_bug
    )
    return replay(controller, trace)


def _group_dict(group) -> Dict:
    return group.as_dict() if hasattr(group, "as_dict") else dict(group)


def _scalar_replay(controller, trace: List[TraceRecord], mlp: float) -> float:
    """Plain ``access`` replay; returns the finishing clock."""
    cycles = 0.0
    for addr, is_write in trace:
        mem = controller.access(addr, is_write, cycles)
        if not is_write:
            cycles += mem.latency_cycles / mlp
    return cycles


def _assert_twin_match(scalar_ctrl, twin_ctrl, cycles: float,
                       twin_cycles: float, path: str) -> None:
    """Raise ``batched_divergence`` unless the twin matches bit-for-bit."""
    groups = [
        ("controller", scalar_ctrl.stats, twin_ctrl.stats),
        ("fast_device", scalar_ctrl.devices.fast.stats,
         twin_ctrl.devices.fast.stats),
        ("slow_device", scalar_ctrl.devices.slow.stats,
         twin_ctrl.devices.slow.stats),
    ]
    if hasattr(scalar_ctrl, "remap_cache"):
        groups.append(
            ("remap_cache", scalar_ctrl.remap_cache.stats,
             twin_ctrl.remap_cache.stats)
        )
    for name, scalar_group, twin_group in groups:
        scalar_counts = _group_dict(scalar_group)
        twin_counts = _group_dict(twin_group)
        if scalar_counts != twin_counts:
            key = next(
                k for k in sorted(set(scalar_counts) | set(twin_counts))
                if scalar_counts.get(k) != twin_counts.get(k)
            )
            raise OracleViolation(
                f"{path} seam diverged in {name} counter {key!r}: "
                f"{scalar_counts.get(key)} vs {twin_counts.get(key)}",
                kind="batched_divergence", location=f"{name}.{key}",
            )
    if twin_cycles != cycles:
        raise OracleViolation(
            f"{path} seam diverged in cycles: {cycles} vs {twin_cycles}",
            kind="batched_divergence", location="cycles",
        )
    columnar = getattr(twin_ctrl, "columnar", None)
    if columnar is not None:
        columnar.verify()


def run_batched_case(config_kwargs: Dict, trace: List[TraceRecord], seed: int) -> None:
    """Replay one fuzz case across the deferred-batch seam; raise on drift.

    The batched controller configuration is *forced*: fault injection off,
    the synthetic compressibility oracle on — exactly the shape for which
    ``BaryonController.supports_batching`` holds. One controller replays
    the trace through plain ``access`` calls; a twin replays it the way
    the simulator's deferred span does — ``access_deferred`` applies state
    eagerly in trace order and ``access_batch`` replays the channel timing
    at every unsafe-access flush. Both must finish with bit-identical
    counters (controller, devices, remap cache) and the same clock, and
    the batched twin's columnar arena must verify against its object
    state. Raises :class:`OracleViolation` (``kind="batched_divergence"``)
    otherwise.
    """
    from repro.core import BaryonController

    config = make_tiny_config(**config_kwargs)
    scalar_ctrl = BaryonController(config, seed=seed)
    batched_ctrl = BaryonController(make_tiny_config(**config_kwargs), seed=seed)
    if not getattr(batched_ctrl, "supports_batching", False):
        raise OracleViolation(
            "forced batched configuration does not support batching",
            kind="batched_divergence", location="supports_batching",
        )
    mlp = 4.0
    cycles = _scalar_replay(scalar_ctrl, trace, mlp)

    b_cycles = 0.0
    ops: List = []
    deferred = batched_ctrl.access_deferred
    batch = batched_ctrl.access_batch
    for addr, is_write in trace:
        op = deferred(addr, is_write)
        if op is not None:
            ops.append(op)
            continue
        if ops:
            b_cycles = batch(ops, b_cycles, mlp)
            ops.clear()
        mem = batched_ctrl.access(addr, is_write, b_cycles)
        if not is_write:
            b_cycles += mem.latency_cycles / mlp
    if ops:
        b_cycles = batch(ops, b_cycles, mlp)

    _assert_twin_match(scalar_ctrl, batched_ctrl, cycles, b_cycles, "batched")


def run_classified_case(
    config_kwargs: Dict,
    trace: List[TraceRecord],
    seed: int,
    rng: random.Random,
) -> bool:
    """Replay one fuzz case through the vectorized classifier + server.

    This is the simulator's actual hot path (``make_run_classifier``
    gathers bulk verdicts, ``make_deferred_server`` serves them inline)
    driven the way ``SystemSimulator._deferred_span`` drives it — but
    under adversarial scheduling: the gather chunk is randomized down to
    a single op (so chunk boundaries land on and around declines), and
    random span boundaries force batch-replay/flush points mid-run, the
    same write-back points progress chunking introduces. Counters,
    cycles and the columnar arena must still match the plain scalar
    replay bit for bit.

    Returns ``True`` when the twin check ran. Configurations for which
    the controller declines to build a server (e.g. a non-LRU fast
    area) are skipped with ``False`` — the simulator would fall back to
    the per-op seam there, which :func:`run_batched_case` covers.
    """
    import numpy as np

    from repro.core import BaryonController
    from repro.core.columnar import CLS_DECLINE_STAGING_FETCH, DECLINE_REASONS

    v_ctrl = BaryonController(make_tiny_config(**config_kwargs), seed=seed)
    if not getattr(v_ctrl, "supports_batching", False):
        raise OracleViolation(
            "forced batched configuration does not support batching",
            kind="batched_divergence", location="supports_batching",
        )
    addrs = np.asarray([addr for addr, _ in trace], dtype=np.int64)
    writes = np.asarray([w for _, w in trace], dtype=np.bool_)
    classifier = v_ctrl.make_run_classifier(addrs, writes)
    server = v_ctrl.make_deferred_server(
        None if classifier is None else classifier.dirty_blocks
    )
    if server is None:
        return False
    serve, server_flush, batch = server
    mlp = 4.0
    scalar_ctrl = BaryonController(make_tiny_config(**config_kwargs), seed=seed)
    cycles = _scalar_replay(scalar_ctrl, trace, mlp)
    if classifier is not None:
        # Tiny chunks force verdict boundaries onto (and right after)
        # decline sites; large ones exercise verdict staleness.
        classifier.chunk = rng.choice([1, 2, 3, 5, 8, 32, 4096])
        declines = v_ctrl.deferred_declines
        reason_of = DECLINE_REASONS
        sf_code = CLS_DECLINE_STAGING_FETCH
        dirty = classifier.dirty_blocks
        block_size = classifier.block_size
        chunk = classifier.chunk
        codes = auxes = None
    n = len(trace)
    # Forced replay boundaries, as progress chunking would place them.
    boundary = rng.randrange(1, n + 1) if rng.random() < 0.7 else n + 1

    v_cycles = 0.0
    ops: List = []
    cls_base = cls_end = 0
    for i, (addr, is_write) in enumerate(trace):
        if i == boundary:
            if ops:
                v_cycles = batch(ops, v_cycles, mlp)
                ops.clear()
            server_flush()
            cls_end = i  # span boundary: the next op re-gathers
            boundary += rng.randrange(1, max(2, n // 4))
        if classifier is None:
            op = serve(addr, is_write, 0, 0)
        else:
            if i >= cls_end:
                cls_base = i
                cls_end = min(n, i + chunk)
                codes, auxes = classifier.classify(cls_base, cls_end)
            code = codes[i - cls_base]
            if code > 0:
                op = serve(addr, is_write, code, auxes[i - cls_base])
            elif code == 0:
                op = serve(addr, is_write, 0, 0)
            elif code == sf_code or addr // block_size in dirty:
                op = serve(addr, is_write, 0, 0)
            else:
                declines[reason_of[code]] += 1
                op = None
        if op is not None:
            ops.append(op)
            continue
        if ops:
            v_cycles = batch(ops, v_cycles, mlp)
            ops.clear()
        server_flush()
        mem = v_ctrl.access(addr, is_write, v_cycles)
        if not is_write:
            v_cycles += mem.latency_cycles / mlp
    if ops:
        v_cycles = batch(ops, v_cycles, mlp)
    server_flush()

    _assert_twin_match(scalar_ctrl, v_ctrl, cycles, v_cycles, "classified")
    return True


def run_simple_case(
    config_kwargs: Dict, trace: List[TraceRecord], seed: int
) -> None:
    """Drive the ``simple`` baseline's deferred seam against its scalar twin.

    The simple design batches its commit-hit stream (block misses
    decline with no state applied), so the same twin-controller
    discipline applies: counters, device traffic, remap-cache stats and
    the clock must be bit-identical.
    """
    from repro.baselines.simple_cache import SimpleCache

    config = make_tiny_config(**config_kwargs)
    scalar_ctrl = SimpleCache(config)
    batched_ctrl = SimpleCache(make_tiny_config(**config_kwargs))
    if not getattr(batched_ctrl, "supports_batching", False):
        raise OracleViolation(
            "simple baseline unexpectedly declines batching",
            kind="batched_divergence", location="supports_batching",
        )
    mlp = 4.0
    cycles = _scalar_replay(scalar_ctrl, trace, mlp)

    b_cycles = 0.0
    ops: List = []
    deferred = batched_ctrl.access_deferred
    batch = batched_ctrl.access_batch
    for addr, is_write in trace:
        op = deferred(addr, is_write)
        if op is not None:
            ops.append(op)
            continue
        if ops:
            b_cycles = batch(ops, b_cycles, mlp)
            ops.clear()
        mem = batched_ctrl.access(addr, is_write, b_cycles)
        if not is_write:
            b_cycles += mem.latency_cycles / mlp
    if ops:
        b_cycles = batch(ops, b_cycles, mlp)

    _assert_twin_match(scalar_ctrl, batched_ctrl, cycles, b_cycles, "simple")


def run_fuzz(
    iterations: int,
    seed: int,
    n_accesses: int = 600,
    inject_bug: Optional[str] = None,
    batched: bool = False,
) -> FuzzReport:
    """Run ``iterations`` seeded fuzz cases; collect (don't raise) failures.

    With ``batched=True`` every iteration additionally replays its trace
    across the deferred-batch seam three ways, each against a fresh
    scalar twin: the per-op pair (:func:`run_batched_case`), the
    vectorized classifier + server under randomized chunk sizes and
    forced flush boundaries (:func:`run_classified_case`), and the
    ``simple`` baseline's seam (:func:`run_simple_case`).
    """
    report = FuzzReport()
    for iteration in range(iterations):
        rng = random.Random(f"{seed}:{iteration}")
        config_kwargs = sample_config_kwargs(rng)
        trace = generate_trace(rng, make_tiny_config(**config_kwargs), n_accesses)
        report.iterations += 1
        report.accesses += len(trace)
        report.stats.inc("fuzz_iterations")
        report.stats.inc("fuzz_accesses", len(trace))
        try:
            controller = run_case(config_kwargs, trace, seed, inject_bug)
            if batched:
                run_batched_case(config_kwargs, trace, seed)
                report.stats.inc("fuzz_batched_checks")
                if run_classified_case(config_kwargs, trace, seed, rng):
                    report.stats.inc("fuzz_classifier_checks")
                run_simple_case(config_kwargs, trace, seed)
                report.stats.inc("fuzz_simple_checks")
        except OracleViolation as error:
            report.stats.inc("fuzz_violations")
            report.failures.append(
                FuzzFailure(
                    iteration=iteration,
                    config_kwargs=config_kwargs,
                    seed=seed,
                    trace=trace,
                    error=error,
                )
            )
        else:
            report.stats.merge(controller.vstats)
    return report


def selftest_case() -> Tuple[Dict, List[TraceRecord]]:
    """A deterministic case where ``drop_dirty_writeback`` must be caught.

    Compression is disabled (single-sub staging, no zero blocks), the
    stage area is one set of two 2 kB ways. Writes fill one stage entry's
    eight slots, a ninth range insert FIFO-evicts the first (dirty) slot
    — the injected bug drops its writeback — and the final read of that
    sub-block observes the stale slow copy.
    """
    config_kwargs = {
        "fast_kb": 64,
        "stage_kb": 4,
        "stage_ways": 2,
        "compression_enabled": False,
    }
    block = 2048
    sub = 256
    trace: List[TraceRecord] = [(0 * block, True)]
    trace += [(b * block, True) for b in range(1, 8)]
    trace.append((0 * block + 1 * sub, True))
    trace.append((0 * block, False))
    return config_kwargs, trace
