"""Freeze a minimized failing trace as a runnable pytest regression file.

The fuzzer's end product should outlive the fuzzing session: once ddmin
has shrunk a violation to a handful of records, this module renders it
as a standalone pytest module that rebuilds the exact config, replays
the trace, and asserts the violation still fires. Dropping the file
into ``tests/`` turns a one-off fuzzing catch into a permanent
regression test.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

_TEMPLATE = '''"""Auto-generated regression fixture ({tag}).

Emitted by `python -m repro validate` after delta-debugging a
content-oracle violation down to {n_records} trace record(s).
Regenerate with: {command}
"""

import pytest

from repro.common.errors import OracleViolation
from repro.validation.content import ContentBackedController, replay
from repro.validation.fuzz import make_tiny_config

TRACE = {trace!r}

CONFIG_KWARGS = {config_kwargs!r}


def test_{tag}():
    config = make_tiny_config(**CONFIG_KWARGS)
    controller = ContentBackedController(
        config, seed={seed}, inject_bug={inject_bug!r}
    )
    with pytest.raises(OracleViolation):
        replay(controller, TRACE)
'''


def emit_fixture(
    path: Path,
    trace: Sequence[Tuple[int, bool]],
    config_kwargs: Dict,
    seed: int,
    inject_bug: Optional[str],
    tag: str = "oracle_violation",
    command: str = "python -m repro validate",
) -> Path:
    """Write the regression module to ``path`` and return it."""
    path = Path(path)
    path.write_text(
        _TEMPLATE.format(
            tag=tag,
            n_records=len(trace),
            command=command,
            trace=[(int(addr), bool(is_write)) for addr, is_write in trace],
            config_kwargs=dict(config_kwargs),
            seed=int(seed),
            inject_bug=inject_bug,
        )
    )
    return path


def run_fixture(path: Path) -> None:
    """Execute an emitted fixture in-process to prove it is runnable.

    Imports nothing into ``sys.modules``; the module body and its single
    test function are executed directly. Raises on any failure.
    """
    source = Path(path).read_text()
    namespace: Dict = {"__name__": f"repro_fixture_{Path(path).stem}"}
    exec(compile(source, str(path), "exec"), namespace)
    tests = [v for k, v in namespace.items() if k.startswith("test_") and callable(v)]
    if not tests:
        raise ValueError(f"emitted fixture {path} defines no test function")
    for test in tests:
        test()
