"""Content-backed oracle mode: prove reads return the bytes last written.

The synthetic controller moves *accounting* (slots, remap entries, byte
counters) but no data, so nothing in the simulator proves that Baryon's
staging/commit/swap machinery actually preserves content. This module
threads a value through every data movement the controller performs:

* every 64 B cacheline has a *value* — a monotonically increasing write
  token (0 = pristine, never written);
* four stores mirror the tiers data can live in: ``slow`` memory, the
  ``stage`` area, the committed ``fast`` area, and flat-scheme ``home``
  block spaces;
* every movement seam of :class:`~repro.core.controller.BaryonController`
  (stage insertion, dirty writeback, commit, cache/flat eviction, range
  eviction, zero-break, home displacement/restore, the no-stage path) is
  overridden to copy values between stores exactly when the synthetic
  controller would move data;
* after every demand access the oracle locates the sub-block's single
  authoritative tier (mirroring the Fig. 6 dispatch priority: stage →
  committed fast → fast home → slow) and asserts the value there equals
  the ``golden`` last-written token. Any divergence — data dropped on a
  writeback, committed stale, left behind by a swap — raises
  :class:`~repro.common.errors.OracleViolation` at the first read that
  could observe it.

``inject_bug`` enables deliberate placement bugs (test-only hooks) so the
fuzzer/minimizer pipeline can demonstrate it catches real data loss; see
:data:`INJECTABLE_BUGS`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.common.config import BaryonConfig
from repro.common.errors import OracleViolation
from repro.common.stats import CounterGroup
from repro.core.controller import _UNRESOLVED, BaryonController
from repro.metadata.stage_tag import RangeSlot

#: Test-only placement bugs the oracle must catch (selftest + docs).
#: ``drop_dirty_writeback`` loses dirty staged data on eviction to slow
#: memory; ``commit_stale_data`` commits the pre-staging slow copy
#: instead of the staged (possibly dirty) values.
INJECTABLE_BUGS = ("drop_dirty_writeback", "commit_stale_data")


class _ZeroMaskedOracle:
    """Compressibility wrapper making the Z-bit consistent with content.

    The synthetic ``is_zero`` draw is content-free, so it can declare a
    block all-zero that the content model knows holds written data — and
    the controller's Z encoding stores nothing, which would "lose" those
    writes by design. In content mode a block is only ever treated as
    zero when its golden content is entirely pristine and the triggering
    access is a read (a write-miss to a zero block must take the normal
    fetch path so the written value has a physical slot to live in).
    """

    def __init__(self, inner, owner: "ContentBackedController") -> None:
        self._inner = inner
        self._owner = owner

    def is_zero(self, block_id: int, start_sub: int, n_sub: int) -> bool:
        owner = self._owner
        if owner._current_is_write or owner._block_has_content(block_id):
            return False
        return self._inner.is_zero(block_id, start_sub, n_sub)

    def __getattr__(self, name):
        return getattr(self._inner, name)


class ContentBackedController(BaryonController):
    """A :class:`BaryonController` that carries real content end to end.

    Timing, counters and metadata behave exactly as in the base class
    (the overrides only *add* value bookkeeping around each ``super()``
    call), so the oracle validates the very controller the experiments
    run, not a simplified model of it.
    """

    #: Content tracking hooks every ``access`` call, so the deferred
    #: batch path (which bypasses the override) must stay off.
    supports_batching = False

    def __init__(
        self,
        config: Optional[BaryonConfig] = None,
        inject_bug: Optional[str] = None,
        conservation_every: int = 64,
        **kwargs,
    ) -> None:
        super().__init__(config, **kwargs)
        if inject_bug is not None and inject_bug not in INJECTABLE_BUGS:
            raise ValueError(
                f"unknown injectable bug {inject_bug!r}; "
                f"choose from {INJECTABLE_BUGS}"
            )
        self.inject_bug = inject_bug
        self.conservation_every = conservation_every
        #: golden model: cacheline -> last written token (absent = 0).
        self.golden: Dict[int, int] = {}
        #: per-tier value stores, all keyed by global cacheline index.
        self.c_slow: Dict[int, int] = {}
        self.c_stage: Dict[int, int] = {}
        self.c_fast: Dict[int, int] = {}
        self.c_home: Dict[int, int] = {}
        #: served read values in trace order (differential fingerprint).
        self.served_reads: List[int] = []
        self.vstats = CounterGroup("validation")
        self._token = 0
        self._access_index = 0
        self._current_is_write = False
        # Mask the Z-bit oracle so zero blocks stay content-consistent.
        self.oracle = _ZeroMaskedOracle(self.oracle, self)

    # -- line arithmetic ---------------------------------------------------
    def _line_of(self, addr: int) -> int:
        return addr // self.geometry.cacheline_size

    def _lines_of_sub(self, block_id: int, sub: int) -> range:
        g = self.geometry
        per_sub = g.cachelines_per_sub_block
        base = block_id * g.cachelines_per_block + sub * per_sub
        return range(base, base + per_sub)

    def _lines_of_block(self, block_id: int) -> range:
        per_block = self.geometry.cachelines_per_block
        base = block_id * per_block
        return range(base, base + per_block)

    def _slot_lines(self, block_id: int, slot: RangeSlot) -> Iterable[int]:
        if slot.zero:
            return self._lines_of_block(block_id)
        lines: List[int] = []
        for sub in slot.sub_blocks:
            lines.extend(self._lines_of_sub(block_id, sub))
        return lines

    def _block_has_content(self, block_id: int) -> bool:
        golden = self.golden
        return any(golden.get(line, 0) for line in self._lines_of_block(block_id))

    def _backing_store(self, block_id: int) -> Dict[int, int]:
        """Where a block's data rest when neither staged nor committed.

        Normally slow memory — but a flat-scheme home block whose space
        is not (or no longer) displaced is served from its fast home, so
        writebacks of its data must land there, not in slow memory.
        """
        if self._is_fast_home(block_id):
            return self.c_home
        return self.c_slow

    # -- oracle entry point ------------------------------------------------
    def access(self, addr, is_write, now=None):
        self._access_index += 1
        self._current_is_write = is_write
        try:
            result = super().access(addr, is_write, now)
        finally:
            self._current_is_write = False
        line = self._line_of(addr)
        location, store = self._locate(addr)
        if is_write:
            self._token += 1
            store[line] = self._token
            self.golden[line] = self._token
            self.vstats.inc("writes_deposited")
        else:
            got = store.get(line, 0)
            want = self.golden.get(line, 0)
            self.served_reads.append(got)
            self.vstats.inc("reads_verified")
            if got != want:
                self.vstats.inc("violations")
                raise OracleViolation(
                    f"stale read at addr {addr:#x} (access #{self._access_index}, "
                    f"case {result.case.value}): {location} holds token {got}, "
                    f"last write was token {want}",
                    kind="stale_read", addr=addr,
                    access_index=self._access_index, location=location,
                    expected=want, got=got,
                )
        if self.conservation_every and self._access_index % self.conservation_every == 0:
            self.check_conservation()
        return result

    def _locate(self, addr: int) -> Tuple[str, Dict[int, int]]:
        """The sub-block's single authoritative tier after the access.

        Mirrors the dispatch priority of :meth:`BaryonController._dispatch`:
        staged data shadow committed data, committed data shadow the home
        space, and slow memory is the backstop (including quarantined
        super-blocks and displaced flat homes).
        """
        g = self.geometry
        block_id = g.block_id(addr)
        super_id = g.super_block_id(addr)
        if super_id in self._quarantined:
            return "slow", self.c_slow
        if self.config.stage.enabled:
            staged = self.stage.lookup_sub_block(
                super_id, g.block_offset_in_super(addr), g.sub_block_index(addr)
            )
            if staged is not None:
                return "stage", self.c_stage
        entry = self.remap_table.get(block_id)
        if entry.is_remapped and entry.sub_block_remapped(g.sub_block_index(addr)):
            return "fast", self.c_fast
        if self._is_fast_home(block_id):
            return "home", self.c_home
        return "slow", self.c_slow

    def check_conservation(self) -> None:
        """Every sub-block lives in exactly one tier.

        Metadata level: no sub-block may be simultaneously staged and
        committed (the dispatch priority would silently shadow one copy).
        Content level: the stage and fast value stores must be disjoint.
        """
        self.vstats.inc("conservation_checks")
        tags = self.stage.tags
        num_sets = self.stage.num_sets
        for set_index in range(num_sets):
            for way in range(tags.ways):
                entry = tags.entry(set_index, way)
                if not entry.valid:
                    continue
                super_id = entry.tag * num_sets + set_index
                base = super_id * self.geometry.super_block_blocks
                for slot in entry.slots:
                    if slot is None:
                        continue
                    block_id = base + slot.blk_off
                    remap = self.remap_table.get(block_id)
                    if not remap.is_remapped:
                        continue
                    subs = (
                        range(self.geometry.sub_blocks_per_block)
                        if slot.zero else slot.sub_blocks
                    )
                    for sub in subs:
                        if remap.sub_block_remapped(sub):
                            raise OracleViolation(
                                f"sub-block {sub} of block {block_id} is both "
                                "staged and committed",
                                kind="conservation",
                            )
        overlap = self.c_stage.keys() & self.c_fast.keys()
        if overlap:
            line = next(iter(overlap))
            raise OracleViolation(
                f"cacheline {line} has values in both the stage and fast "
                f"stores ({len(overlap)} overlapping line(s))",
                kind="conservation",
            )

    # -- movement seams ----------------------------------------------------
    def _stage_insert(
        self, now, super_id, block_id, blk_off, new_slot, bound=_UNRESOLVED
    ) -> None:
        super()._stage_insert(now, super_id, block_id, blk_off, new_slot, bound)
        # Fetched ranges copy the slow values; re-inserted overflow pieces
        # keep the values already staged (setdefault never clobbers them).
        c_stage, c_slow = self.c_stage, self.c_slow
        for line in self._slot_lines(block_id, new_slot):
            c_stage.setdefault(line, c_slow.get(line, 0))

    def _writeback_stage_slot(self, now, set_index, super_id, slot) -> None:
        super()._writeback_stage_slot(now, set_index, super_id, slot)
        block_id = super_id * self.geometry.super_block_blocks + slot.blk_off
        copy_back = (
            slot.dirty and not slot.zero
            and self.inject_bug != "drop_dirty_writeback"
        )
        backing = self._backing_store(block_id)
        for line in self._slot_lines(block_id, slot):
            value = self.c_stage.pop(line, None)
            if value is not None and copy_back:
                backing[line] = value

    def _stage_zero_write(
        self, now, set_index, way, slot_idx, block_id, blk_off, sub_idx
    ) -> bool:
        overflow = super()._stage_zero_write(
            now, set_index, way, slot_idx, block_id, blk_off, sub_idx
        )
        # The Z slot covered the whole block; the replacement slot covers
        # only one aligned range. Lines no longer staged fall back to the
        # (identically zero) slow copy — drop their stage values.
        super_id = block_id // self.geometry.super_block_blocks
        for sub in range(self.geometry.sub_blocks_per_block):
            if self.stage.lookup_sub_block(super_id, blk_off, sub) is None:
                for line in self._lines_of_sub(block_id, sub):
                    self.c_stage.pop(line, None)
        return overflow

    def _commit_stage_block(self, now, set_index, way, super_id) -> None:
        entry = self.stage.entry(set_index, way)
        base = super_id * self.geometry.super_block_blocks
        lines: List[int] = []
        for slot in entry.slots:
            if slot is not None:
                lines.extend(self._slot_lines(base + slot.blk_off, slot))
        super()._commit_stage_block(now, set_index, way, super_id)
        c_fast, c_stage, c_slow = self.c_fast, self.c_stage, self.c_slow
        stale = self.inject_bug == "commit_stale_data"
        for line in lines:
            staged = c_stage.pop(line, c_slow.get(line, 0))
            c_fast[line] = c_slow.get(line, 0) if stale else staged

    def _evict_fast_block(self, now, set_index, way, for_commit=False) -> None:
        state = self.fast_area.state(set_index, way)
        moves: List[Tuple[int, int, bool]] = []
        if state is not None:
            g = self.geometry
            base = state.super_id * g.super_block_blocks
            is_flat_way = way < self._flat_ways
            for blk_off in state.committed:
                block_id = base + blk_off
                entry = self.remap_table.get(block_id)
                if entry.zero:
                    # Z entries store nothing; the backing copy is zero too.
                    moves.extend(
                        (line, block_id, False)
                        for line in self._lines_of_block(block_id)
                    )
                    continue
                for sub in range(g.sub_blocks_per_block):
                    if not entry.sub_block_remapped(sub):
                        continue
                    write_back = is_flat_way or (blk_off, sub) in state.dirty_subs
                    moves.extend(
                        (line, block_id, write_back)
                        for line in self._lines_of_sub(block_id, sub)
                    )
        super()._evict_fast_block(now, set_index, way, for_commit)
        for line, block_id, write_back in moves:
            value = self.c_fast.pop(line, None)
            if value is not None and write_back:
                self._backing_store(block_id)[line] = value

    def _evict_committed_range(
        self, now, super_id, block_id, blk_off, start, cf
    ) -> None:
        located = self.fast_area.find_block(super_id, blk_off)
        super()._evict_committed_range(now, super_id, block_id, blk_off, start, cf)
        if located is None:
            return
        # The range is written back unconditionally (clean copies equal
        # the backing values, so the copy is a no-op for them).
        backing = self._backing_store(block_id)
        for sub in range(start, start + cf):
            for line in self._lines_of_sub(block_id, sub):
                value = self.c_fast.pop(line, None)
                if value is not None:
                    backing[line] = value

    def _evict_committed_logical_block(
        self, now, super_id, block_id, blk_off
    ) -> None:
        located = self.fast_area.find_block(super_id, blk_off)
        entry = self.remap_table.get(block_id)
        super()._evict_committed_logical_block(now, super_id, block_id, blk_off)
        if located is None or not entry.is_remapped:
            return
        g = self.geometry
        backing = self._backing_store(block_id)
        for sub in range(g.sub_blocks_per_block):
            if not entry.zero and not entry.sub_block_remapped(sub):
                continue
            for line in self._lines_of_sub(block_id, sub):
                value = self.c_fast.pop(line, None)
                if value is not None and not entry.zero:
                    backing[line] = value

    def _displace_home(self, now, fa_set, way):
        home = self._home_block_of(fa_set, way)
        fresh = home is not None and home not in self._displaced
        result = super()._displace_home(now, fa_set, way)
        if fresh:
            for line in self._lines_of_block(home):
                value = self.c_home.pop(line, None)
                if value is not None:
                    self.c_slow[line] = value
        return result

    def _restore_home(self, now, fa_set, way) -> None:
        home = self._home_displaced_at(fa_set, way)
        super()._restore_home(now, fa_set, way)
        if home is None:
            return
        for line in self._lines_of_block(home):
            value = self.c_slow.pop(line, None)
            if value is not None:
                self.c_home[line] = value

    def _no_stage_miss(
        self, now, meta, super_id, block_id, blk_off, sub_idx, line_idx, is_write
    ):
        result = super()._no_stage_miss(
            now, meta, super_id, block_id, blk_off, sub_idx, line_idx, is_write
        )
        # Whatever the final layout holds was either already in the fast
        # store (survived the insertion) or just fetched from slow.
        entry = self.remap_table.get(block_id)
        if entry.is_remapped:
            c_fast, c_slow = self.c_fast, self.c_slow
            for sub in range(self.geometry.sub_blocks_per_block):
                if not entry.sub_block_remapped(sub):
                    continue
                for line in self._lines_of_sub(block_id, sub):
                    c_fast.setdefault(line, c_slow.get(line, 0))
        return result


class GoldenReference:
    """Content-transparent wrapper for the baseline controllers.

    The baselines (SimpleCache, Unison, DICE, Hybrid2) never transform
    data in-model — their accounting moves no content — so the golden
    write-token model *is* what they serve. Wrapping them gives the
    differential checker a trivially-correct serve stream with the exact
    same trace/token numbering as the content-backed Baryon variants.
    """

    def __init__(self, controller) -> None:
        self.controller = controller
        self.golden: Dict[int, int] = {}
        self.served_reads: List[int] = []
        self._token = 0

    def access(self, addr, is_write, now=None):
        result = self.controller.access(addr, is_write, now)
        line = addr // 64
        if is_write:
            self._token += 1
            self.golden[line] = self._token
        else:
            self.served_reads.append(self.golden.get(line, 0))
        return result


def replay(controller, trace: Iterable[Tuple[int, bool]]):
    """Drive raw memory-level records through one controller.

    ``trace`` is a sequence of ``(addr, is_write)`` records, replayed
    directly at the memory controller (no cache hierarchy, so every
    design sees the identical access sequence). Returns the controller;
    a content-backed controller gets a final conservation check.
    """
    now = 0.0
    for addr, is_write in trace:
        now += 1.0
        controller.access(int(addr), bool(is_write), now)
    check = getattr(controller, "check_conservation", None)
    if check is not None:
        check()
    return controller
