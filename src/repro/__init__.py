"""Baryon: efficient hybrid memory management with compression and
sub-blocking — a full Python reproduction of the HPCA 2023 paper.

Public API overview
-------------------

Configuration and devices::

    from repro import BaryonConfig, HybridMemoryDevices

The controller (the paper's contribution) and its baselines::

    from repro import BaryonController
    from repro.baselines import SimpleCache, UnisonCache, DiceCache, Hybrid2

Workloads and the system simulator::

    from repro.workloads import build_workload, scaled_system
    from repro.sim import SystemSimulator

Typical use (see ``examples/quickstart.py``)::

    config, sim_config = scaled_system(256)
    trace = build_workload("YCSB-A", config.layout.fast_capacity)
    controller = BaryonController(config)
    trace.apply_compressibility(controller.oracle)
    result = SystemSimulator(controller, sim_config).run(trace)
    print(result.summary())
"""

from repro.common.config import (
    BaryonConfig,
    CommitConfig,
    CompressionConfig,
    Geometry,
    HierarchyConfig,
    HybridLayout,
    MemoryTimings,
    SimulationConfig,
    StageConfig,
)
from repro.core.controller import BaryonController
from repro.core.events import AccessCase, AccessResult
from repro.devices.memory import HybridMemoryDevices
from repro.sim.results import SimResult
from repro.sim.system import SystemSimulator

__version__ = "1.0.0"

__all__ = [
    "AccessCase",
    "AccessResult",
    "BaryonConfig",
    "BaryonController",
    "CommitConfig",
    "CompressionConfig",
    "Geometry",
    "HierarchyConfig",
    "HybridLayout",
    "HybridMemoryDevices",
    "MemoryTimings",
    "SimResult",
    "SimulationConfig",
    "StageConfig",
    "SystemSimulator",
    "__version__",
]
