"""Command-line entry point: run one (workload, design) simulation.

Examples::

    python -m repro --list
    python -m repro YCSB-A baryon
    python -m repro pr.twitter dice --accesses 50000 --scale 128 --seed 3
    python -m repro 519.lbm_r baryon --flat
"""

from __future__ import annotations

import argparse
import dataclasses
import sys

from repro.analysis import DESIGNS, run_one
from repro.workloads import scaled_system
from repro.workloads.suite import WORKLOADS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Baryon (HPCA 2023) reproduction: simulate one workload "
        "on one hybrid-memory design at a scaled Table I configuration.",
    )
    parser.add_argument("workload", nargs="?", help="workload name (see --list)")
    parser.add_argument("design", nargs="?", default="baryon",
                        help=f"one of {', '.join(DESIGNS)} (default: baryon)")
    parser.add_argument("--accesses", type=int, default=30_000,
                        help="trace length (default 30000)")
    parser.add_argument("--scale", type=int, default=256,
                        help="capacity scale divisor vs Table I (default 256)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--flat", action="store_true",
                        help="use the flat scheme (75%% flat / 25%% cache split)")
    parser.add_argument("--list", action="store_true",
                        help="list workloads and designs, then exit")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        print("designs  :", ", ".join(DESIGNS))
        print("workloads:")
        for name, spec in sorted(WORKLOADS.items()):
            print(f"  {name:<16} {spec.description}")
        return 0
    if not args.workload:
        build_parser().print_usage()
        return 2
    if args.workload not in WORKLOADS:
        print(f"unknown workload {args.workload!r}; use --list", file=sys.stderr)
        return 2

    config, sim_config = scaled_system(args.scale)
    if args.flat:
        layout = dataclasses.replace(config.layout, flat_fraction=0.75)
        config = dataclasses.replace(config, layout=layout)
    result = run_one(
        args.workload, args.design, config, sim_config,
        n_accesses=args.accesses, seed=args.seed,
    )
    print(f"{args.workload} on {args.design} "
          f"(1/{args.scale} scale, {args.accesses} accesses)")
    for key, value in result.summary().items():
        print(f"  {key:<18} {value:.4f}")
    print("  case mix:")
    total = sum(result.case_counts.values()) or 1
    for case, count in sorted(result.case_counts.items(), key=lambda kv: -kv[1]):
        print(f"    {case:<12} {count / total:6.1%}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
