"""Command-line entry point: run one (workload, design) simulation.

Examples::

    python -m repro --list
    python -m repro YCSB-A baryon
    python -m repro pr.twitter dice --accesses 50000 --scale 128 --seed 3
    python -m repro 519.lbm_r baryon --flat
    python -m repro YCSB-A baryon --profile

Comma-separated workloads/designs (or ``all``) switch to matrix mode,
which shards the sweep across ``--jobs`` worker processes (see
docs/performance.md)::

    python -m repro YCSB-A,505.mcf_r simple,dice,baryon --jobs 4
    python -m repro all baryon,hybrid2 --jobs 8

Observability subcommands (see docs/observability.md)::

    python -m repro trace YCSB-A baryon --out trace.jsonl --accesses 5000
    python -m repro report YCSB-A baryon --metrics --format prometheus
    python -m repro report YCSB-A,YCSB-B simple,baryon --jobs 4 --metrics

Fault injection and crash-safe sweeps (see docs/resilience.md)::

    python -m repro YCSB-A baryon --faults read=1e-4,spike=1e-3
    python -m repro YCSB-A baryon --faults table=1e-4 --check-invariants
    python -m repro all baryon --jobs 8 --checkpoint sweep.json
    python -m repro all baryon --jobs 8 --resume sweep.json

Differential-oracle validation (see docs/validation.md)::

    python -m repro validate --fuzz 25 --seed 7
    python -m repro validate --fuzz 100 --seed 7 --minimize --metrics

Sweep telemetry and run manifests (see docs/observability.md)::

    python -m repro all baryon --jobs 8 --progress --trace-spans spans.jsonl
    python -m repro all baryon --jobs 8 --progress-out progress.jsonl
    python -m repro all baryon --jobs 8 --manifest run.manifest.json
    python -m repro manifest show run.manifest.json
    python -m repro manifest diff a.manifest.json b.manifest.json

Orchestration chaos and sweep hardening (see docs/resilience.md)::

    python -m repro all baryon --jobs 8 --chaos kill=0.2,torn=0.2 --progress
    python -m repro all baryon --jobs 8 --quarantine-after 3 --retry-budget 64
    python -m repro chaos-soak --cells 12 --chaos-seed 7

Simulation-as-a-service (see docs/serving.md)::

    python -m repro serve --port 8642 --jobs 4
    python examples/capacity_planning.py --server http://127.0.0.1:8642

Matrix-mode exit codes: 0 all cells clean; 3 completed but some cells
quarantined by the poison-cell circuit breaker; 4 cells failed or the
end-of-run manifest audit found a mismatch; 130 interrupted
(SIGINT/SIGTERM) with a resumable checkpoint.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys

from repro.analysis import (
    DESIGNS,
    format_matrix,
    run_cell,
    run_matrix_sharded,
    run_one,
)
from repro.common.errors import ConfigurationError
from repro.workloads import scaled_system
from repro.workloads.suite import WORKLOADS

#: Matrix-mode exit codes (documented in the module help above): clean,
#: quarantined cells in an otherwise complete sweep, failed cells or a
#: failed integrity audit, interrupted with a resumable checkpoint.
EXIT_MATRIX_OK = 0
EXIT_MATRIX_QUARANTINED = 3
EXIT_MATRIX_FAILED = 4
EXIT_MATRIX_INTERRUPTED = 130


def _add_resilience_args(parser: argparse.ArgumentParser) -> None:
    from repro.resilience import FAULT_SPEC_KEYS

    parser.add_argument("--faults", metavar="SPEC",
                        help="inject deterministic faults: comma-separated "
                        "key=probability pairs, keys "
                        f"{','.join(sorted(FAULT_SPEC_KEYS))} "
                        "(e.g. read=1e-4,spike=1e-3)")
    parser.add_argument("--fault-seed", type=int, default=0xBA51C,
                        help="seed of the counter-based fault sequence "
                        "(default 0xBA51C)")
    parser.add_argument("--check-invariants", action="store_true",
                        help="run the shadow-memory invariant checker "
                        "(R1-R4 + metadata round-trip on every commit)")


def _add_checkpoint_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--checkpoint", metavar="PATH",
                        help="matrix mode: atomically checkpoint finished "
                        "cells to this JSON file after each cell")
    parser.add_argument("--resume", metavar="PATH",
                        help="matrix mode: skip cells already finished in "
                        "this checkpoint file (missing file starts fresh)")
    parser.add_argument("--max-attempts", type=int, default=2,
                        help="attempts per matrix cell before it is reported "
                        "as failed (default 2)")
    parser.add_argument("--cell-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-cell deadline; a lapsed deadline requeues "
                        "the cell (dead-worker detection, default 600)")


def _add_chaos_args(parser: argparse.ArgumentParser) -> None:
    from repro.resilience import CHAOS_SPEC_KEYS

    parser.add_argument("--chaos", metavar="SPEC",
                        help="matrix mode: inject seeded orchestration chaos "
                        "(worker kills/hangs, heartbeat loss, torn/flipped/"
                        "ENOSPC checkpoint writes, delayed drains): "
                        "comma-separated key=value pairs, keys "
                        f"{','.join(sorted(CHAOS_SPEC_KEYS))} "
                        "(e.g. kill=0.2,hang=0.1,torn=0.2)")
    parser.add_argument("--chaos-seed", type=int, default=0xC7A05,
                        help="seed of the deterministic chaos schedule "
                        "(default 0xC7A05)")
    parser.add_argument("--progress-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="matrix mode: declare a worker hung (heartbeats "
                        "alive but no progress for this long) and requeue "
                        "its cell; needs heartbeats on (default: off)")
    parser.add_argument("--quarantine-after", type=int, default=None,
                        metavar="N",
                        help="matrix mode: poison-cell circuit breaker — a "
                        "cell killing N consecutive workers is quarantined "
                        "with a degraded partial result instead of being "
                        "retried forever (default: off)")
    parser.add_argument("--retry-budget", type=int, default=None, metavar="N",
                        help="matrix mode: global cap on requeued attempts "
                        "across all cells (default: unlimited)")
    parser.add_argument("--backoff-base", type=float, default=0.0,
                        metavar="SECONDS",
                        help="matrix mode: base of the exponential backoff "
                        "(with deterministic jitter) between a cell's "
                        "attempts (default 0 = requeue immediately)")


def _add_telemetry_args(parser: argparse.ArgumentParser) -> None:
    from repro.parallel.telemetry import DEFAULT_HEARTBEAT_EVERY

    parser.add_argument("--progress", action="store_true",
                        help="matrix mode: render a live status line on "
                        "stderr from worker heartbeats (cells done, "
                        "accesses/sec, ETA)")
    parser.add_argument("--progress-out", metavar="PATH",
                        help="matrix mode: mirror every heartbeat/cell "
                        "event to this JSONL file")
    parser.add_argument("--trace-spans", metavar="PATH",
                        help="matrix mode: record the sweep->cell->phase "
                        "span tree and write it to this JSONL file")
    parser.add_argument("--manifest", metavar="PATH",
                        help="matrix mode: write a run manifest (plan "
                        "fingerprint, git revision, counter digest, "
                        "timings) to this file; with --checkpoint one is "
                        "always written next to the checkpoint")
    parser.add_argument("--heartbeat-every", type=int,
                        default=DEFAULT_HEARTBEAT_EVERY, metavar="N",
                        help="simulated accesses between worker heartbeats "
                        f"(default {DEFAULT_HEARTBEAT_EVERY}; 0 disables "
                        "the heartbeat channel)")


def _add_run_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("workload",
                        help="workload name, comma-separated list, or 'all' "
                        "(see --list)")
    parser.add_argument("design", nargs="?", default="baryon",
                        help=f"one of {', '.join(DESIGNS)}, a comma-separated "
                        "list, or 'all' (default: baryon)")
    parser.add_argument("--accesses", type=int, default=30_000,
                        help="trace length (default 30000)")
    parser.add_argument("--scale", type=int, default=256,
                        help="capacity scale divisor vs Table I (default 256)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--flat", action="store_true",
                        help="use the flat scheme (75%% flat / 25%% cache split)")
    _add_resilience_args(parser)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Baryon (HPCA 2023) reproduction: simulate one workload "
        "on one hybrid-memory design at a scaled Table I configuration.",
    )
    parser.add_argument("workload", nargs="?",
                        help="workload name, comma-separated list, or 'all' "
                        "(see --list)")
    parser.add_argument("design", nargs="?", default="baryon",
                        help=f"one of {', '.join(DESIGNS)}, a comma-separated "
                        "list, or 'all' (default: baryon)")
    parser.add_argument("--accesses", type=int, default=30_000,
                        help="trace length (default 30000)")
    parser.add_argument("--scale", type=int, default=256,
                        help="capacity scale divisor vs Table I (default 256)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--flat", action="store_true",
                        help="use the flat scheme (75%% flat / 25%% cache split)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for matrix mode (default 1 = "
                        "in-process; matrix results are identical either way)")
    parser.add_argument("--profile", action="store_true",
                        help="time the simulator's phases and print a profile")
    parser.add_argument("--list", action="store_true",
                        help="list workloads and designs, then exit")
    _add_resilience_args(parser)
    _add_checkpoint_args(parser)
    _add_chaos_args(parser)
    _add_telemetry_args(parser)
    return parser


def build_trace_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="Run one workload with the structured event tracer on "
        "and dump the JSONL event stream.",
    )
    _add_run_args(parser)
    parser.add_argument("--out", default="trace.jsonl",
                        help="JSONL output path (default trace.jsonl)")
    parser.add_argument("--sample-every", type=int, default=1,
                        help="keep 1 in N events (default 1 = everything)")
    parser.add_argument("--ring", type=int, default=1 << 20,
                        help="in-memory ring capacity (default 1Mi events)")
    return parser


def build_report_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro report",
        description="Run one workload with tracing on and summarize the "
        "event stream; --metrics adds the metrics-registry export.",
    )
    _add_run_args(parser)
    parser.add_argument("--metrics", action="store_true",
                        help="export the metrics registry as well")
    parser.add_argument("--format", choices=("text", "json", "prometheus"),
                        default="text", help="metrics export format")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes when reporting a matrix "
                        "(comma-separated workloads/designs)")
    parser.add_argument("--profile", action="store_true",
                        help="include the phase profile in the report")
    _add_checkpoint_args(parser)
    _add_chaos_args(parser)
    _add_telemetry_args(parser)
    return parser


def build_validate_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro validate",
        description="Differential-oracle validation: content-backed replay "
        "through every Baryon variant and baseline, seeded trace fuzzing, "
        "and a bug-injection selftest with delta-debugged fixture emission.",
    )
    parser.add_argument("--fuzz", type=int, default=25, metavar="N",
                        help="fuzz iterations (default 25; 0 skips fuzzing)")
    parser.add_argument("--seed", type=int, default=7,
                        help="base seed of the deterministic fuzz sequence "
                        "(default 7)")
    parser.add_argument("--accesses", type=int, default=600,
                        help="trace records per fuzz iteration (default 600)")
    parser.add_argument("--fuzz-batched", action="store_true",
                        help="additionally cross-check every fuzz case "
                        "across the controller's deferred-batch seam "
                        "(access_deferred/access_batch vs scalar access; "
                        "fault injection off, oracle on)")
    parser.add_argument("--minimize", action="store_true",
                        help="delta-debug any fuzzer-found failure before "
                        "reporting it (the selftest is always minimized)")
    parser.add_argument("--emit-dir", metavar="DIR", default=None,
                        help="directory for emitted regression fixtures "
                        "(default: a fresh temporary directory)")
    parser.add_argument("--skip-selftest", action="store_true",
                        help="skip the injected-bug selftest (clean checks "
                        "only)")
    parser.add_argument("--metrics", action="store_true",
                        help="export validation counters as a metrics "
                        "registry")
    parser.add_argument("--format", choices=("text", "json", "prometheus"),
                        default="text", help="metrics export format")
    return parser


def cmd_validate(argv) -> int:
    """``python -m repro validate``: oracle + differential + fuzz + selftest.

    Exit status 0 requires BOTH directions of evidence: every clean check
    passes (differential agreement across designs, zero fuzz violations)
    AND the deliberately injected placement bug is caught, minimized and
    re-raised by its emitted regression fixture.
    """
    import tempfile
    from pathlib import Path

    from repro.common.errors import OracleViolation
    from repro.validation import (
        ddmin, emit_fixture, generate_trace, make_tiny_config, run_case,
        run_differential, run_fixture, run_fuzz, selftest_case,
    )

    args = build_validate_parser().parse_args(argv)
    if args.fuzz < 0 or args.accesses <= 0:
        print("--fuzz must be >= 0 and --accesses positive", file=sys.stderr)
        return 2
    ok = True
    stats = None

    # 1. Differential: one deterministic trace, every design, same data.
    import random

    config = make_tiny_config()
    trace = generate_trace(random.Random(args.seed), config, args.accesses)
    try:
        streams = run_differential(config, trace, seed=args.seed)
    except OracleViolation as err:
        print(f"differential check FAILED: {err}", file=sys.stderr)
        ok = False
    else:
        reads = len(next(iter(streams.values())))
        print(f"differential check: {len(streams)} designs agree on "
              f"{reads} served reads")

    # 2. Seeded fuzzing over random tiny configs and traces.
    if args.fuzz:
        report = run_fuzz(
            args.fuzz, args.seed, n_accesses=args.accesses,
            batched=args.fuzz_batched,
        )
        stats = report.stats
        batched_note = (
            f", {report.stats.get('fuzz_batched_checks')} batched-seam + "
            f"{report.stats.get('fuzz_classifier_checks')} classifier + "
            f"{report.stats.get('fuzz_simple_checks')} simple-seam check(s)"
            if args.fuzz_batched else ""
        )
        print(f"fuzz: {report.iterations} iterations, {report.accesses} "
              f"accesses, {len(report.failures)} violation(s){batched_note}")
        for failure in report.failures:
            ok = False
            print(f"  iteration {failure.iteration}: {failure.error}",
                  file=sys.stderr)
            print(f"    config: {failure.config_kwargs}", file=sys.stderr)
            if args.minimize:
                def _fails(t, f=failure):
                    try:
                        run_case(f.config_kwargs, list(t), f.seed)
                        return False
                    except OracleViolation:
                        return True
                failure.minimized = ddmin(failure.trace, _fails)
                print(f"    minimized to {len(failure.minimized)} record(s): "
                      f"{failure.minimized}", file=sys.stderr)

    # 3. Selftest: an injected placement bug must be caught end to end.
    if not args.skip_selftest:
        bug = "drop_dirty_writeback"
        config_kwargs, selftest_trace = selftest_case()

        def _bug_fails(t):
            try:
                run_case(config_kwargs, list(t), args.seed, inject_bug=bug)
                return False
            except OracleViolation:
                return True

        if not _bug_fails(selftest_trace):
            print(f"selftest FAILED: injected bug {bug!r} was not caught",
                  file=sys.stderr)
            ok = False
        else:
            minimized = ddmin(selftest_trace, _bug_fails)
            emit_dir = Path(args.emit_dir or tempfile.mkdtemp(prefix="repro-validate-"))
            emit_dir.mkdir(parents=True, exist_ok=True)
            fixture = emit_fixture(
                emit_dir / f"test_regression_{bug}.py",
                minimized, config_kwargs, seed=args.seed, inject_bug=bug,
                tag=bug,
                command=f"python -m repro validate --seed {args.seed}",
            )
            try:
                run_fixture(fixture)
            except Exception as err:  # noqa: BLE001 - report any breakage
                print(f"selftest FAILED: emitted fixture did not reproduce: "
                      f"{err}", file=sys.stderr)
                ok = False
            else:
                print(f"selftest: injected bug {bug!r} caught, minimized to "
                      f"{len(minimized)} record(s), fixture at {fixture}")
            # The bug hook must not fire without injection.
            try:
                run_case(config_kwargs, selftest_trace, args.seed)
            except OracleViolation as err:
                print(f"selftest FAILED: clean replay violated the oracle: "
                      f"{err}", file=sys.stderr)
                ok = False

    if args.metrics and stats is not None:
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        registry.ingest_counter_group(
            "repro_validation_total", stats,
            help="validation-subsystem counters (fuzz + oracle)",
        )
        _print_registry(registry, args.format)
    print("validation " + ("PASSED" if ok else "FAILED"))
    return 0 if ok else 1


def _validate_workload(workload: str) -> bool:
    if workload not in WORKLOADS:
        print(f"unknown workload {workload!r}; use --list", file=sys.stderr)
        return False
    return True


def _parse_matrix(args):
    """Workload/design lists when the invocation is a matrix, else None.

    ``all`` or a comma in either argument selects matrix mode; a single
    (workload, design) pair keeps the original one-cell behaviour.
    """
    workloads = (sorted(WORKLOADS) if args.workload == "all"
                 else [w for w in args.workload.split(",") if w])
    designs = (list(DESIGNS) if args.design == "all"
               else [d for d in args.design.split(",") if d])
    if len(workloads) <= 1 and len(designs) <= 1:
        return None
    return workloads, designs


def _build_telemetry(args, n_cells: int):
    """``(SweepTelemetry, span tracer, progress sink)`` from CLI flags.

    Everything is ``None`` when no telemetry flag was given, so the
    untelemetered CLI path is exactly the pre-telemetry one.
    """
    from repro.obs import SpanTracer, make_cli_tracker
    from repro.parallel import SweepTelemetry
    from repro.parallel.telemetry import DEFAULT_HEARTBEAT_EVERY

    render = getattr(args, "progress", False)
    progress_out = getattr(args, "progress_out", None)
    spans_out = getattr(args, "trace_spans", None)
    collect_metrics = getattr(args, "metrics", False)
    if not (render or progress_out or spans_out or collect_metrics):
        return None, None, None
    spans = SpanTracer(origin="sweep") if spans_out else None
    sink = None
    tracker = None
    if render or progress_out:
        sink = (open(progress_out, "w", encoding="utf-8")
                if progress_out else None)
        tracker = make_cli_tracker(n_cells, render=render, sink=sink)
    telemetry = SweepTelemetry(
        spans=spans, progress=tracker, collect_metrics=collect_metrics,
        heartbeat_every=getattr(
            args, "heartbeat_every", DEFAULT_HEARTBEAT_EVERY
        ),
    )
    return telemetry, spans, sink


def _run_matrix_outcome(args, workloads, designs):
    """Validate, run the sharded matrix, and return the outcome (or None)."""
    for workload in workloads:
        if not _validate_workload(workload):
            return None
    for design in designs:
        if design not in DESIGNS:
            print(f"unknown design {design!r}; choose from {', '.join(DESIGNS)}",
                  file=sys.stderr)
            return None
    configs = _try_configs(args)
    if configs is None:
        return None
    config, sim_config = configs
    try:
        chaos = _chaos_plan(args)
    except ConfigurationError as err:
        print(str(err), file=sys.stderr)
        return None
    telemetry, spans, progress_sink = _build_telemetry(
        args, len(workloads) * len(designs)
    )
    if chaos is not None and chaos.wants_worker_chaos and telemetry is None:
        # Worker chaos (kills/hangs) is detected through heartbeats, so
        # a bare heartbeat channel is attached even without telemetry
        # flags; counters stay bit-identical either way.
        from repro.parallel import SweepTelemetry
        from repro.parallel.telemetry import DEFAULT_HEARTBEAT_EVERY

        telemetry = SweepTelemetry(heartbeat_every=getattr(
            args, "heartbeat_every", DEFAULT_HEARTBEAT_EVERY
        ))
    try:
        outcome = run_matrix_sharded(
            workloads, designs, config, sim_config,
            n_accesses=args.accesses, seed=args.seed, jobs=args.jobs,
            max_attempts=getattr(args, "max_attempts", 2),
            cell_timeout_s=getattr(args, "cell_timeout", None),
            checkpoint=getattr(args, "checkpoint", None),
            resume=getattr(args, "resume", None),
            telemetry=telemetry,
            manifest=getattr(args, "manifest", None),
            chaos=chaos,
            progress_timeout_s=getattr(args, "progress_timeout", None),
            quarantine_after=getattr(args, "quarantine_after", None),
            retry_budget=getattr(args, "retry_budget", None),
            backoff_base_s=getattr(args, "backoff_base", 0.0),
            handle_signals=True,
        )
    except ConfigurationError as err:
        # e.g. a resume checkpoint written by a different plan
        print(str(err), file=sys.stderr)
        return None
    finally:
        if telemetry is not None and telemetry.progress is not None:
            telemetry.progress.finish()
        if progress_sink is not None:
            progress_sink.close()
    if spans is not None:
        spans_out = getattr(args, "trace_spans", None)
        count = spans.dump_jsonl(spans_out)
        print(f"wrote {count} span(s) -> {spans_out}", file=sys.stderr)
    return outcome


def _chaos_plan(args):
    """A ChaosPlan from ``--chaos``/``--chaos-seed``, or None."""
    spec = getattr(args, "chaos", None)
    if not spec:
        return None
    from repro.resilience import ChaosPlan, parse_chaos_spec

    return ChaosPlan(
        seed=getattr(args, "chaos_seed", 0xC7A05), **parse_chaos_spec(spec)
    )


def _matrix_exit_code(outcome) -> int:
    """Map a MatrixOutcome onto the documented matrix exit codes."""
    if outcome.failed or (outcome.audit is not None and not outcome.audit["ok"]):
        return EXIT_MATRIX_FAILED
    if outcome.interrupted:
        return EXIT_MATRIX_INTERRUPTED
    if outcome.quarantined:
        return EXIT_MATRIX_QUARANTINED
    return EXIT_MATRIX_OK


def _print_matrix(outcome, workloads, designs, args) -> None:
    print(f"{len(workloads)}x{len(designs)} matrix "
          f"(1/{args.scale} scale, {args.accesses} accesses, "
          f"{outcome.jobs} job{'s' if outcome.jobs != 1 else ''}, "
          f"{outcome.elapsed_s:.2f}s, "
          f"{outcome.traces_generated}/{outcome.cells} traces generated)")
    print(format_matrix(outcome.results, workloads, designs,
                        metric="ipc", title="IPC"))
    print(format_matrix(outcome.results, workloads, designs,
                        metric="serve_rate", title="fast-memory serve rate"))
    print(f"merged serve rate: {outcome.serve.rate:.4f} "
          f"({outcome.serve.hits}/{outcome.serve.total})")
    if outcome.resumed:
        print(f"resumed {outcome.resumed} cell(s) from checkpoint")
    if outcome.salvaged:
        print(f"salvaged {outcome.salvaged} cell(s) from a damaged checkpoint")
    if outcome.retries:
        print(f"requeued {outcome.retries} cell attempt(s)")
    resilience = outcome.resilience_counters.as_dict()
    if resilience:
        print("resilience counters (merged):")
        for key, value in sorted(resilience.items()):
            print(f"  {key:<36} {value}")
    orchestration = outcome.orchestration.as_dict()
    if orchestration:
        print("orchestration counters:")
        for key, value in sorted(orchestration.items()):
            print(f"  {key:<36} {value}")
    if outcome.audit is not None:
        if outcome.audit["ok"]:
            print(f"manifest audit: ok ({outcome.audit['checked']} checks)")
        else:
            print(f"manifest audit: FAILED "
                  f"({len(outcome.audit['mismatches'])} mismatch(es)):",
                  file=sys.stderr)
            for mismatch in outcome.audit["mismatches"]:
                print(f"  {mismatch}", file=sys.stderr)
    if outcome.quarantined:
        print(f"QUARANTINED cells ({len(outcome.quarantined)}):",
              file=sys.stderr)
        for key, record in sorted(outcome.quarantined.items()):
            print(f"  {key}: {record['message']}", file=sys.stderr)
    if outcome.interrupted:
        print("interrupted: sweep stopped early; the checkpoint is "
              "resumable with --resume", file=sys.stderr)
    if outcome.failed:
        print(f"FAILED cells ({len(outcome.failed)}):", file=sys.stderr)
        for key, error in sorted(outcome.failed.items()):
            print(f"  {key}: {error['type']}: {error['message']} "
                  f"(after {error['attempt']} attempt(s))", file=sys.stderr)


def cmd_matrix(args, workloads, designs) -> int:
    """Matrix mode of the default command: sweep and print the tables.

    Exit codes: 0 clean, 3 completed-with-quarantined, 4 failed cells or
    failed audit, 130 interrupted with a resumable checkpoint.
    """
    outcome = _run_matrix_outcome(args, workloads, designs)
    if outcome is None:
        return 2
    _print_matrix(outcome, workloads, designs, args)
    return _matrix_exit_code(outcome)


def _resilience_config(args):
    """A ResilienceConfig from CLI flags, or None when none were given."""
    spec = getattr(args, "faults", None)
    check = getattr(args, "check_invariants", False)
    if not spec and not check:
        return None
    from repro.common.config import ResilienceConfig
    from repro.resilience import parse_fault_spec

    probs = parse_fault_spec(spec) if spec else {}
    # Table corruption is only survivable with the checker on; enabling
    # it implicitly beats rejecting the flag combination.
    check = check or probs.get("p_table_corruption", 0.0) > 0.0
    return ResilienceConfig(
        enabled=bool(probs) or check,
        fault_seed=getattr(args, "fault_seed", 0xBA51C),
        check_invariants=check,
        **probs,
    )


def _configs(args):
    config, sim_config = scaled_system(args.scale)
    if args.flat:
        layout = dataclasses.replace(config.layout, flat_fraction=0.75)
        config = dataclasses.replace(config, layout=layout)
    resilience = _resilience_config(args)
    if resilience is not None:
        config = dataclasses.replace(config, resilience=resilience)
    return config, sim_config


def _try_configs(args):
    try:
        return _configs(args)
    except ConfigurationError as err:
        print(str(err), file=sys.stderr)
        return None


def _observed_run(args, configs, tracer=None, metrics=None, profiler=None):
    """Run one cell; returns ``(result, controller)`` so callers can read
    controller-side diagnostics (e.g. the deferred decline counters)."""
    config, sim_config = configs
    return run_cell(
        args.workload, args.design, config, sim_config,
        args.accesses, args.seed,
        tracer=tracer, metrics=metrics, profiler=profiler,
    )


def _print_deferred_declines(controller) -> None:
    """Per-reason deferred-seam decline table (``repro report``).

    The counters live on the controller (not in ``stats``: only the
    batched path classifies, and stats must stay bit-identical across
    loops). All-zero with per-access tracing attached simply means the
    seam never engaged.
    """
    declines = getattr(controller, "deferred_declines", None)
    if declines is None:
        return
    total = sum(declines.values())
    print(f"  deferred-seam declines ({total} total):")
    for reason, count in sorted(declines.items(), key=lambda kv: -kv[1]):
        share = count / total if total else 0.0
        print(f"    {reason:<16} {count:>8}  {share:6.1%}")


def _print_case_mix(case_counts) -> None:
    print("  case mix:")
    total = sum(case_counts.values()) or 1
    for case, count in sorted(case_counts.items(), key=lambda kv: -kv[1]):
        print(f"    {case:<12} {count / total:6.1%}")


def cmd_trace(argv) -> int:
    """``python -m repro trace``: dump a JSONL event stream."""
    from repro.obs import EventTracer

    args = build_trace_parser().parse_args(argv)
    if not _validate_workload(args.workload):
        return 2
    if args.sample_every <= 0 or args.ring <= 0:
        print("--sample-every and --ring must be positive", file=sys.stderr)
        return 2
    configs = _try_configs(args)
    if configs is None:
        return 2
    with open(args.out, "w", encoding="utf-8") as sink:
        tracer = EventTracer(
            capacity=args.ring, sample_every=args.sample_every, sink=sink
        )
        _observed_run(args, configs, tracer=tracer)
        tracer.close()
    print(f"{args.workload} on {args.design}: "
          f"{tracer.sampled} events ({tracer.emitted} emitted) -> {args.out}")
    for etype, count in sorted(tracer.counts_by_type().items()):
        print(f"  {etype:<16} {count}")
    return 0


def _print_registry(registry, fmt: str) -> None:
    if fmt == "json":
        print(json.dumps(registry.to_json(), indent=2, default=str))
        return
    if fmt == "prometheus":
        print(registry.to_prometheus(), end="")
        return
    for name in registry:
        metric = registry.get(name)
        if metric.kind == "histogram":
            print(f"  {name}: count={metric.total} mean={metric.mean:.1f} "
                  f"p50={metric.quantile(0.5):g} p95={metric.quantile(0.95):g}")
        elif metric.kind == "series":
            print(f"  {name}: {len(metric.points)} points, last={metric.last:.4f}")
        else:
            for labels, value in metric.series():
                print(f"  {name}{labels}: {value:g}")


def cmd_matrix_report(args, workloads, designs) -> int:
    """Matrix mode of ``report``: sweep, then export merged metric shards."""
    from repro.obs import MetricsRegistry

    outcome = _run_matrix_outcome(args, workloads, designs)
    if outcome is None:
        return 2
    _print_matrix(outcome, workloads, designs, args)
    if args.metrics:
        # Cross-shard worker registries (shard-labeled counters, folded
        # histograms) when the sweep collected them, plus the merged
        # matrix totals either way — one registry, one export.
        registry = (outcome.metrics if outcome.metrics is not None
                    else MetricsRegistry())
        registry.ingest_counter_group(
            "repro_matrix_controller_total", outcome.counters,
            help="controller counters merged across matrix cells",
        )
        registry.ingest_counter_group(
            "repro_matrix_device_total", outcome.device_counters,
            help="device counters merged across matrix cells",
        )
        if outcome.compression_counters.as_dict():
            registry.ingest_counter_group(
                "repro_matrix_compression_total", outcome.compression_counters,
                help="compression-engine counters merged across matrix cells",
            )
        _print_registry(registry, args.format)
    return 0


def cmd_report(argv) -> int:
    """``python -m repro report``: run, then summarize trace and metrics."""
    from repro.obs import EventTracer, MetricsRegistry, PhaseProfiler

    args = build_report_parser().parse_args(argv)
    matrix = _parse_matrix(args)
    if matrix is not None:
        return cmd_matrix_report(args, *matrix)
    if not _validate_workload(args.workload):
        return 2
    configs = _try_configs(args)
    if configs is None:
        return 2
    tracer = EventTracer(capacity=1 << 20)
    registry = MetricsRegistry() if args.metrics else None
    profiler = PhaseProfiler() if args.profile else None
    result, _ = _observed_run(
        args, configs, tracer=tracer, metrics=registry, profiler=profiler
    )

    print(f"{args.workload} on {args.design} "
          f"(1/{args.scale} scale, {args.accesses} accesses)")
    for key, value in result.summary().items():
        print(f"  {key:<18} {value:.4f}")
    breakdown = tracer.case_breakdown()
    print("  access cases (from trace):")
    total = sum(breakdown.values()) or 1
    for case, count in sorted(breakdown.items(), key=lambda kv: -kv[1]):
        print(f"    {case:<12} {count:>8}  {count / total:6.1%}")
    print("  events by type:")
    for etype, count in sorted(tracer.counts_by_type().items()):
        print(f"    {etype:<16} {count}")
    # The traced run pins the controller to the scalar path (per-access
    # tracing disables batching), so the seam diagnostics come from one
    # untraced batched rerun of the same cell — bit-identical results,
    # real decline counters.
    seam_result, seam_ctrl = _observed_run(args, configs)
    if getattr(seam_ctrl, "deferred_declines", None) is not None:
        _print_deferred_declines(seam_ctrl)
        if seam_result.to_dict() != result.to_dict():
            print("  WARNING: batched rerun diverged from the traced run",
                  file=sys.stderr)

    if registry is not None:
        _print_registry(registry, args.format)
    if profiler is not None:
        print(profiler.format_report())
    return 0


def build_manifest_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro manifest",
        description="Inspect and compare run manifests written by matrix "
        "sweeps (--manifest / --checkpoint).",
    )
    sub = parser.add_subparsers(dest="action", required=True)
    show = sub.add_parser("show", help="print one manifest's summary")
    show.add_argument("path", help="manifest JSON file")
    diff = sub.add_parser(
        "diff",
        help="compare two manifests; exit 1 when identity fields "
        "(fingerprint, counter digest, results) differ",
    )
    diff.add_argument("a", help="first manifest")
    diff.add_argument("b", help="second manifest")
    return parser


def cmd_manifest(argv) -> int:
    """``python -m repro manifest``: show or diff run manifests."""
    from repro.obs import diff_manifests, format_diff, load_manifest

    args = build_manifest_parser().parse_args(argv)
    try:
        if args.action == "show":
            doc = load_manifest(args.path)
            print(f"manifest {args.path}")
            print(f"  fingerprint     {doc['fingerprint']}")
            print(f"  counter digest  {doc['counter_digest']}")
            print(f"  git revision    {doc.get('git_revision') or '(none)'}")
            packages = ", ".join(
                f"{name} {version}"
                for name, version in sorted(doc.get("packages", {}).items())
            )
            print(f"  packages        {packages}")
            print(f"  cells           {doc['cells']} "
                  f"({len(doc.get('failed', []))} failed, "
                  f"{doc.get('retries', 0)} retried, "
                  f"{doc.get('resumed', 0)} resumed)")
            print(f"  wall/cpu        {doc['wall_s']:.2f}s / "
                  + (f"{doc['cpu_s']:.2f}s" if doc.get("cpu_s") is not None
                     else "n/a"))
            for cell, entry in sorted(doc.get("results", {}).items()):
                print(f"  {cell:<28} ipc={entry['ipc']:.4f} "
                      f"digest={entry['digest'][:12]}")
            return 0
        diff = diff_manifests(load_manifest(args.a), load_manifest(args.b))
        print(format_diff(diff))
        return 1 if diff["identity"] else 0
    except ConfigurationError as err:
        print(str(err), file=sys.stderr)
        return 2


def build_chaos_soak_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro chaos-soak",
        description="Seeded orchestration-chaos soak: run a serial "
        "chaos-free reference sweep, then the same plan under injected "
        "chaos (worker kills and hangs, dropped heartbeats, torn "
        "checkpoint writes, one mid-sweep interrupt), resume it, and "
        "assert the merged counters are bit-identical to the reference "
        "and the end-of-run manifest audit passes. Exit codes: 0 soak "
        "passed; 3 passed with quarantined cells (--poison); 4 failed.",
    )
    parser.add_argument("--cells", type=int, default=12,
                        help="plan size: one cell per seed 1..N (default 12)")
    parser.add_argument("--chaos-seed", type=int, default=7,
                        help="chaos schedule seed (default 7)")
    parser.add_argument("--accesses", type=int, default=1500,
                        help="trace length per cell (default 1500)")
    parser.add_argument("--scale", type=int, default=256,
                        help="capacity scale divisor vs Table I (default 256)")
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker processes for the chaos runs (default 4)")
    parser.add_argument("--workload", default="YCSB-B",
                        help="workload to soak (default YCSB-B)")
    parser.add_argument("--design", default="baryon",
                        help="design to soak (default baryon)")
    parser.add_argument("--chaos", metavar="SPEC",
                        default="kill=0.25,hang=0.2,hang_s=0.6,"
                        "drop=0.02,torn=0.5",
                        help="chaos spec for the soak runs "
                        "(default kill=0.25,hang=0.2,hang_s=0.6,"
                        "drop=0.02,torn=0.5)")
    parser.add_argument("--poison", type=int, default=None, metavar="CELL",
                        help="additionally poison plan cell CELL so the "
                        "circuit breaker quarantines it (expect exit 3)")
    parser.add_argument("--keep-dir", metavar="DIR", default=None,
                        help="directory for soak checkpoints/manifests "
                        "(default: a fresh temporary directory)")
    return parser


def cmd_chaos_soak(argv) -> int:
    """``python -m repro chaos-soak``: chaos the runner, prove bit-identity."""
    import os
    import tempfile

    from repro.parallel import SweepTelemetry, plan_cells, run_plan
    from repro.parallel.runner import _fold
    from repro.resilience import (
        ChaosPlan,
        load_checkpoint,
        parse_chaos_spec,
        plan_fingerprint,
    )

    args = build_chaos_soak_parser().parse_args(argv)
    if not _validate_workload(args.workload):
        return 2
    if args.design not in DESIGNS:
        print(f"unknown design {args.design!r}; choose from "
              f"{', '.join(DESIGNS)}", file=sys.stderr)
        return 2
    if args.cells < 2 or args.jobs < 2:
        print("--cells and --jobs must be >= 2 (worker chaos needs a pool)",
              file=sys.stderr)
        return 2
    try:
        probs = parse_chaos_spec(args.chaos)
        config, sim_config = scaled_system(args.scale)
    except ConfigurationError as err:
        print(str(err), file=sys.stderr)
        return 2
    plan = plan_cells(
        [args.workload], [args.design], seeds=range(1, args.cells + 1)
    )
    workdir = args.keep_dir or tempfile.mkdtemp(prefix="chaos-soak-")
    os.makedirs(workdir, exist_ok=True)
    ref_ckpt = os.path.join(workdir, "reference.ckpt")
    soak_ckpt = os.path.join(workdir, "soak.ckpt")

    print(f"[1/3] serial chaos-free reference ({len(plan)} cells, "
          f"{args.accesses} accesses each)")
    reference = run_plan(
        plan, config, sim_config, n_accesses=args.accesses, jobs=1,
        checkpoint=ref_ckpt,
    )
    if reference.failed:
        print(f"reference run failed: {reference.failed}", file=sys.stderr)
        return EXIT_MATRIX_FAILED

    poison = (args.poison,) if args.poison is not None else ()
    base = ChaosPlan(seed=args.chaos_seed, poison_cells=poison, **probs)
    first = dataclasses.replace(
        base, interrupt_after_cells=max(1, args.cells // 3)
    )
    common = dict(
        n_accesses=args.accesses, jobs=args.jobs, max_attempts=6,
        cell_timeout_s=5.0, progress_timeout_s=0.4, quarantine_after=5,
        retry_budget=10 * args.cells, backoff_base_s=0.01,
        checkpoint=soak_ckpt, handle_signals=True, interrupt_grace_s=10.0,
    )

    print(f"[2/3] chaos sweep ({base.describe()}; interrupt after "
          f"{first.interrupt_after_cells} cells)")
    first_out = run_plan(
        plan, config, sim_config, chaos=first,
        telemetry=SweepTelemetry(heartbeat_every=200), **common,
    )
    print(f"      {len(first_out.results)} done, "
          f"{first_out.retries} requeued, interrupted="
          f"{first_out.interrupted}, "
          f"chaos injected: {dict(sorted(first_out.orchestration.items()))}")

    print("[3/3] resumed chaos sweep (same chaos, no interrupt)")
    final = run_plan(
        plan, config, sim_config, chaos=base, resume=soak_ckpt,
        telemetry=SweepTelemetry(heartbeat_every=200), **common,
    )
    print(f"      {len(final.results)} done, {final.resumed} resumed, "
          f"{final.salvaged} salvaged, {final.retries} requeued, "
          f"{len(final.quarantined)} quarantined, "
          f"chaos injected: {dict(sorted(final.orchestration.items()))}")

    ok = True
    if final.failed:
        print(f"FAIL: {len(final.failed)} cell(s) failed: "
              f"{sorted(final.failed)}", file=sys.stderr)
        ok = False
    if final.interrupted:
        print("FAIL: resumed sweep still interrupted", file=sys.stderr)
        ok = False
    if final.audit is None or not final.audit["ok"]:
        print(f"FAIL: manifest audit did not pass: {final.audit}",
              file=sys.stderr)
        ok = False
    expected_quarantined = {
        key for key in final.quarantined
        if args.poison is not None and key == plan[args.poison].key
    } if final.quarantined else set()
    if set(final.quarantined) - expected_quarantined:
        print(f"FAIL: unexpected quarantined cells: "
              f"{sorted(set(final.quarantined) - expected_quarantined)}",
              file=sys.stderr)
        ok = False

    # Bit-identity: fold the *reference* payloads over exactly the cells
    # the chaos run completed (all of them, minus any poisoned cell) and
    # compare every merged counter group. Chaos may change which attempt
    # produced a payload — never the payload.
    fingerprint = plan_fingerprint(plan, args.accesses, config, sim_config)
    ref_payloads = load_checkpoint(ref_ckpt, fingerprint)
    completed = [
        index for index in sorted(ref_payloads)
        if plan[index].key in final.results
    ]
    if len(completed) != len(plan) - len(final.quarantined):
        print(f"FAIL: chaos run completed {len(completed)} of "
              f"{len(plan)} cells", file=sys.stderr)
        ok = False
    subset = _fold(plan, [ref_payloads[i] for i in completed], 1, 0.0)
    for attr in ("counters", "device_counters", "compression_counters",
                 "resilience_counters"):
        want = getattr(subset, attr).as_dict()
        got = getattr(final, attr).as_dict()
        if want != got:
            diff = {key: (want.get(key), got.get(key))
                    for key in set(want) | set(got)
                    if want.get(key) != got.get(key)}
            print(f"FAIL: merged {attr} differ from the chaos-free "
                  f"reference: {diff}", file=sys.stderr)
            ok = False
    if (subset.serve.hits, subset.serve.total) != (
            final.serve.hits, final.serve.total):
        print(f"FAIL: merged serve ratio differs: "
              f"{subset.serve.hits}/{subset.serve.total} vs "
              f"{final.serve.hits}/{final.serve.total}", file=sys.stderr)
        ok = False

    # Temp-file hygiene: every durable_replace temp must have been
    # promoted or unlinked, even on the poison/interrupt paths.
    stray = sorted(
        name for name in os.listdir(workdir) if name.endswith(".tmp")
    )
    if stray:
        print(f"FAIL: stray temp file(s) left behind: {stray}",
              file=sys.stderr)
        ok = False

    if not ok:
        return EXIT_MATRIX_FAILED
    print(f"chaos soak PASSED: merged counters bit-identical to the "
          f"chaos-free serial reference over {len(completed)} cell(s); "
          f"manifest audit ok")
    if final.quarantined:
        for key, record in sorted(final.quarantined.items()):
            print(f"quarantined (expected): {key}: {record['message']}")
        return EXIT_MATRIX_QUARANTINED
    return EXIT_MATRIX_OK


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Run the simulation job server: submit matrix jobs "
                    "over HTTP, results cached by config fingerprint "
                    "(see docs/serving.md).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8642,
                        help="listen port (0 picks a free one; default "
                             "%(default)s)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes in the shared cell executor "
                             "(0 = all cores; default %(default)s)")
    parser.add_argument("--workdir", default=None,
                        help="directory for job checkpoints (default: a "
                             "fresh temp dir)")
    parser.add_argument("--cache-dir", default=None,
                        help="result cache directory (default: "
                             "<workdir>/cache)")
    parser.add_argument("--cache-entries", type=int, default=4096,
                        help="result cache capacity before mtime pruning")
    parser.add_argument("--queue-limit", type=int, default=8,
                        help="queued jobs before POST /jobs answers 503")
    parser.add_argument("--heartbeat-every", type=int, default=1000,
                        help="worker heartbeat cadence in accesses")
    return parser


def cmd_serve(argv) -> int:
    """``python -m repro serve``: the async job server (docs/serving.md)."""
    import asyncio

    from repro.serve import JobServer

    args = build_serve_parser().parse_args(argv)
    server = JobServer(
        host=args.host, port=args.port, jobs=args.jobs,
        workdir=args.workdir, cache_dir=args.cache_dir,
        cache_entries=args.cache_entries, queue_limit=args.queue_limit,
        heartbeat_every=args.heartbeat_every,
    )

    def announce(srv):
        print(f"serving on http://{srv.host}:{srv.port} "
              f"(workdir {srv.workdir}, cache {srv.cache.root}, "
              f"{srv.executor.workers} worker(s))", flush=True)

    asyncio.run(server.serve(on_ready=announce))
    print("drained cleanly")
    return 0


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        return cmd_serve(argv[1:])
    if argv and argv[0] == "trace":
        return cmd_trace(argv[1:])
    if argv and argv[0] == "report":
        return cmd_report(argv[1:])
    if argv and argv[0] == "validate":
        return cmd_validate(argv[1:])
    if argv and argv[0] == "manifest":
        return cmd_manifest(argv[1:])
    if argv and argv[0] == "chaos-soak":
        return cmd_chaos_soak(argv[1:])

    args = build_parser().parse_args(argv)
    if args.list:
        print("designs  :", ", ".join(DESIGNS))
        print("workloads:")
        for name, spec in sorted(WORKLOADS.items()):
            print(f"  {name:<16} {spec.description}")
        return 0
    if not args.workload:
        build_parser().print_usage()
        return 2
    matrix = _parse_matrix(args)
    if matrix is not None:
        return cmd_matrix(args, *matrix)
    if not _validate_workload(args.workload):
        return 2

    configs = _try_configs(args)
    if configs is None:
        return 2
    profiler = None
    if args.profile:
        from repro.obs import PhaseProfiler

        profiler = PhaseProfiler()
    result, controller = _observed_run(args, configs, profiler=profiler)
    print(f"{args.workload} on {args.design} "
          f"(1/{args.scale} scale, {args.accesses} accesses)")
    for key, value in result.summary().items():
        print(f"  {key:<18} {value:.4f}")
    _print_case_mix(result.case_counts)
    if not args.profile:
        # Profiling forces the scalar loop; otherwise the batched seam
        # ran and its decline mix is a real diagnostic.
        _print_deferred_declines(controller)
    if profiler is not None:
        print(profiler.format_report())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
