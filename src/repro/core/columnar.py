"""Columnar controller state: structured-array mirrors + probe indices.

The controller's per-super-block metadata lives in small Python objects
(:class:`~repro.metadata.stage_tag.StageTagEntry` slots,
:class:`~repro.metadata.remap.RemapEntry`, remap-cache lines). Those
objects stay the API — every existing mutation path still goes through
them — but the state they hold is naturally flat and array-addressable
(Trimma makes the same observation about hybrid-memory metadata), so this
module maintains the *columnar* representation alongside them:

* preallocated numpy structured arrays (``stage_tags``, ``stage_slots``,
  ``stage_credit``, ``remap_rows``, ``rc_occupancy``) holding the same
  fields column-wise;
* derived O(1) probe indices (``stage_sub``, ``stage_block``) that answer
  the stage tag array's associative lookups with one dict probe instead
  of a set scan — the classification step of the controller's deferred
  batch fast path (:meth:`~repro.core.controller.BaryonController.access_deferred`);
* per-set remap-cache occupancy, so cache repair
  (:meth:`~repro.metadata.remap_cache.RemapCache.repair`) reuses the set
  index instead of re-probing.

Mirroring strategy — the same idiom as the deferred integer counters:

* **Eager columns** are updated by hooks at every mutation site (stage
  allocate/invalidate/insert/remove/fifo/miss, remap-table set/clear,
  remap-cache fill/invalidate). These sites are rare relative to the
  access rate, so the mirror costs nothing on the hot path.
* **Write-behind columns** (``stage_tags["lru"]``, ``stage_credit``) back
  hot per-access counters (LRU rank promotion, per-set access credits)
  that the fast path never reads; they are folded in bulk by
  :meth:`ColumnarState.sync_deferred_columns` — exact at any observation
  point, off the per-access path.

:meth:`ColumnarState.verify` asserts bit-exact agreement between the
columnar state and the authoritative objects; the equivalence tests call
it after every controller mutation site.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

#: One stage tag array entry (per-entry metadata columns).
STAGE_TAG_DTYPE = np.dtype(
    [
        ("tag", np.int64),
        ("valid", np.bool_),
        ("lru", np.int64),
        ("fifo", np.int64),
        ("miss_count", np.int64),
    ]
)

#: One stage range slot (the 8-bit prefix-coded slot, field-expanded).
STAGE_SLOT_DTYPE = np.dtype(
    [
        ("valid", np.bool_),
        ("cf", np.int64),
        ("dirty", np.bool_),
        ("zero", np.bool_),
        ("blk_off", np.int64),
        ("sub_start", np.int64),
    ]
)

#: Per-set commit-model credit state (MRUMissCnt + aging credit).
STAGE_CREDIT_DTYPE = np.dtype(
    [
        ("mru_miss_cnt", np.int64),
        ("set_accesses", np.int64),
    ]
)

#: One remap-table entry row in the arena (compact format, field-expanded).
REMAP_DTYPE = np.dtype(
    [
        ("block_id", np.int64),
        ("valid", np.bool_),
        ("remap", np.int64),
        ("pointer", np.int64),
        ("cf2", np.int64),
        ("cf4", np.int64),
        ("zero", np.bool_),
    ]
)

_INITIAL_REMAP_ROWS = 1024


class ColumnarState:
    """Columnar mirror of one controller's metadata state.

    Constructed by :class:`~repro.core.controller.BaryonController` after
    the resilience layer, so the remap-table ``shadow`` observer chain is
    preserved: this object becomes the shadow and forwards every update to
    the previous shadow (e.g. the
    :class:`~repro.resilience.checker.ShadowChecker`).
    """

    def __init__(self, controller) -> None:
        stage = controller.stage
        geometry = controller.geometry
        self._stage = stage
        self._remap_table = controller.remap_table
        self._remap_cache = controller.remap_cache
        self._stage_sets = stage.num_sets
        self._spb = geometry.sub_blocks_per_block
        self._bps = geometry.super_block_blocks

        slots = stage.tags.slots_per_entry
        self.stage_tags = np.zeros((stage.num_sets, stage.ways), STAGE_TAG_DTYPE)
        self.stage_slots = np.zeros(
            (stage.num_sets, stage.ways, slots), STAGE_SLOT_DTYPE
        )
        self.stage_credit = np.zeros(stage.num_sets, STAGE_CREDIT_DTYPE)
        self.rc_occupancy = np.zeros(controller.remap_cache.num_sets, np.int64)

        # Remap arena: a growable row store + block_id -> row index. Rows
        # are recycled through a free list so the arena stays dense-ish
        # without ever moving live rows.
        self.remap_rows = np.zeros(_INITIAL_REMAP_ROWS, REMAP_DTYPE)
        self._remap_index: Dict[int, int] = {}
        self._remap_free: List[int] = []
        self._remap_used = 0

        # Derived probe indices for the deferred fast path. ``stage_sub``
        # maps ``block_id * sub_blocks_per_block + sub_index`` to the
        # (way, slot) holding it — exactly the answer of
        # ``StageArea.lookup_sub_block`` (Rule 3 guarantees one way per
        # block; ranges never overlap, so the covering slot is unique).
        # ``stage_block`` maps ``block_id`` to ``[way, slot_refcount]`` —
        # presence is ``StageArea.lookup_block``'s verdict.
        self.stage_sub: Dict[int, Tuple[int, int]] = {}
        self.stage_block: Dict[int, List[int]] = {}

        # Zero templates for structured row resets.
        self._zero_tag = np.zeros(1, STAGE_TAG_DTYPE)[0]
        self._zero_slot = np.zeros(1, STAGE_SLOT_DTYPE)[0]
        self._zero_remap = np.zeros(1, REMAP_DTYPE)[0]

        # Wire into the observed structures. The remap shadow chains; the
        # stage area and remap cache get a direct back-reference.
        self._shadow_next = controller.remap_table.shadow
        controller.remap_table.shadow = self
        stage.columnar = self
        controller.remap_cache.columnar = self

    # ------------------------------------------------------- stage hooks
    def stage_allocate(self, set_index: int, way: int, entry) -> None:
        """Mirror ``StageArea.allocate``: a fresh valid entry, no slots."""
        self.stage_tags[set_index, way] = (
            entry.tag, True, entry.lru, entry.fifo, entry.miss_count
        )

    def stage_invalidate(self, set_index: int, way: int, snapshot) -> None:
        """Mirror ``StageArea.invalidate`` from the pre-reset snapshot."""
        super_id = snapshot.tag * self._stage_sets + set_index
        base = super_id * self._bps
        for slot in snapshot.slots:
            if slot is not None:
                self._drop_slot_keys(base + slot.blk_off, slot)
        self.stage_tags[set_index, way] = self._zero_tag
        self.stage_slots[set_index, way] = self._zero_slot

    def stage_insert(
        self, set_index: int, way: int, slot_index: int, slot, tag: int
    ) -> None:
        """Mirror ``StageArea.insert_range`` into columns + probe dicts."""
        self.stage_slots[set_index, way, slot_index] = (
            True, slot.cf, slot.dirty, slot.zero, slot.blk_off, slot.sub_start
        )
        super_id = tag * self._stage_sets + set_index
        block_id = super_id * self._bps + slot.blk_off
        base = block_id * self._spb
        location = (way, slot_index)
        sub_map = self.stage_sub
        if slot.zero:
            for sub in range(self._spb):
                sub_map[base + sub] = location
        else:
            for sub in range(slot.sub_start, slot.sub_start + slot.cf):
                sub_map[base + sub] = location
        ref = self.stage_block.get(block_id)
        if ref is None:
            self.stage_block[block_id] = [way, 1]
        else:
            # Latest insert wins the way field: a block-level regroup
            # interleaves remove/insert while moving a block's slots to a
            # freshly allocated way, so the way changes mid-sequence and
            # settles on the destination (Rule 3 holds again at the end).
            ref[0] = way
            ref[1] += 1

    def stage_remove(
        self, set_index: int, way: int, slot_index: int, slot, tag: int
    ) -> None:
        """Mirror ``StageArea.remove_slot``."""
        self.stage_slots[set_index, way, slot_index] = self._zero_slot
        super_id = tag * self._stage_sets + set_index
        self._drop_slot_keys(super_id * self._bps + slot.blk_off, slot)

    def _drop_slot_keys(self, block_id: int, slot) -> None:
        base = block_id * self._spb
        pop = self.stage_sub.pop
        if slot.zero:
            for sub in range(self._spb):
                pop(base + sub, None)
        else:
            for sub in range(slot.sub_start, slot.sub_start + slot.cf):
                pop(base + sub, None)
        ref = self.stage_block.get(block_id)
        if ref is not None:
            ref[1] -= 1
            if ref[1] <= 0:
                del self.stage_block[block_id]

    def stage_fifo(self, set_index: int, way: int, fifo: int) -> None:
        """Mirror the FIFO pointer advance of ``fifo_victim_slot``."""
        self.stage_tags["fifo"][set_index, way] = fifo

    def stage_block_miss(self, set_index: int, way: int, miss_count: int) -> None:
        """Mirror the MissCnt bump of ``record_block_miss``."""
        self.stage_tags["miss_count"][set_index, way] = miss_count

    def stage_aging(self, set_index: int) -> None:
        """Mirror the right-shift aging of one set's MissCnt column (the
        MRUMissCnt/credit columns are write-behind; see
        :meth:`sync_deferred_columns`)."""
        self.stage_tags["miss_count"][set_index] >>= 1

    def stage_mark_dirty(self, set_index: int, way: int, slot_index: int) -> None:
        """Mirror ``StageArea.mark_dirty`` (stage-hit write path)."""
        self.stage_slots["dirty"][set_index, way, slot_index] = True

    # ------------------------------------------------- remap table shadow
    def on_set(self, block_id: int, entry) -> None:
        """Remap-table shadow observer: upsert the arena row, then forward
        along the shadow chain."""
        if entry.is_remapped:
            row = self._remap_index.get(block_id)
            if row is None:
                row = self._alloc_remap_row()
                self._remap_index[block_id] = row
            self.remap_rows[row] = (
                block_id, True, entry.remap, entry.pointer,
                entry.cf2, entry.cf4, entry.zero,
            )
        else:
            self._drop_remap(block_id)
        if self._shadow_next is not None:
            self._shadow_next.on_set(block_id, entry)

    def on_clear(self, block_id: int) -> None:
        self._drop_remap(block_id)
        if self._shadow_next is not None:
            self._shadow_next.on_clear(block_id)

    def _alloc_remap_row(self) -> int:
        free = self._remap_free
        if free:
            return free.pop()
        row = self._remap_used
        rows = self.remap_rows
        if row >= len(rows):
            grown = np.zeros(len(rows) * 2, REMAP_DTYPE)
            grown[: len(rows)] = rows
            self.remap_rows = grown
        self._remap_used += 1
        return row

    def _drop_remap(self, block_id: int) -> None:
        row = self._remap_index.pop(block_id, None)
        if row is not None:
            self.remap_rows[row] = self._zero_remap
            self._remap_free.append(row)

    # --------------------------------------------------- deferred columns
    def sync_deferred_columns(self) -> None:
        """Fold the write-behind columns from the object state.

        The stage LRU ranks and the per-set credit counters mutate on
        every access (``touch``/``record_set_access``); mirroring them
        eagerly would put numpy scalar writes on the hot path for columns
        nothing reads between observation points. This folds them in bulk
        — the same contract as the deferred integer counters.
        """
        stage = self._stage
        self.stage_tags["lru"][:] = [
            [entry.lru for entry in row] for row in stage.tags.entries
        ]
        self.stage_credit["mru_miss_cnt"][:] = stage.mru_miss_cnt
        self.stage_credit["set_accesses"][:] = stage._set_accesses

    # ------------------------------------------------------- verification
    def verify(self) -> None:
        """Assert bit-exact agreement with the authoritative objects.

        Test-only (O(state) scans): called by the equivalence tests after
        every mutation site. Raises ``AssertionError`` on any divergence,
        including probe-index staleness and Rule-3 violations.
        """
        self.sync_deferred_columns()
        stage = self._stage
        tags = self.stage_tags
        slots_col = self.stage_slots
        expected_sub: Dict[int, Tuple[int, int]] = {}
        expected_block: Dict[int, List[int]] = {}
        for set_index, row in enumerate(stage.tags.entries):
            for way, entry in enumerate(row):
                t = tags[set_index, way]
                assert bool(t["valid"]) == entry.valid, (set_index, way)
                if entry.valid:
                    assert int(t["tag"]) == entry.tag, (set_index, way)
                    assert int(t["lru"]) == entry.lru, (set_index, way)
                    assert int(t["fifo"]) == entry.fifo, (set_index, way)
                    assert int(t["miss_count"]) == entry.miss_count, (
                        set_index, way
                    )
                else:
                    assert t == self._zero_tag, (set_index, way)
                super_id = entry.tag * self._stage_sets + set_index
                for slot_index, slot in enumerate(entry.slots):
                    c = slots_col[set_index, way, slot_index]
                    if slot is None:
                        assert c == self._zero_slot, (set_index, way, slot_index)
                        continue
                    assert entry.valid, (set_index, way, slot_index)
                    assert (
                        bool(c["valid"]),
                        int(c["cf"]),
                        bool(c["dirty"]),
                        bool(c["zero"]),
                        int(c["blk_off"]),
                        int(c["sub_start"]),
                    ) == (
                        True, slot.cf, slot.dirty, slot.zero,
                        slot.blk_off, slot.sub_start,
                    ), (set_index, way, slot_index)
                    block_id = super_id * self._bps + slot.blk_off
                    ref = expected_block.setdefault(block_id, [way, 0])
                    # Rule 3: one block's staged ranges live in one way.
                    assert ref[0] == way, ("rule-3 violation", block_id)
                    ref[1] += 1
                    subs = (
                        range(self._spb)
                        if slot.zero
                        else range(slot.sub_start, slot.sub_start + slot.cf)
                    )
                    base = block_id * self._spb
                    for sub in subs:
                        key = base + sub
                        # Ranges never overlap: each sub has one cover.
                        assert key not in expected_sub, ("overlap", key)
                        expected_sub[key] = (way, slot_index)
        assert self.stage_sub == expected_sub, "stage_sub probe index stale"
        assert self.stage_block == expected_block, "stage_block probe index stale"

        entries = self._remap_table._entries
        assert set(self._remap_index) == set(entries), "remap arena index stale"
        for block_id, entry in entries.items():
            r = self.remap_rows[self._remap_index[block_id]]
            assert (
                int(r["block_id"]), bool(r["valid"]), int(r["remap"]),
                int(r["pointer"]), int(r["cf2"]), int(r["cf4"]), bool(r["zero"]),
            ) == (
                block_id, True, entry.remap, entry.pointer,
                entry.cf2, entry.cf4, entry.zero,
            ), ("remap row stale", block_id)
        live = set(self._remap_index.values())
        for row in range(self._remap_used):
            if row not in live:
                assert self.remap_rows[row] == self._zero_remap, (
                    "freed remap row not cleared", row
                )

        for index, cache_set in enumerate(self._remap_cache._sets):
            assert int(self.rc_occupancy[index]) == len(cache_set.lines), (
                "remap-cache occupancy stale", index
            )

        credit = self.stage_credit
        for set_index in range(self._stage_sets):
            assert int(credit["mru_miss_cnt"][set_index]) == stage.mru_miss_cnt[set_index]
            assert int(credit["set_accesses"][set_index]) == stage._set_accesses[set_index]

    # -------------------------------------------------------- accounting
    def storage_bytes(self) -> int:
        """Bytes held by the columnar arrays (reporting convenience)."""
        return int(
            self.stage_tags.nbytes
            + self.stage_slots.nbytes
            + self.stage_credit.nbytes
            + self.remap_rows.nbytes
            + self.rc_occupancy.nbytes
        )


__all__ = [
    "STAGE_TAG_DTYPE",
    "STAGE_SLOT_DTYPE",
    "STAGE_CREDIT_DTYPE",
    "REMAP_DTYPE",
    "ColumnarState",
]
