"""Columnar controller state: structured-array mirrors + probe indices.

The controller's per-super-block metadata lives in small Python objects
(:class:`~repro.metadata.stage_tag.StageTagEntry` slots,
:class:`~repro.metadata.remap.RemapEntry`, remap-cache lines). Those
objects stay the API — every existing mutation path still goes through
them — but the state they hold is naturally flat and array-addressable
(Trimma makes the same observation about hybrid-memory metadata), so this
module maintains the *columnar* representation alongside them:

* preallocated numpy structured arrays (``stage_tags``, ``stage_slots``,
  ``stage_credit``, ``remap_rows``, ``rc_occupancy``) holding the same
  fields column-wise;
* derived O(1) probe indices (``stage_sub``, ``stage_block``) that answer
  the stage tag array's associative lookups with one dict probe instead
  of a set scan — the classification step of the controller's deferred
  batch fast path (:meth:`~repro.core.controller.BaryonController.access_deferred`);
* per-set remap-cache occupancy, so cache repair
  (:meth:`~repro.metadata.remap_cache.RemapCache.repair`) reuses the set
  index instead of re-probing.

Mirroring strategy — the same idiom as the deferred integer counters:

* **Eager columns** are updated by hooks at every mutation site (stage
  allocate/invalidate/insert/remove/fifo/miss, remap-table set/clear,
  remap-cache fill/invalidate). These sites are rare relative to the
  access rate, so the mirror costs nothing on the hot path.
* **Write-behind columns** (``stage_tags["lru"]``, ``stage_credit``) back
  hot per-access counters (LRU rank promotion, per-set access credits)
  that the fast path never reads; they are folded in bulk by
  :meth:`ColumnarState.sync_deferred_columns` — exact at any observation
  point, off the per-access path.

:meth:`ColumnarState.verify` asserts bit-exact agreement between the
columnar state and the authoritative objects; the equivalence tests call
it after every controller mutation site.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

#: One stage tag array entry (per-entry metadata columns).
STAGE_TAG_DTYPE = np.dtype(
    [
        ("tag", np.int64),
        ("valid", np.bool_),
        ("lru", np.int64),
        ("fifo", np.int64),
        ("miss_count", np.int64),
    ]
)

#: One stage range slot (the 8-bit prefix-coded slot, field-expanded).
STAGE_SLOT_DTYPE = np.dtype(
    [
        ("valid", np.bool_),
        ("cf", np.int64),
        ("dirty", np.bool_),
        ("zero", np.bool_),
        ("blk_off", np.int64),
        ("sub_start", np.int64),
    ]
)

#: Per-set commit-model credit state (MRUMissCnt + aging credit).
STAGE_CREDIT_DTYPE = np.dtype(
    [
        ("mru_miss_cnt", np.int64),
        ("set_accesses", np.int64),
    ]
)

#: One remap-table entry row in the arena (compact format, field-expanded).
REMAP_DTYPE = np.dtype(
    [
        ("block_id", np.int64),
        ("valid", np.bool_),
        ("remap", np.int64),
        ("pointer", np.int64),
        ("cf2", np.int64),
        ("cf4", np.int64),
        ("zero", np.bool_),
    ]
)

_INITIAL_REMAP_ROWS = 1024


class ColumnarState:
    """Columnar mirror of one controller's metadata state.

    Constructed by :class:`~repro.core.controller.BaryonController` after
    the resilience layer, so the remap-table ``shadow`` observer chain is
    preserved: this object becomes the shadow and forwards every update to
    the previous shadow (e.g. the
    :class:`~repro.resilience.checker.ShadowChecker`).
    """

    def __init__(self, controller) -> None:
        stage = controller.stage
        geometry = controller.geometry
        self._stage = stage
        self._remap_table = controller.remap_table
        self._remap_cache = controller.remap_cache
        self._stage_sets = stage.num_sets
        self._spb = geometry.sub_blocks_per_block
        self._bps = geometry.super_block_blocks

        slots = stage.tags.slots_per_entry
        self.stage_tags = np.zeros((stage.num_sets, stage.ways), STAGE_TAG_DTYPE)
        self.stage_slots = np.zeros(
            (stage.num_sets, stage.ways, slots), STAGE_SLOT_DTYPE
        )
        self.stage_credit = np.zeros(stage.num_sets, STAGE_CREDIT_DTYPE)
        self.rc_occupancy = np.zeros(controller.remap_cache.num_sets, np.int64)

        # Remap arena: a growable row store + block_id -> row index. Rows
        # are recycled through a free list so the arena stays dense-ish
        # without ever moving live rows.
        self.remap_rows = np.zeros(_INITIAL_REMAP_ROWS, REMAP_DTYPE)
        self._remap_index: Dict[int, int] = {}
        self._remap_free: List[int] = []
        self._remap_used = 0

        # Run-classifier support: ``remap_row_of`` is a dense
        # ``block_id -> arena row`` gather index built lazily by
        # :func:`build_run_classifier`; ``dirty_blocks`` collects blocks
        # whose membership state (staged ranges, remap entry) changed
        # since the last bulk classification, so stale chunk verdicts
        # fall back to the per-op classifier. Both are inert (``watching``
        # False) outside classifier-driven runs.
        self.remap_row_of = None
        self.dirty_blocks: set = set()
        self.watching = False

        # Derived probe indices for the deferred fast path. ``stage_sub``
        # maps ``block_id * sub_blocks_per_block + sub_index`` to the
        # (way, slot) holding it — exactly the answer of
        # ``StageArea.lookup_sub_block`` (Rule 3 guarantees one way per
        # block; ranges never overlap, so the covering slot is unique).
        # ``stage_block`` maps ``block_id`` to ``[way, slot_refcount]`` —
        # presence is ``StageArea.lookup_block``'s verdict.
        self.stage_sub: Dict[int, Tuple[int, int]] = {}
        self.stage_block: Dict[int, List[int]] = {}

        # Zero templates for structured row resets.
        self._zero_tag = np.zeros(1, STAGE_TAG_DTYPE)[0]
        self._zero_slot = np.zeros(1, STAGE_SLOT_DTYPE)[0]
        self._zero_remap = np.zeros(1, REMAP_DTYPE)[0]

        # Wire into the observed structures. The remap shadow chains; the
        # stage area and remap cache get a direct back-reference.
        self._shadow_next = controller.remap_table.shadow
        controller.remap_table.shadow = self
        stage.columnar = self
        controller.remap_cache.columnar = self

    # ------------------------------------------------------- stage hooks
    def stage_allocate(self, set_index: int, way: int, entry) -> None:
        """Mirror ``StageArea.allocate``: a fresh valid entry, no slots."""
        self.stage_tags[set_index, way] = (
            entry.tag, True, entry.lru, entry.fifo, entry.miss_count
        )

    def stage_invalidate(self, set_index: int, way: int, snapshot) -> None:
        """Mirror ``StageArea.invalidate`` from the pre-reset snapshot."""
        super_id = snapshot.tag * self._stage_sets + set_index
        base = super_id * self._bps
        for slot in snapshot.slots:
            if slot is not None:
                self._drop_slot_keys(base + slot.blk_off, slot)
        self.stage_tags[set_index, way] = self._zero_tag
        self.stage_slots[set_index, way] = self._zero_slot

    def stage_insert(
        self, set_index: int, way: int, slot_index: int, slot, tag: int
    ) -> None:
        """Mirror ``StageArea.insert_range`` into columns + probe dicts."""
        self.stage_slots[set_index, way, slot_index] = (
            True, slot.cf, slot.dirty, slot.zero, slot.blk_off, slot.sub_start
        )
        super_id = tag * self._stage_sets + set_index
        block_id = super_id * self._bps + slot.blk_off
        base = block_id * self._spb
        location = (way, slot_index)
        sub_map = self.stage_sub
        if slot.zero:
            for sub in range(self._spb):
                sub_map[base + sub] = location
        else:
            for sub in range(slot.sub_start, slot.sub_start + slot.cf):
                sub_map[base + sub] = location
        ref = self.stage_block.get(block_id)
        if ref is None:
            self.stage_block[block_id] = [way, 1]
        else:
            # Latest insert wins the way field: a block-level regroup
            # interleaves remove/insert while moving a block's slots to a
            # freshly allocated way, so the way changes mid-sequence and
            # settles on the destination (Rule 3 holds again at the end).
            ref[0] = way
            ref[1] += 1
        if self.watching:
            self.dirty_blocks.add(block_id)

    def stage_remove(
        self, set_index: int, way: int, slot_index: int, slot, tag: int
    ) -> None:
        """Mirror ``StageArea.remove_slot``."""
        self.stage_slots[set_index, way, slot_index] = self._zero_slot
        super_id = tag * self._stage_sets + set_index
        self._drop_slot_keys(super_id * self._bps + slot.blk_off, slot)

    def _drop_slot_keys(self, block_id: int, slot) -> None:
        base = block_id * self._spb
        pop = self.stage_sub.pop
        if slot.zero:
            for sub in range(self._spb):
                pop(base + sub, None)
        else:
            for sub in range(slot.sub_start, slot.sub_start + slot.cf):
                pop(base + sub, None)
        ref = self.stage_block.get(block_id)
        if ref is not None:
            ref[1] -= 1
            if ref[1] <= 0:
                del self.stage_block[block_id]
        if self.watching:
            self.dirty_blocks.add(block_id)

    def stage_fifo(self, set_index: int, way: int, fifo: int) -> None:
        """Mirror the FIFO pointer advance of ``fifo_victim_slot``."""
        self.stage_tags["fifo"][set_index, way] = fifo

    def stage_block_miss(self, set_index: int, way: int, miss_count: int) -> None:
        """Mirror the MissCnt bump of ``record_block_miss``."""
        self.stage_tags["miss_count"][set_index, way] = miss_count

    def stage_aging(self, set_index: int) -> None:
        """Mirror the right-shift aging of one set's MissCnt column (the
        MRUMissCnt/credit columns are write-behind; see
        :meth:`sync_deferred_columns`)."""
        self.stage_tags["miss_count"][set_index] >>= 1

    def stage_mark_dirty(self, set_index: int, way: int, slot_index: int) -> None:
        """Mirror ``StageArea.mark_dirty`` (stage-hit write path)."""
        self.stage_slots["dirty"][set_index, way, slot_index] = True

    # ------------------------------------------------- remap table shadow
    def on_set(self, block_id: int, entry) -> None:
        """Remap-table shadow observer: upsert the arena row, then forward
        along the shadow chain."""
        if entry.is_remapped:
            row = self._remap_index.get(block_id)
            if row is None:
                row = self._alloc_remap_row()
                self._remap_index[block_id] = row
                row_of = self.remap_row_of
                if row_of is not None and block_id < len(row_of):
                    row_of[block_id] = row
            self.remap_rows[row] = (
                block_id, True, entry.remap, entry.pointer,
                entry.cf2, entry.cf4, entry.zero,
            )
        else:
            self._drop_remap(block_id)
        if self.watching:
            self.dirty_blocks.add(block_id)
        if self._shadow_next is not None:
            self._shadow_next.on_set(block_id, entry)

    def on_clear(self, block_id: int) -> None:
        self._drop_remap(block_id)
        if self.watching:
            self.dirty_blocks.add(block_id)
        if self._shadow_next is not None:
            self._shadow_next.on_clear(block_id)

    def _alloc_remap_row(self) -> int:
        free = self._remap_free
        if free:
            return free.pop()
        row = self._remap_used
        rows = self.remap_rows
        if row >= len(rows):
            grown = np.zeros(len(rows) * 2, REMAP_DTYPE)
            grown[: len(rows)] = rows
            self.remap_rows = grown
        self._remap_used += 1
        return row

    def _drop_remap(self, block_id: int) -> None:
        row = self._remap_index.pop(block_id, None)
        if row is not None:
            self.remap_rows[row] = self._zero_remap
            self._remap_free.append(row)
            row_of = self.remap_row_of
            if row_of is not None and block_id < len(row_of):
                row_of[block_id] = -1

    # --------------------------------------------------- deferred columns
    def sync_deferred_columns(self) -> None:
        """Fold the write-behind columns from the object state.

        The stage LRU ranks and the per-set credit counters mutate on
        every access (``touch``/``record_set_access``); mirroring them
        eagerly would put numpy scalar writes on the hot path for columns
        nothing reads between observation points. This folds them in bulk
        — the same contract as the deferred integer counters.
        """
        stage = self._stage
        self.stage_tags["lru"][:] = [
            [entry.lru for entry in row] for row in stage.tags.entries
        ]
        self.stage_credit["mru_miss_cnt"][:] = stage.mru_miss_cnt
        self.stage_credit["set_accesses"][:] = stage._set_accesses

    # ------------------------------------------------------- verification
    def verify(self) -> None:
        """Assert bit-exact agreement with the authoritative objects.

        Test-only (O(state) scans): called by the equivalence tests after
        every mutation site. Raises ``AssertionError`` on any divergence,
        including probe-index staleness and Rule-3 violations.
        """
        self.sync_deferred_columns()
        stage = self._stage
        tags = self.stage_tags
        slots_col = self.stage_slots
        expected_sub: Dict[int, Tuple[int, int]] = {}
        expected_block: Dict[int, List[int]] = {}
        for set_index, row in enumerate(stage.tags.entries):
            for way, entry in enumerate(row):
                t = tags[set_index, way]
                assert bool(t["valid"]) == entry.valid, (set_index, way)
                if entry.valid:
                    assert int(t["tag"]) == entry.tag, (set_index, way)
                    assert int(t["lru"]) == entry.lru, (set_index, way)
                    assert int(t["fifo"]) == entry.fifo, (set_index, way)
                    assert int(t["miss_count"]) == entry.miss_count, (
                        set_index, way
                    )
                else:
                    assert t == self._zero_tag, (set_index, way)
                super_id = entry.tag * self._stage_sets + set_index
                for slot_index, slot in enumerate(entry.slots):
                    c = slots_col[set_index, way, slot_index]
                    if slot is None:
                        assert c == self._zero_slot, (set_index, way, slot_index)
                        continue
                    assert entry.valid, (set_index, way, slot_index)
                    assert (
                        bool(c["valid"]),
                        int(c["cf"]),
                        bool(c["dirty"]),
                        bool(c["zero"]),
                        int(c["blk_off"]),
                        int(c["sub_start"]),
                    ) == (
                        True, slot.cf, slot.dirty, slot.zero,
                        slot.blk_off, slot.sub_start,
                    ), (set_index, way, slot_index)
                    block_id = super_id * self._bps + slot.blk_off
                    ref = expected_block.setdefault(block_id, [way, 0])
                    # Rule 3: one block's staged ranges live in one way.
                    assert ref[0] == way, ("rule-3 violation", block_id)
                    ref[1] += 1
                    subs = (
                        range(self._spb)
                        if slot.zero
                        else range(slot.sub_start, slot.sub_start + slot.cf)
                    )
                    base = block_id * self._spb
                    for sub in subs:
                        key = base + sub
                        # Ranges never overlap: each sub has one cover.
                        assert key not in expected_sub, ("overlap", key)
                        expected_sub[key] = (way, slot_index)
        assert self.stage_sub == expected_sub, "stage_sub probe index stale"
        assert self.stage_block == expected_block, "stage_block probe index stale"

        entries = self._remap_table._entries
        assert set(self._remap_index) == set(entries), "remap arena index stale"
        for block_id, entry in entries.items():
            r = self.remap_rows[self._remap_index[block_id]]
            assert (
                int(r["block_id"]), bool(r["valid"]), int(r["remap"]),
                int(r["pointer"]), int(r["cf2"]), int(r["cf4"]), bool(r["zero"]),
            ) == (
                block_id, True, entry.remap, entry.pointer,
                entry.cf2, entry.cf4, entry.zero,
            ), ("remap row stale", block_id)
        live = set(self._remap_index.values())
        for row in range(self._remap_used):
            if row not in live:
                assert self.remap_rows[row] == self._zero_remap, (
                    "freed remap row not cleared", row
                )

        for index, cache_set in enumerate(self._remap_cache._sets):
            assert int(self.rc_occupancy[index]) == len(cache_set.lines), (
                "remap-cache occupancy stale", index
            )

        credit = self.stage_credit
        for set_index in range(self._stage_sets):
            assert int(credit["mru_miss_cnt"][set_index]) == stage.mru_miss_cnt[set_index]
            assert int(credit["set_accesses"][set_index]) == stage._set_accesses[set_index]

    # -------------------------------------------------------- accounting
    def storage_bytes(self) -> int:
        """Bytes held by the columnar arrays (reporting convenience)."""
        return int(
            self.stage_tags.nbytes
            + self.stage_slots.nbytes
            + self.stage_credit.nbytes
            + self.remap_rows.nbytes
            + self.rc_occupancy.nbytes
        )


# --------------------------------------------------------------------------
# Vectorized run classification for the deferred batch fast path.
#
# Verdict codes shared between :class:`DeferredRunClassifier`,
# :meth:`~repro.core.controller.BaryonController.access_classified` and the
# simulator's deferred span. Positive codes are pre-resolved accepts served
# by ``access_classified`` without re-probing membership; ``CLS_PER_OP``
# routes through the per-op ``access_deferred`` classifier (flat-home
# candidates, compressed writes needing the oracle's mutable probes, stale
# verdicts); negative codes are pre-resolved declines — the simulator goes
# straight to the scalar path and charges the per-reason decline counter.
CLS_PER_OP = 0
CLS_STAGE_READ = 1
CLS_STAGE_ZERO = 2
CLS_STAGE_WRITE = 3
CLS_COMMIT_READ = 4
CLS_COMMIT_ZERO = 5
CLS_COMMIT_WRITE = 6
CLS_MISS_READ = 7
CLS_MISS_WRITE = 8
CLS_DECLINE_Z_BREAK = -1
CLS_DECLINE_WRITE_OVERFLOW = -2
CLS_DECLINE_STAGING_FETCH = -3
CLS_DECLINE_NO_STAGE = -4
CLS_DECLINE_INVARIANT = -5

#: Decline verdict code -> reason key in ``deferred_declines``.
DECLINE_REASONS = {
    CLS_DECLINE_Z_BREAK: "z_break",
    CLS_DECLINE_WRITE_OVERFLOW: "write_overflow",
    CLS_DECLINE_STAGING_FETCH: "staging_fetch",
    CLS_DECLINE_NO_STAGE: "no_stage",
    CLS_DECLINE_INVARIANT: "invariant",
}

#: Dense gather index above this block-id span is not worth its memory.
_MAX_DENSE_BLOCKS = 1 << 23


class DeferredRunClassifier:
    """Bulk membership classification of a trace's LLC-miss stream.

    The per-op :meth:`~repro.core.controller.BaryonController.access_deferred`
    resolves each access with Python dict probes and object attribute
    walks. This classifier instead resolves the *membership* part of that
    decision — stage-sub coverage, remap-entry occupancy, zero/cf flags —
    for a whole chunk of future trace indices in one numpy gather pass
    over the columnar arrays, ahead of the simulator loop reaching them.

    Verdicts are membership-only, so they can be computed early: every
    order-sensitive effect (remap-cache LRU and fills, stage LRU/credit
    touches, row-buffer state, oracle write draws) still happens per op,
    in exact trace order, inside ``access_classified``. Between the gather
    and the serve the state may move (flush-driven stages, commits,
    evictions); those mutation sites mark their block in
    ``ColumnarState.dirty_blocks`` and the simulator demotes any verdict
    for a dirtied block to the per-op classifier. A stale *decline* is
    harmless by construction — the scalar path serves every access
    bit-identically — so the verdict is purely a fast-path routing hint
    and bit-identity never depends on invalidation completeness.

    Accept verdicts carry a packed aux word resolving the membership
    lookup the serve step would otherwise repeat:

    * stage hits: ``way | slot_idx << 3 | cf << 8 | sub_start << 12``
    * commit hits: ``cf | sub_start << 3`` (``entry.range_of`` result)
    """

    #: Trace indices classified per gather pass. Verdict staleness scales
    #: with chunk size, but a stale verdict only reroutes to the serve
    #: closure's inline classification (never to the scalar path), so the
    #: chunk is sized for gather throughput, not freshness.
    chunk = 16384

    def __init__(self, controller, addrs, writes) -> None:
        col = controller.columnar
        geometry = controller.geometry
        self._col = col
        self._addrs = np.asarray(addrs, np.int64)
        self._writes = np.asarray(writes, np.bool_)
        # Field views of the fixed-size stage mirrors (gathering one field
        # moves 1-8 bytes per element where a record gather moves the
        # whole ~40-byte row). ``remap_rows`` grows, so its field views
        # are re-taken per classify call.
        self._t_valid = col.stage_tags["valid"]
        self._t_tag = col.stage_tags["tag"]
        self._s_valid = col.stage_slots["valid"]
        self._s_cf = col.stage_slots["cf"]
        self._s_zero = col.stage_slots["zero"]
        self._s_blk_off = col.stage_slots["blk_off"]
        self._s_sub_start = col.stage_slots["sub_start"]
        self.block_size = geometry.block_size
        self._sub_size = geometry.sub_block_size
        self._bps = geometry.super_block_blocks
        self._nsets = controller.stage.num_sets
        self._stage_on = controller._stage_on
        self._flat_blocks = controller._flat_blocks
        self._home_period = controller._home_period
        self.dirty_blocks = col.dirty_blocks

        max_block = int(addrs.max()) // self.block_size + 1 if len(addrs) else 1
        row_of = np.full(max_block, -1, np.int32)
        for blk, row in col._remap_index.items():
            if blk < max_block:
                row_of[blk] = row
        col.remap_row_of = row_of
        self._row_of = row_of
        col.watching = True

    def classify(self, start: int, stop: int):
        """Gather-classify trace indices ``[start, stop)``.

        Returns ``(codes, aux)`` as plain Python lists (list indexing
        beats numpy scalar reads in the serve loop). Clears the dirty set:
        verdicts reflect the columnar state at this call, and any later
        mutation re-dirties its block before the verdict is used.
        """
        col = self._col
        col.dirty_blocks.clear()
        addr = self._addrs[start:stop]
        wr = self._writes[start:stop]
        rd = ~wr
        block = addr // self.block_size
        sub = (addr % self.block_size) // self._sub_size
        sup = block // self._bps
        blk_off = block - sup * self._bps
        set_idx = sup % self._nsets
        n = len(addr)

        # Stage-tag gather: the matching way per access, then that way's
        # slot row; Rule 3 makes the tag-matching way unique per set.
        tmatch = self._t_valid[set_idx] & (
            self._t_tag[set_idx] == (sup // self._nsets)[:, None]
        )
        has_way = tmatch.any(axis=1)
        way = tmatch.argmax(axis=1)
        cand = self._s_valid[set_idx, way] & (
            self._s_blk_off[set_idx, way] == blk_off[:, None]
        )
        cand &= has_way[:, None]
        s_start_col = self._s_sub_start[set_idx, way]
        cf_col = self._s_cf[set_idx, way]
        in_range = (s_start_col <= sub[:, None]) & (
            sub[:, None] < s_start_col + cf_col
        )
        slot_zero = self._s_zero[set_idx, way]
        cover = cand & (slot_zero | in_range)
        staged = cover.any(axis=1)
        slot_idx = cover.argmax(axis=1)
        block_staged = cand.any(axis=1)
        pick = np.arange(n)
        s_zero = slot_zero[pick, slot_idx] & staged
        s_cf = cf_col[pick, slot_idx]
        s_start = s_start_col[pick, slot_idx]

        # Remap-entry gather through the dense row index; absent entries
        # read row 0 masked out by ``has_entry``.
        row = self._row_of[block]
        has_entry = row >= 0
        rowsel = np.maximum(row, 0)
        rows = col.remap_rows
        rz = rows["zero"][rowsel] & has_entry
        sub_remapped = has_entry & (rz | (((rows["remap"][rowsel] >> sub) & 1) != 0))
        quad = sub >> 2
        pair = sub >> 1
        cf4_hit = ((rows["cf4"][rowsel] >> quad) & 1) != 0
        cf2_hit = ((rows["cf2"][rowsel] >> pair) & 1) != 0
        e_cf = np.where(rz, 1, np.where(cf4_hit, 4, np.where(cf2_hit, 2, 1)))
        e_start = np.where(
            rz, 0, np.where(cf4_hit, quad << 2, np.where(cf2_hit, pair << 1, sub))
        )

        commit = ~staged & sub_remapped
        rest = ~staged & ~sub_remapped
        codes = np.zeros(n, np.int64)

        # Case 1 (stage hit): reads always accept; writes accept only for
        # uncompressed non-zero slots — zero slots are Z breaks, cf > 1
        # writes need the oracle's per-op overflow probe.
        codes[staged & rd & ~s_zero] = CLS_STAGE_READ
        codes[staged & rd & s_zero] = CLS_STAGE_ZERO
        codes[staged & wr & s_zero] = CLS_DECLINE_Z_BREAK
        codes[staged & wr & ~s_zero & (s_cf <= 1)] = CLS_STAGE_WRITE
        # (staged & wr & ~s_zero & cf>1 stays CLS_PER_OP.)

        # Case 2 (commit hit), same accept/decline split; the fast-area
        # ``find_block`` invariant check stays per-op in the serve step.
        codes[commit & rd & ~rz] = CLS_COMMIT_READ
        codes[commit & rd & rz] = CLS_COMMIT_ZERO
        codes[commit & wr & rz] = CLS_DECLINE_Z_BREAK
        codes[commit & wr & ~rz & (e_cf <= 1)] = CLS_COMMIT_WRITE

        # Cases 3/4/5 and the ablation/flat ladder, in access_deferred's
        # check order.
        if self._stage_on:
            codes[rest & block_staged] = CLS_DECLINE_STAGING_FETCH
            rest &= ~block_staged
            codes[rest & has_entry & rd] = CLS_MISS_READ
            codes[rest & has_entry & wr] = CLS_MISS_WRITE
        else:
            codes[rest & has_entry] = CLS_DECLINE_NO_STAGE
        rest &= ~has_entry
        if self._flat_blocks:
            home = (block % self._home_period == 0) & (
                (block // self._home_period) < self._flat_blocks
            )
            rest &= ~home  # flat-home candidates stay CLS_PER_OP
        codes[rest] = CLS_DECLINE_STAGING_FETCH  # case 5: block miss

        aux = np.where(
            staged,
            way | (slot_idx << 3) | (s_cf << 8) | (s_start << 12),
            e_cf | (e_start << 3),
        )
        return codes.tolist(), aux.tolist()


def build_run_classifier(controller, addrs, writes):
    """Build a :class:`DeferredRunClassifier` when the trace supports it.

    Returns ``None`` (per-op classification only) when the trace arrays
    are not numpy, or the address footprint is too sparse for the dense
    remap gather index.
    """
    if not isinstance(addrs, np.ndarray) or not isinstance(writes, np.ndarray):
        return None
    if len(addrs) == 0:
        return None
    if int(addrs.max()) // controller.geometry.block_size >= _MAX_DENSE_BLOCKS:
        return None
    return DeferredRunClassifier(controller, addrs, writes)


__all__ = [
    "STAGE_TAG_DTYPE",
    "STAGE_SLOT_DTYPE",
    "STAGE_CREDIT_DTYPE",
    "REMAP_DTYPE",
    "DECLINE_REASONS",
    "ColumnarState",
    "DeferredRunClassifier",
    "build_run_classifier",
]
