"""The stage area: Baryon's staging region and its on-chip tag array.

Mechanics only — the *policies* (what to fetch, when to commit) live in
:mod:`repro.core.commit` and the controller; this class owns:

* the set-associative organization (default 8192 sets x 4 ways = 64 MB);
* tag lookups at super-block granularity, including the one-to-one
  guarantee between tag entries and stage blocks (a tag hit *is* a data
  hit, Sec. III-D);
* exact 3-bit LRU ranks for block-level replacement and the 3-bit FIFO
  pointer for sub-block-level replacement (Fig. 5a / Fig. 8);
* the per-entry MissCnt and per-set MRUMissCnt counters with their
  right-shift aging every ``aging_period_accesses`` set accesses
  (Sec. III-E), which feed the Eq. 1 commit benefit.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.common.address import AddressMapper
from repro.common.config import Geometry, StageConfig
from repro.common.errors import CorruptionError, LayoutError
from repro.common.stats import CounterGroup
from repro.metadata.stage_tag import RangeSlot, StageTagArray, StageTagEntry
from repro.obs.tracer import NULL_TRACER


class StageArea:
    """Stage area state machine (no timing, no data movement)."""

    def __init__(self, config: StageConfig, geometry: Geometry) -> None:
        self.config = config
        self.geometry = geometry
        self.num_sets = config.num_sets(geometry)
        self.ways = config.ways
        self.mapper = AddressMapper(geometry, self.num_sets)
        self.tags = StageTagArray(
            self.num_sets, self.ways, slots_per_entry=geometry.sub_blocks_per_block
        )
        self.mru_miss_cnt: List[int] = [0] * self.num_sets
        self._set_accesses: List[int] = [0] * self.num_sets
        #: Exact per-set count of valid entries, maintained at the two
        #: validity flips (:meth:`allocate` / :meth:`invalidate`) so the
        #: deferred serve closure can promote to MRU without rescanning
        #: the set.
        self.valid_counts: List[int] = [0] * self.num_sets
        self._aging_period = config.aging_period_accesses
        self.stats = CounterGroup("stage_area")
        #: Observability hook point; see :mod:`repro.obs`.
        self.obs = NULL_TRACER
        #: Optional :class:`~repro.resilience.faults.FaultInjector`. Stage
        #: tag corruption surfaces on block lookups; the controller flushes
        #: and quarantines the affected entry.
        self.faults = None
        #: Optional :class:`~repro.core.columnar.ColumnarState` mirror.
        #: Mutation sites notify it so the columnar arrays and the O(1)
        #: probe indices stay exact; the per-access LRU/credit columns are
        #: write-behind (see ``ColumnarState.sync_deferred_columns``).
        self.columnar = None

    # -- lookup ------------------------------------------------------------
    def lookup_super(self, super_id: int) -> List[Tuple[int, StageTagEntry]]:
        """All (way, entry) pairs currently staging ``super_id``."""
        set_index = self.mapper.set_index_of_super(super_id)
        tag = self.mapper.tag_of_super(super_id)
        return self.tags.lookup(set_index, tag)

    def lookup_block(self, super_id: int, blk_off: int) -> Optional[Tuple[int, StageTagEntry]]:
        """The (single) way staging ranges of logical block ``blk_off``.

        Rule 3 keeps all of one block's staged ranges in one physical
        block, so at most one way can match.
        """
        num_sets = self.num_sets
        set_index = super_id % num_sets
        tag = super_id // num_sets
        match = None
        for way, entry in enumerate(self.tags.entries[set_index]):
            if entry.valid and entry.tag == tag:
                for slot in entry.slots:
                    if slot is not None and slot.blk_off == blk_off:
                        match = (way, entry)
                        break
                if match is not None:
                    break
        if match is None:
            return None
        if (
            self.faults is not None
            and self.faults.active
            and self.faults.stage_corruption()
        ):
            raise CorruptionError(
                f"stage tag entry for super-block {super_id} corrupted",
                site="stage_tag",
                set_index=set_index,
                way=match[0],
                block_id=super_id,
            )
        return match

    def lookup_sub_block(
        self, super_id: int, blk_off: int, sub_index: int
    ) -> Optional[Tuple[int, StageTagEntry, int]]:
        """(way, entry, slot) holding the sub-block, when staged."""
        num_sets = self.num_sets
        set_index = super_id % num_sets
        tag = super_id // num_sets
        for way, entry in enumerate(self.tags.entries[set_index]):
            if entry.valid and entry.tag == tag:
                slot = entry.find_sub_block(blk_off, sub_index)
                if slot is not None:
                    return way, entry, slot
        return None

    def set_index_of(self, super_id: int) -> int:
        return super_id % self.num_sets

    def entry(self, set_index: int, way: int) -> StageTagEntry:
        return self.tags.entry(set_index, way)

    # -- LRU rank maintenance (3-bit exact ranks: 0 = LRU) -------------------
    def touch(self, set_index: int, way: int) -> None:
        """Promote ``way`` to MRU, demoting intermediates by one rank."""
        entries = self.tags.entries[set_index]
        target = entries[way]
        if not target.valid:
            raise LayoutError("touched an invalid stage entry")
        old_rank = target.lru
        valid = 0
        for entry in entries:
            if entry.valid:
                valid += 1
                if entry.lru > old_rank:
                    entry.lru -= 1
        target.lru = valid - 1

    def _valid_count(self, set_index: int) -> int:
        return sum(1 for e in self.tags.entries[set_index] if e.valid)

    def lru_way(self, set_index: int) -> Optional[int]:
        """Way with rank 0 (the block-level replacement victim)."""
        best_way, best_rank = None, None
        for way, entry in enumerate(self.tags.entries[set_index]):
            if entry.valid and (best_rank is None or entry.lru < best_rank):
                best_way, best_rank = way, entry.lru
        return best_way

    def mru_way(self, set_index: int) -> Optional[int]:
        best_way, best_rank = None, None
        for way, entry in enumerate(self.tags.entries[set_index]):
            if entry.valid and (best_rank is None or entry.lru > best_rank):
                best_way, best_rank = way, entry.lru
        return best_way

    def is_lru(self, set_index: int, way: int) -> bool:
        return self.lru_way(set_index) == way

    # -- allocation / invalidation ------------------------------------------
    def allocate(self, super_id: int) -> Optional[Tuple[int, int]]:
        """Claim an invalid way for ``super_id``; None when the set is full.

        Returns ``(set_index, way)``; the entry is initialized empty and
        made MRU.
        """
        set_index = self.mapper.set_index_of_super(super_id)
        way = self.tags.invalid_way(set_index)
        if way is None:
            return None
        entry = self.tags.entry(set_index, way)
        entry.tag = self.mapper.tag_of_super(super_id)
        entry.valid = True
        self.valid_counts[set_index] += 1
        entry.slots = [None] * self.geometry.sub_blocks_per_block
        entry.fifo = 0
        entry.miss_count = 0
        # A fresh entry enters at MRU; existing dense ranks 0..n-2 stand.
        entry.lru = self._valid_count(set_index) - 1
        if self.columnar is not None:
            self.columnar.stage_allocate(set_index, way, entry)
        self.stats.inc("allocations")
        return set_index, way

    def invalidate(self, set_index: int, way: int) -> StageTagEntry:
        """Drop an entry (after commit or eviction); returns its final state."""
        entry = self.tags.entry(set_index, way)
        if not entry.valid:
            raise LayoutError("invalidating an already-invalid stage entry")
        if self.obs.enabled:
            self.obs.emit(
                "stage_evict", set=set_index, way=way, tag=entry.tag,
                occupied=entry.occupancy(),
            )
        snapshot = StageTagEntry(
            tag=entry.tag,
            valid=True,
            slots=list(entry.slots),
            lru=entry.lru,
            fifo=entry.fifo,
            miss_count=entry.miss_count,
        )
        old_rank = entry.lru
        for other in self.tags.entries[set_index]:
            if other.valid and other.lru > old_rank:
                other.lru -= 1
        entry.valid = False
        self.valid_counts[set_index] -= 1
        entry.slots = [None] * self.geometry.sub_blocks_per_block
        entry.lru = 0
        entry.fifo = 0
        entry.miss_count = 0
        if self.columnar is not None:
            self.columnar.stage_invalidate(set_index, way, snapshot)
        self.stats.inc("invalidations")
        return snapshot

    # -- slot operations ------------------------------------------------------
    def insert_range(self, set_index: int, way: int, slot: RangeSlot) -> int:
        """Place a range into the lowest free slot; caller ensured room."""
        entry = self.tags.entry(set_index, way)
        free = entry.free_slot()
        if free is None:
            raise LayoutError("insert_range into a full stage block")
        entry.slots[free] = slot
        if self.columnar is not None:
            self.columnar.stage_insert(set_index, way, free, slot, entry.tag)
        if self.obs.enabled:
            self.obs.emit(
                "stage_insert", set=set_index, way=way, blk_off=slot.blk_off,
                sub_start=slot.sub_start, cf=slot.cf, dirty=slot.dirty,
                zero=slot.zero,
            )
        return free

    def fifo_victim_slot(self, set_index: int, way: int) -> int:
        """Advance the FIFO pointer to the next occupied slot and return it."""
        entry = self.tags.entry(set_index, way)
        slots = entry.slots
        n = len(slots)
        for step in range(n):
            index = (entry.fifo + step) % n
            if slots[index] is not None:
                entry.fifo = (index + 1) % n
                if self.columnar is not None:
                    self.columnar.stage_fifo(set_index, way, entry.fifo)
                return index
        raise LayoutError("FIFO victim requested from an empty stage block")

    def remove_slot(self, set_index: int, way: int, slot_index: int) -> RangeSlot:
        entry = self.tags.entry(set_index, way)
        slot = entry.slots[slot_index]
        if slot is None:
            raise LayoutError("removing an empty slot")
        entry.slots[slot_index] = None
        if self.columnar is not None:
            self.columnar.stage_remove(set_index, way, slot_index, slot, entry.tag)
        return slot

    def mark_dirty(self, set_index: int, way: int, slot_index: int) -> None:
        """Mark one staged range dirty in place (stage-hit write path)."""
        slot = self.tags.entries[set_index][way].slots[slot_index]
        if slot is None:
            raise LayoutError("dirtying an empty slot")
        slot.dirty = True
        if self.columnar is not None:
            self.columnar.stage_mark_dirty(set_index, way, slot_index)

    # -- miss statistics for the commit model ---------------------------------
    def record_set_access(self, set_index: int) -> None:
        """Count a set access; age all counters every aging period."""
        counts = self._set_accesses
        n = counts[set_index] + 1
        if n < self._aging_period:
            counts[set_index] = n
            return
        counts[set_index] = 0
        self.age_set(set_index)

    def age_set(self, set_index: int) -> None:
        """Halve one set's miss counters (the aging-period rollover).

        Split out of :meth:`record_set_access` so the controller's
        deferred fast path can inline the dominant count-and-store branch
        and fall into this exact slow path on period boundaries.
        """
        self.mru_miss_cnt[set_index] >>= 1
        for entry in self.tags.entries[set_index]:
            entry.miss_count >>= 1
        if self.columnar is not None:
            self.columnar.stage_aging(set_index)
        self.stats.inc("agings")

    def record_block_miss(self, set_index: int, way: Optional[int]) -> None:
        """Count a stage miss (case 3) or block miss (case 5).

        Per Sec. III-E: the entry's own MissCnt increments for sub-block
        misses to it, and the set's MRUMissCnt increments for block-level
        misses and for sub-block misses to the current MRU block.
        """
        cap = self.config.miss_counter_max()
        if way is not None:
            entry = self.tags.entry(set_index, way)
            entry.miss_count = min(cap, entry.miss_count + 1)
            if self.columnar is not None:
                self.columnar.stage_block_miss(set_index, way, entry.miss_count)
            if self.mru_way(set_index) == way:
                self.mru_miss_cnt[set_index] = min(cap, self.mru_miss_cnt[set_index] + 1)
        else:
            self.mru_miss_cnt[set_index] = min(cap, self.mru_miss_cnt[set_index] + 1)

    # -- accounting -------------------------------------------------------------
    def occupancy(self) -> float:
        """Fraction of stage blocks currently valid."""
        valid = sum(
            1 for entries in self.tags.entries for e in entries if e.valid
        )
        return valid / (self.num_sets * self.ways)

    def storage_bytes(self) -> int:
        return self.tags.storage_bytes()
