"""The Baryon memory controller: access flow, staging, commit, swapping.

This is the paper's Section III end to end. One instance owns the hybrid
memory devices, the stage area with its tag array, the committed cache/flat
area, the dual-format metadata (remap table + remap cache) and the
compression oracle, and exposes a single entry point:

    result = controller.access(addr, is_write, now)

for every memory-level access (LLC demand miss or dirty writeback). The
five cases of Fig. 6 are implemented faithfully, including:

* slow-to-stage prefetching of the maximal compressible aligned range,
  with CF2/CF4 hints reused after compressed fast-to-slow writebacks;
* cacheline-aligned transfers: a demand access moves one 64 B chunk that
  decompresses into up to CF cachelines, installed into the LLC for free;
* two-level stage replacement (block LRU + sub-block FIFO) with the
  Fig. 8 heuristic and data-block regrouping on block-level moves;
* selective commits driven by the Eq. 1 cost model, with sorted-frozen
  committed layouts (Rule 4) and whole-block eviction on write overflow
  (unless the overflowing range is the last slot);
* the flat scheme's spread-swap of displaced home blocks and the
  three-way *slow swap* on eviction of committed data (Sec. III-F);
* the no-stage ablation (Fig. 13c), where every insertion pays the
  layout re-sort penalty directly in the committed area.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.cache.replacement import CacheLine
from repro.common.config import BaryonConfig
from repro.common.errors import CorruptionError, SimulationError, TransientDeviceError
from repro.common.stats import CounterGroup
from repro.compression.synthetic import SyntheticCompressibility
from repro.core.commit import CommitPolicy
from repro.core.events import (
    CASE_COUNTER_KEYS,
    AccessCase,
    AccessResult,
)
from repro.core.fast_area import FastArea, FastBlockState
from repro.core.stage_area import StageArea
from repro.core.tracking import StagePhaseTracker
from repro.devices.memory import HybridMemoryDevices
from repro.metadata.remap import RemapEntry, RemapTable
from repro.metadata.remap_cache import RemapCache
from repro.metadata.stage_tag import RangeSlot, StageTagEntry
from repro.obs.tracer import NULL_TRACER

#: Sentinel for "caller did not resolve the staged-block binding" — distinct
#: from None, which means "resolved: the block is not staged".
_UNRESOLVED: Tuple[int, StageTagEntry] = object()  # type: ignore[assignment]


class _RecordingPool:
    """Channel-pool stand-in that logs transfer requests instead of
    scheduling them.

    The deferred serve closure swaps this in for the real pools while it
    runs :meth:`BaryonController._fetch_and_stage` eagerly (cases 3/5):
    every state decision in that tree is clock-free, so the captured
    ``(pool, nbytes, priority)`` sequence replays bit-identically at the
    op's exact clock inside :meth:`BaryonController.access_batch`. The
    zero return keeps callers' latency arithmetic inert — the real
    latency is recomputed from the replayed transfers.
    """

    __slots__ = ("pool_id", "log")

    def __init__(self, pool_id: int, log: list) -> None:
        self.pool_id = pool_id  # 1 = fast, 0 = slow
        self.log = log

    def transfer(self, now, nbytes, priority=False):
        if nbytes:
            self.log.append((self.pool_id, nbytes, priority))
        return (0.0, 0.0)


class BaryonController:
    """Hardware-transparent hybrid memory controller with compression and
    sub-blocking (the paper's primary contribution)."""

    def __init__(
        self,
        config: Optional[BaryonConfig] = None,
        devices: Optional[HybridMemoryDevices] = None,
        compressibility: Optional[SyntheticCompressibility] = None,
        tracker: Optional[StagePhaseTracker] = None,
        seed: int = 1,
        tracer=None,
        metrics=None,
    ) -> None:
        self.config = config or BaryonConfig()
        self.geometry = self.config.geometry
        self.devices = devices or HybridMemoryDevices(self.config.timings)
        if not self.config.compression_enabled:
            from repro.compression.synthetic import NullCompressibility

            self.oracle = NullCompressibility()
        else:
            self.oracle = compressibility or SyntheticCompressibility(seed=seed)
        self.tracker = tracker
        self.policy = CommitPolicy(self.config.commit)
        self.remap_table = RemapTable()
        self.remap_cache = RemapCache(
            num_sets=self.config.remap_cache.num_sets,
            ways=self.config.remap_cache.ways,
            entries_per_line=self.config.remap_cache.entries_per_line,
            latency_cycles=self.config.remap_cache.latency_cycles,
        )
        self.stage = StageArea(self.config.stage, self.geometry)
        self._rng = random.Random(seed)
        self._stats = CounterGroup("baryon")
        # Deferred per-access counters, folded into ``stats`` on read.
        self._n_accesses = 0
        self._n_reads = 0
        self._n_writes = 0
        self._n_served_fast = 0
        self._n_cases = [0] * len(AccessCase)
        # Cached geometry constants for the per-access address split.
        g = self.geometry
        self._g_block_size = g.block_size
        self._g_super_blocks = g.super_block_blocks
        self._g_sub_size = g.sub_block_size
        self._g_line_size = g.cacheline_size
        #: Observability hook point; see :mod:`repro.obs`. Attached here
        #: and on every instrumented sub-component by
        #: :func:`repro.obs.attach_observability`.
        self.obs = NULL_TRACER
        self._h_fetch_subs = None
        self._h_fetch_bytes = None
        self._now = 0.0

        # Committed area sizing: fast capacity net of the stage area and
        # the in-fast-memory remap table.
        overhead = self.config.remap_table_bytes()
        if self.config.stage.enabled:
            overhead += self.config.stage.size_bytes
        usable = self.config.layout.fast_capacity - overhead
        fast_blocks = max(1, usable // self.geometry.block_size)
        if self.config.layout.fully_associative:
            num_sets, ways = 1, fast_blocks
            replacement = "fifo"
        else:
            ways = self.config.layout.associativity
            num_sets = max(1, fast_blocks // ways)
            replacement = "lru"
        if self.config.fast_replacement != "auto":
            replacement = self.config.fast_replacement
        self.fast_area = FastArea(
            num_sets, ways, self.geometry, replacement, seed=seed
        )

        # Flat scheme: the first `flat_ways` of each set are OS-visible
        # fast block spaces, each the home of one block. Homes are
        # *striped* across the whole OS-visible space (every
        # `_home_period`-th block lives in fast memory), modelling
        # hotness-neutral OS placement — first-touch allocation does not
        # systematically put the hottest data in either tier. `_displaced`
        # maps a home block to the (set, way) whose space its data vacated.
        self._flat_ways = round(ways * self.config.layout.flat_fraction)
        self._flat_blocks = num_sets * self._flat_ways
        total_blocks = (
            self.config.layout.fast_capacity + self.config.layout.slow_capacity
        ) // self.geometry.block_size
        self._home_period = max(1, total_blocks // max(1, self._flat_blocks))
        self._displaced: Dict[int, Tuple[int, int]] = {}

        # CF2/CF4 hints kept after compressed fast-to-slow writebacks.
        self._cf_hints: Dict[int, Tuple[int, int, bool]] = {}
        # Flat scheme: last-access stamps of home blocks, on the fast
        # area's replacement clock, so commits displace cold homes.
        self._home_stamps: Dict[int, int] = {}
        # Fully-associative victim selection is FIFO (Sec. III-E): a
        # cycling pointer instead of an O(ways) recency scan.
        self._fa_victim_ptr = 0

        # Resilience layer: fault injection, bounded-retry recovery, and
        # the shadow invariant checker. All None when resilience is off,
        # keeping the hot path free of any extra work.
        self.faults = None
        self.recovery = None
        self.checker = None
        self._quarantined: set = set()
        res = self.config.resilience
        if res is not None and res.enabled:
            from repro.resilience.checker import ShadowChecker
            from repro.resilience.faults import FaultInjector, FaultPlan
            from repro.resilience.recovery import RecoveryManager

            self.recovery = RecoveryManager(res)
            if res.any_faults():
                self.faults = FaultInjector(FaultPlan.from_config(res))
                self.devices.fast.faults = self.faults
                self.devices.slow.faults = self.faults
                if self.devices.fast.row_buffer is not None:
                    self.devices.fast.row_buffer.faults = self.faults
                self.remap_cache.faults = self.faults
                self.stage.faults = self.faults
            if res.check_invariants:
                pointer_bits = max(2, max(self.fast_area.ways - 1, 1).bit_length())
                self.checker = ShadowChecker(pointer_bits=pointer_bits)
                self.remap_table.shadow = self.checker

        # Columnar mirror of the metadata state (numpy structured arrays
        # plus the O(1) probe indices the deferred batch fast path
        # classifies with). Created after the resilience layer so it
        # chains in front of any existing remap-table shadow observer.
        from repro.core.columnar import ColumnarState

        self.columnar = ColumnarState(self)

        # Cached constants for the deferred fast path (access_deferred /
        # access_batch); all are invariant after construction.
        self._stage_on = self.config.stage.enabled
        self._g_sub_per_block = g.sub_blocks_per_block
        self._cl_size = g.cacheline_size
        self._sb_size = g.sub_block_size
        self._ca = self.config.compression.cacheline_aligned
        self._tag_lat_f = float(self.config.stage.tag_latency_cycles)
        self._rc_lat_f = float(self.remap_cache.latency_cycles)
        self._meta_hit_f = max(self._tag_lat_f, self._rc_lat_f)
        self._decomp_f = float(self.config.compression.decompression_latency_cycles)
        self._decomp_i = self.config.compression.decompression_latency_cycles
        self._zero_support = self.config.compression.zero_block_support
        self._cwb = self.config.compressed_writeback
        self._two_level = self.config.two_level_replacement
        self._share_phys = self.config.share_physical_blocks
        self._idx_stage_hit = AccessCase.STAGE_HIT.index
        self._idx_commit_hit = AccessCase.COMMIT_HIT.index
        self._idx_commit_miss = AccessCase.COMMIT_MISS.index
        self._idx_fast_home = AccessCase.FAST_HOME.index
        self._idx_slow_direct = AccessCase.SLOW_DIRECT.index

        # Per-reason deferred-classification decline counters. Kept out of
        # ``stats`` deliberately: the scalar and batched paths must agree
        # on every stats counter bit-for-bit, and only the batched path
        # classifies, so these live beside the stats rather than in them.
        self.deferred_declines: Dict[str, int] = {
            "z_break": 0,
            "write_overflow": 0,
            "staging_fetch": 0,
            "no_stage": 0,
            "invariant": 0,
        }

        if tracer is not None or metrics is not None:
            from repro.obs import attach_observability

            attach_observability(self, tracer, metrics)

    def bind_metrics(self, registry) -> None:
        """Register this controller's histograms in a metrics registry."""
        subs = self.geometry.sub_blocks_per_block
        self._h_fetch_subs = registry.histogram(
            "repro_fetch_sub_blocks",
            help="sub-blocks covered per slow-memory fetch range",
            buckets=[2 ** i for i in range(subs.bit_length())],
        )
        self._h_fetch_bytes = registry.histogram(
            "repro_fetch_bytes",
            help="bytes moved from slow memory per fetch (compressed size)",
            buckets=[self.geometry.cacheline_size * 2 ** i for i in range(8)],
        )

    @property
    def stats(self) -> CounterGroup:
        """Counter group with all pending per-access counts folded in."""
        stats = self._stats
        if self._n_accesses:
            stats.inc("accesses", self._n_accesses)
            self._n_accesses = 0
        if self._n_reads:
            stats.inc("reads", self._n_reads)
            self._n_reads = 0
        if self._n_writes:
            stats.inc("writes", self._n_writes)
            self._n_writes = 0
        if self._n_served_fast:
            stats.inc("served_fast", self._n_served_fast)
            self._n_served_fast = 0
        cases = self._n_cases
        for case in AccessCase:
            count = cases[case.index]
            if count:
                stats.inc(CASE_COUNTER_KEYS[case], count)
                cases[case.index] = 0
        return stats

    # ------------------------------------------------------------------ API
    def access(self, addr: int, is_write: bool, now: Optional[float] = None) -> AccessResult:
        """Serve one 64 B memory access; the single external entry point."""
        if now is not None:
            self._now = now
        else:
            self._now += 1.0
        now = self._now
        # Inline address split on cached power-of-two geometry constants
        # (identical to the Geometry methods for non-negative addresses).
        block_size = self._g_block_size
        block_id = addr // block_size
        super_id = block_id // self._g_super_blocks
        blk_off = block_id % self._g_super_blocks
        rem = addr % block_size
        sub_idx = rem // self._g_sub_size
        line_idx = (rem % self._g_sub_size) // self._g_line_size

        self._n_accesses += 1
        if is_write:
            self._n_writes += 1
        else:
            self._n_reads += 1
        if self.tracker is not None:
            self.tracker.tick()

        entry = None
        staged_block = None
        if super_id in self._quarantined:
            # Poisoned super-block: degraded service straight from slow
            # memory, no staging or metadata side effects (counted).
            result = self._quarantined_serve(now, is_write)
        else:
            try:
                result, entry, staged_block = self._dispatch(
                    now, super_id, block_id, blk_off, sub_idx, line_idx, is_write
                )
            except (TransientDeviceError, CorruptionError) as err:
                if self.recovery is None:
                    raise
                result = self._degraded(now, super_id, err, is_write)

        case = result.case
        self._n_cases[case.index] += 1
        fast = case.fast
        if fast:
            self._n_served_fast += 1
        if self.obs.enabled:
            self.obs.emit(
                "access", t=now, addr=addr, block=block_id,
                case=result.case.value, write=is_write,
                latency=result.latency_cycles, fast=fast,
                overflow=result.write_overflow,
            )
        if self.tracker is not None and result.case is not AccessCase.FAST_HOME:
            self.tracker.record(
                block_id,
                staged=staged_block is not None,
                committed=entry.is_remapped if entry is not None else False,
                is_write=is_write,
                miss=result.case
                in (AccessCase.STAGE_MISS, AccessCase.COMMIT_MISS, AccessCase.BLOCK_MISS),
                overflow=result.write_overflow,
            )
        return result

    # ------------------------------------------------ deferred batch path
    @property
    def supports_batching(self) -> bool:
        """May the simulator drive this controller through the deferred
        batch fast path (:meth:`access_deferred` + :meth:`access_batch`)?

        Requires every optional per-access observer to be absent: fault
        injection, recovery, the shadow checker, the phase tracker, event
        tracing, and quarantined super-blocks all hook the scalar flow.
        Subclasses that intercept ``access`` (the content-backed oracle)
        shadow this property with a class attribute ``False``.
        """
        return (
            self.faults is None
            and self.recovery is None
            and self.checker is None
            and self.tracker is None
            and not self.obs.enabled
            and not self._quarantined
        )

    def _staged_block_of(self, super_id: int, block_id: int, blk_off: int):
        """Columnar-index form of :meth:`StageArea.lookup_block`.

        One dict probe instead of the way x slot scan; identical answers
        by the Rule-3 invariant. Falls back to the scanning lookup when
        fault injection is armed (the scan draws the per-match corruption
        sample).
        """
        if self.faults is not None:
            return self.stage.lookup_block(super_id, blk_off)
        ref = self.columnar.stage_block.get(block_id)
        if ref is None:
            return None
        way = ref[0]
        return way, self.stage.tags.entries[super_id % self.stage.num_sets][way]

    def _count_table_probe(self) -> None:
        """Traffic accounting of the 16 B off-chip remap-table probe; its
        queue/transfer timing replays later from the op record."""
        dev = self.devices.fast
        dev._n_read_bytes += 16
        dev._n_reads += 1
        dev._n_demand_read_bytes += 16
        self._stats.inc("remap_table_reads")

    def access_deferred(self, addr: int, is_write: bool = False):
        """Serve one 64 B access with state applied now and timing deferred.

        The batch-safe cases — stage hit, commit hit, commit miss,
        resident/displaced flat home — mutate no state whose transitions
        depend on the clock, so their state effects (LRU touches,
        remap-cache fills, credit/aging counters, dirty marks, oracle
        write notes, traffic and case counters, prefetched-line
        computation) are applied eagerly in trace order here, while the
        clock-dependent part (channel queueing) is captured as one op
        tuple for :meth:`access_batch` to replay:

            (rc_miss, stage_meta, dev, nbytes, array_latency, decomp, lines)

        ``dev`` is 0 (no data device: zero-encoded data), 1 (fast read),
        2 (slow read), 3 (fast write) or 4 (slow write); ``stage_meta``
        selects the stage-hit metadata latency rule (tag latency only)
        over ``max(tag, remap)``; ``lines`` are the prefetched cacheline
        addresses for the caller to install.

        Write hits qualify only when they provably do not overflow: the
        oracle's pure ``peek_write``/``fits_at`` probes test the
        post-write verdict before anything mutates. Returns ``None`` —
        with **no state applied** (classification uses only pure probes)
        — whenever the access needs the scalar path: staging fetches
        (cases 3/5), zero-encoding breaks, write overflows, the no-stage
        ablation, or a broken fast-area invariant. The scalar
        :meth:`access` then serves it bit-identically.
        """
        block_size = self._g_block_size
        block_id = addr // block_size
        super_id = block_id // self._g_super_blocks
        rem = addr % block_size
        sub_size = self._g_sub_size
        sub_idx = rem // sub_size
        col = self.columnar
        staged = col.stage_sub.get(block_id * self._g_sub_per_block + sub_idx)
        if staged is not None:
            # Case 1: stage hit.
            way, slot_idx = staged
            stage = self.stage
            set_index = super_id % stage.num_sets
            slot = stage.tags.entries[set_index][way].slots[slot_idx]
            if is_write:
                if slot.zero:
                    # Z break: the scalar path re-stages.
                    self.deferred_declines["z_break"] += 1
                    return None
                cf = slot.cf
                if (
                    cf > 1
                    and self.oracle.peek_write(block_id, sub_idx)
                    and not self.oracle.fits_at(
                        block_id, slot.sub_start, cf, self._ca,
                        self.oracle.version_of(block_id) + 1,
                    )
                ):
                    # Write overflow: the scalar path splits the range.
                    self.deferred_declines["write_overflow"] += 1
                    return None
                stage.record_set_access(set_index)
                rc_miss = not self.remap_cache.access(super_id)
                if rc_miss:
                    self._count_table_probe()
                stage.touch(set_index, way)
                dev = self.devices.fast
                nbytes = self._cl_size
                dev._n_write_bytes += nbytes
                dev._n_writes += 1
                dev._array_latency(
                    block_id * block_size + sub_idx * sub_size,
                    dev.write_latency,
                )
                stage.mark_dirty(set_index, way, slot_idx)
                self.oracle.note_write(block_id, sub_idx)
                self._n_accesses += 1
                self._n_writes += 1
                self._n_cases[self._idx_stage_hit] += 1
                self._n_served_fast += 1
                return (rc_miss, True, 3, nbytes, 0.0, 0.0, None)
            stage.record_set_access(set_index)
            rc_miss = not self.remap_cache.access(super_id)
            if rc_miss:
                self._count_table_probe()
            stage.touch(set_index, way)
            self._n_accesses += 1
            self._n_reads += 1
            self._n_cases[self._idx_stage_hit] += 1
            self._n_served_fast += 1
            if slot.zero:
                return (rc_miss, True, 0, 0, 0.0, 0.0, None)
            cf = slot.cf
            nbytes = self._cl_size if (cf <= 1 or self._ca) else self._sb_size
            dev = self.devices.fast
            dev._n_read_bytes += nbytes
            dev._n_reads += 1
            dev._n_demand_read_bytes += nbytes
            arr = dev._array_latency(
                block_id * block_size + sub_idx * sub_size, dev.read_latency
            ) + 0.0
            if cf > 1:
                line_idx = (rem % sub_size) // self._g_line_size
                lines = self._chunk_lines(
                    block_id, slot.sub_start, cf, sub_idx, line_idx
                )
                return (rc_miss, True, 1, nbytes, arr, self._decomp_f, lines)
            return (rc_miss, True, 1, nbytes, arr, 0.0, None)

        entry = self.remap_table._entries.get(block_id)
        blk_off = block_id % self._g_super_blocks
        if entry is not None and entry.sub_block_remapped(sub_idx):
            # Case 2: commit hit.
            located = self.fast_area.find_block(super_id, blk_off)
            if located is None:
                # Broken invariant: the scalar path raises.
                self.deferred_declines["invariant"] += 1
                return None
            way, state = located
            if is_write:
                if entry.zero:
                    # Z break: the scalar path evicts the logical block.
                    self.deferred_declines["z_break"] += 1
                    return None
                start, cf = entry.range_of(sub_idx)
                if (
                    self.oracle.peek_write(block_id, sub_idx)
                    and cf > 1
                    and not self.oracle.fits_at(
                        block_id, start, cf, self._ca,
                        self.oracle.version_of(block_id) + 1,
                    )
                ):
                    # Rule-4 overflow: the scalar path evicts.
                    self.deferred_declines["write_overflow"] += 1
                    return None
                self.stage.record_set_access(super_id % self.stage.num_sets)
                rc_miss = not self.remap_cache.access(super_id)
                if rc_miss:
                    self._count_table_probe()
                self.fast_area.touch(self.fast_area.set_of_super(super_id), way)
                dev = self.devices.fast
                nbytes = self._cl_size
                dev._n_write_bytes += nbytes
                dev._n_writes += 1
                dev._array_latency(
                    block_id * block_size + sub_idx * sub_size,
                    dev.write_latency,
                )
                state.dirty_subs.add((blk_off, sub_idx))
                self.oracle.note_write(block_id, sub_idx)
                self._n_accesses += 1
                self._n_writes += 1
                self._n_cases[self._idx_commit_hit] += 1
                self._n_served_fast += 1
                return (rc_miss, False, 3, nbytes, 0.0, 0.0, None)
            self.stage.record_set_access(super_id % self.stage.num_sets)
            rc_miss = not self.remap_cache.access(super_id)
            if rc_miss:
                self._count_table_probe()
            self.fast_area.touch(self.fast_area.set_of_super(super_id), way)
            self._n_accesses += 1
            self._n_reads += 1
            self._n_cases[self._idx_commit_hit] += 1
            self._n_served_fast += 1
            if entry.zero:
                return (rc_miss, False, 0, 0, 0.0, 0.0, None)
            start, cf = entry.range_of(sub_idx)
            nbytes = self._cl_size if (cf <= 1 or self._ca) else self._sb_size
            dev = self.devices.fast
            dev._n_read_bytes += nbytes
            dev._n_reads += 1
            dev._n_demand_read_bytes += nbytes
            arr = dev._array_latency(
                block_id * block_size + sub_idx * sub_size, dev.read_latency
            ) + 0.0
            if cf > 1:
                line_idx = (rem % sub_size) // self._g_line_size
                lines = self._chunk_lines(block_id, start, cf, sub_idx, line_idx)
                return (rc_miss, False, 1, nbytes, arr, self._decomp_f, lines)
            return (rc_miss, False, 1, nbytes, arr, 0.0, None)
        if self._stage_on and block_id in col.stage_block:
            # Case 3: the staged fetch mutates, scalar path.
            self.deferred_declines["staging_fetch"] += 1
            return None
        if entry is not None:
            # entry.is_remapped but the demanded sub-block is not staged
            # or committed.
            if not self._stage_on:
                # The no-stage ablation inserts directly.
                self.deferred_declines["no_stage"] += 1
                return None
            # Case 4: commit miss — a pure slow-memory bypass.
            self.stage.record_set_access(super_id % self.stage.num_sets)
            rc_miss = not self.remap_cache.access(super_id)
            if rc_miss:
                self._count_table_probe()
            self._n_accesses += 1
            self._n_cases[self._idx_commit_miss] += 1
            dev = self.devices.slow
            nbytes = self._cl_size
            if is_write:
                self._n_writes += 1
                dev._n_write_bytes += nbytes
                dev._n_writes += 1
                return (rc_miss, False, 4, nbytes, 0.0, 0.0, None)
            self._n_reads += 1
            dev._n_read_bytes += nbytes
            dev._n_reads += 1
            dev._n_demand_read_bytes += nbytes
            return (rc_miss, False, 2, nbytes, dev.read_latency + 0.0, 0.0, None)
        if (
            self._flat_blocks
            and block_id % self._home_period == 0
            and block_id // self._home_period < self._flat_blocks
        ):
            if block_id not in self._displaced:
                # Flat scheme: resident home block, served in place.
                self.stage.record_set_access(super_id % self.stage.num_sets)
                rc_miss = not self.remap_cache.access(super_id)
                if rc_miss:
                    self._count_table_probe()
                self._n_accesses += 1
                self._n_cases[self._idx_fast_home] += 1
                self._n_served_fast += 1
                dev = self.devices.fast
                nbytes = self._cl_size
                if is_write:
                    self._n_writes += 1
                    dev._n_write_bytes += nbytes
                    dev._n_writes += 1
                    dev._array_latency(
                        block_id * block_size, dev.write_latency
                    )
                    self._home_stamps[block_id] = self.fast_area.next_stamp()
                    return (rc_miss, False, 3, nbytes, 0.0, 0.0, None)
                self._n_reads += 1
                dev._n_read_bytes += nbytes
                dev._n_reads += 1
                dev._n_demand_read_bytes += nbytes
                arr = dev._array_latency(
                    block_id * block_size, dev.read_latency
                ) + 0.0
                self._home_stamps[block_id] = self.fast_area.next_stamp()
                return (rc_miss, False, 1, nbytes, arr, 0.0, None)
            # Displaced home: served from its spread slow copy.
            self.stage.record_set_access(super_id % self.stage.num_sets)
            rc_miss = not self.remap_cache.access(super_id)
            if rc_miss:
                self._count_table_probe()
            self._n_accesses += 1
            self._n_cases[self._idx_slow_direct] += 1
            dev = self.devices.slow
            nbytes = self._cl_size
            if is_write:
                self._n_writes += 1
                dev._n_write_bytes += nbytes
                dev._n_writes += 1
                return (rc_miss, False, 4, nbytes, 0.0, 0.0, None)
            self._n_reads += 1
            dev._n_read_bytes += nbytes
            dev._n_reads += 1
            dev._n_demand_read_bytes += nbytes
            return (rc_miss, False, 2, nbytes, dev.read_latency + 0.0, 0.0, None)
        # Case 5: the block miss stages a fetch, scalar path.
        self.deferred_declines["staging_fetch"] += 1
        return None

    def make_run_classifier(self, addrs, writes):
        """Bulk verdict source for a whole trace's deferred path.

        Returns a :class:`~repro.core.columnar.DeferredRunClassifier`
        classifying chunks of future trace indices with numpy gathers
        over the columnar arrays, or ``None`` when the trace or this
        controller cannot support it (the simulator then classifies every
        op with :meth:`access_deferred` exactly as before).
        """
        if not self.supports_batching:
            return None
        from repro.core.columnar import build_run_classifier

        return build_run_classifier(self, addrs, writes)

    def make_deferred_server(self, dirty_blocks=None):
        """Build the inlined serve/flush closure pair for the hot loop.

        Returns ``(serve, flush, replay)`` or ``None``. ``serve(addr,
        is_write, code, aux)`` is a drop-in for :meth:`access_deferred` (``code ==
        0``: classify inline) and :meth:`access_classified` (``code > 0``:
        trust the gathered verdict — revalidated against ``dirty_blocks``,
        the classifier's post-gather mutation set, falling back to the
        inline classification when the block went stale) with every
        per-op helper call inlined:
        the remap-cache LRU probe, the row-buffer bank transition, the
        stage rank / fast-area stamp touches, and the set-access aging
        count. Traffic, case, and hit-ratio counters accumulate in closure
        locals and ``flush()`` scatters them into the real counter
        attributes in one bulk update — integer sums, so the folded totals
        are bit-identical to per-op increments and no intermediate value
        is ever observable (the simulator flushes before any scalar
        ``access`` call and before every stats snapshot).

        Construction declines (returns ``None``) when any per-op observer
        the inlined bodies skip could fire: controller-level hooks (via
        :attr:`supports_batching`), remap-cache tracing or faults, device
        faults, or row-buffer tracing, faults, or a non-LRU fast area.
        """
        if not self.supports_batching:
            return None
        rc = self.remap_cache
        devices = self.devices
        fast = devices.fast
        slow = devices.slow
        rb = fast.row_buffer
        fa = self.fast_area
        if (
            rc.obs.enabled
            or rc.faults is not None
            or fast.faults is not None
            or slow.faults is not None
            or (rb is not None and (rb.obs.enabled or rb.faults is not None))
            or fa.replacement != "lru"
        ):
            return None

        # ---- bound hot state (locals inside the closures) ----
        block_size = self._g_block_size
        super_blocks = self._g_super_blocks
        sub_size = self._g_sub_size
        sub_per_block = self._g_sub_per_block
        line_size = self._g_line_size
        cl_size = self._cl_size
        sb_size = self._sb_size
        ca = self._ca
        decomp_f = self._decomp_f
        stage_on = self._stage_on
        flat_blocks = self._flat_blocks
        home_period = self._home_period
        displaced = self._displaced
        home_stamps = self._home_stamps
        col = self.columnar
        stage_sub = col.stage_sub
        stage_sub_get = stage_sub.get
        stage_block = col.stage_block
        stage = self.stage
        stage_entries = stage.tags.entries
        stage_num_sets = stage.num_sets
        set_counts = stage._set_accesses
        valid_counts = stage.valid_counts
        aging_period = stage._aging_period
        age_set = stage.age_set
        lines_per_sub = self.geometry.cachelines_per_sub_block
        col_mark_dirty = None if col is None else col.stage_mark_dirty
        # Remap-cache inline-probe contract: see RemapCache.probe_state
        # for the transitions the probe below must preserve.
        rc_sets, rc_num_sets, _, rc_col = rc.probe_state()
        rc_credit = rc.credit_probes
        fa_blocks = fa.blocks
        fa_num_sets = fa.num_sets
        entries_tbl = self.remap_table._entries
        entries_get = entries_tbl.get
        oracle = self.oracle
        peek_write = oracle.peek_write
        fits_at = oracle.fits_at
        version_of = oracle.version_of
        note_write = oracle.note_write
        chunk_lines = self._chunk_lines
        declines = self.deferred_declines
        f_read_lat = fast.read_latency
        f_write_lat = fast.write_latency
        s_read_lat = slow.read_latency
        if rb is not None:
            rb_open = rb._open_rows
            rb_row_bytes = rb.row_bytes
            rb_banks = rb.channels * rb.banks_per_channel
            rb_cas = rb.t_cas
            rb_pre_lat = rb.t_rp + rb.t_rcd + rb.t_cas
            rb_act_lat = rb.t_rcd + rb.t_cas
        else:
            rb_open = None
        n_cases = self._n_cases
        idx_stage = self._idx_stage_hit
        idx_commit = self._idx_commit_hit
        idx_cmiss = self._idx_commit_miss
        idx_home = self._idx_fast_home
        idx_slowd = self._idx_slow_direct
        idx_smiss = AccessCase.STAGE_MISS.index
        idx_bmiss = AccessCase.BLOCK_MISS.index
        dirty = dirty_blocks if dirty_blocks is not None else frozenset()
        # Staging-fetch capture: the real fetch-and-stage runs eagerly
        # against these recording pools (see :class:`_RecordingPool`).
        miss_cap = stage.config.miss_counter_max()
        mru_miss_cnt = stage.mru_miss_cnt
        col_block_miss = col.stage_block_miss
        fetch_and_stage = self._fetch_and_stage
        real_fast_pool = fast.pool
        real_slow_pool = slow.pool
        rec_log: list = []
        rec_fast = _RecordingPool(1, rec_log)
        rec_slow = _RecordingPool(0, rec_log)
        # Staging-fetch fast path: the common fetch/insert shapes are
        # inlined below; these bindings mirror the scalar helpers.
        cf_hints_get = self._cf_hints.get
        cwb = self._cwb
        selective = self.config.compression.selective
        zero_support = self._zero_support
        is_zero = oracle.is_zero
        max_cf = oracle.max_cf
        h_fetch_subs = self._h_fetch_subs
        h_fetch_bytes = self._h_fetch_bytes
        share_phys = self._share_phys
        rng_choice = self._rng.choice
        stage_allocate = stage.allocate
        stage_insert_range = stage.insert_range
        stage_tag_lookup = stage.tags.lookup
        stage_insert_m = self._stage_insert
        stats_inc = self._stats.inc

        # ---- tallies, scattered by flush() ----
        t_acc = t_reads = t_writes = t_served = 0
        c_stage = c_commit = c_cmiss = c_home = c_slowd = 0
        c_smiss = c_bmiss = 0
        tbl_reads = 0
        rc_total = rc_hit_t = rc_nm = rc_ne = 0
        f_rb = f_nr = f_db = f_wb = f_nw = 0
        s_rb = s_nr = s_db = s_fb = s_wb = s_nw = 0
        rb_h = rb_m = rb_p = rb_a = 0

        def serve(addr, is_write, code, aux):
            nonlocal t_acc, t_reads, t_writes, t_served
            nonlocal c_stage, c_commit, c_cmiss, c_home, c_slowd, tbl_reads
            nonlocal c_smiss, c_bmiss
            nonlocal rc_total, rc_hit_t, rc_nm, rc_ne
            nonlocal f_rb, f_nr, f_db, f_wb, f_nw
            nonlocal s_rb, s_nr, s_db, s_fb, s_wb, s_nw
            nonlocal rb_h, rb_m, rb_p, rb_a

            block_id = addr // block_size
            super_id = block_id // super_blocks
            rem = addr % block_size
            sub_idx = rem // sub_size

            # ---- resolve the case: gathered verdict or inline classify ----
            slot = None
            entry = None
            state = None
            if code and block_id in dirty:
                code = 0
            if code:
                if code <= 3:
                    case = 1
                    way = aux & 7
                    if code == 1:
                        zero = False
                        cf = (aux >> 8) & 7
                        sub_start = aux >> 12
                    elif code == 2:
                        zero = True
                    else:
                        zero = False
                        slot_idx = (aux >> 3) & 31
                elif code <= 6:
                    case = 2
                    blk_off = block_id % super_blocks
                    # The fast-area residency invariant stays a live check.
                    found = None
                    for w, st in enumerate(fa_blocks[super_id % fa_num_sets]):
                        if st is not None and st.super_id == super_id:
                            if blk_off in st.committed:
                                found = w
                                state = st
                                break
                    if found is None:
                        declines["invariant"] += 1
                        return None
                    way = found
                    zero = code == 5
                    if code == 4:
                        cf = aux & 7
                        sub_start = aux >> 3
                else:
                    case = 4
            else:
                staged = stage_sub_get(block_id * sub_per_block + sub_idx)
                if staged is not None:
                    case = 1
                    way, slot_idx = staged
                    slot = stage_entries[super_id % stage_num_sets][way].slots[
                        slot_idx
                    ]
                    zero = slot.zero
                    if is_write:
                        if zero:
                            declines["z_break"] += 1
                            return None
                        cf = slot.cf
                        if (
                            cf > 1
                            and peek_write(block_id, sub_idx)
                            and not fits_at(
                                block_id, slot.sub_start, cf, ca,
                                version_of(block_id) + 1,
                            )
                        ):
                            declines["write_overflow"] += 1
                            return None
                    elif not zero:
                        cf = slot.cf
                        sub_start = slot.sub_start
                else:
                    entry = entries_get(block_id)
                    blk_off = block_id % super_blocks
                    if entry is not None and (
                        entry.zero or (entry.remap >> sub_idx) & 1
                    ):
                        case = 2
                        found = None
                        for w, st in enumerate(
                            fa_blocks[super_id % fa_num_sets]
                        ):
                            if st is not None and st.super_id == super_id:
                                if blk_off in st.committed:
                                    found = w
                                    state = st
                                    break
                        if found is None:
                            declines["invariant"] += 1
                            return None
                        way = found
                        zero = entry.zero
                        if is_write:
                            if zero:
                                declines["z_break"] += 1
                                return None
                            # entry.range_of, inlined (zero is False and
                            # membership already established above).
                            quad = sub_idx >> 2
                            if (entry.cf4 >> quad) & 1:
                                sub_start = quad << 2
                                cf = 4
                            else:
                                pair = sub_idx >> 1
                                if (entry.cf2 >> pair) & 1:
                                    sub_start = pair << 1
                                    cf = 2
                                else:
                                    sub_start = sub_idx
                                    cf = 1
                            if (
                                peek_write(block_id, sub_idx)
                                and cf > 1
                                and not fits_at(
                                    block_id, sub_start, cf, ca,
                                    version_of(block_id) + 1,
                                )
                            ):
                                declines["write_overflow"] += 1
                                return None
                        elif not zero:
                            quad = sub_idx >> 2
                            if (entry.cf4 >> quad) & 1:
                                sub_start = quad << 2
                                cf = 4
                            else:
                                pair = sub_idx >> 1
                                if (entry.cf2 >> pair) & 1:
                                    sub_start = pair << 1
                                    cf = 2
                                else:
                                    sub_start = sub_idx
                                    cf = 1
                    elif stage_on and block_id in stage_block:
                        # Case 3: sub-block miss on a staged block.
                        case = 7
                        miss_way = stage_block[block_id][0]
                    elif entry is not None:
                        if not stage_on:
                            declines["no_stage"] += 1
                            return None
                        case = 4
                    elif (
                        flat_blocks
                        and block_id % home_period == 0
                        and block_id // home_period < flat_blocks
                    ):
                        case = 5 if block_id not in displaced else 6
                    elif not stage_on:
                        # No-stage ablation miss: the scalar path inserts
                        # directly (access_deferred's decline reason).
                        declines["staging_fetch"] += 1
                        return None
                    else:
                        # Case 5: block miss, fetch-and-stage.
                        case = 7
                        miss_way = None

            # ---- shared eager effects, in access_deferred's exact order ----
            set_index = super_id % stage_num_sets
            n = set_counts[set_index] + 1
            if n < aging_period:
                set_counts[set_index] = n
            else:
                set_counts[set_index] = 0
                age_set(set_index)
            rci = super_id % rc_num_sets
            rc_tag = super_id // rc_num_sets
            rc_set = rc_sets[rci]
            rc_lines = rc_set.lines
            rc_line = rc_lines.get(rc_tag)
            rc_total += 1
            if rc_line is not None:
                rc_hit_t += 1
                rc_set._clock += 1
                rc_line.counter = rc_set._clock
                rc_lines[rc_tag] = rc_lines.pop(rc_tag)
                rc_miss = False
            else:
                rc_nm += 1
                if len(rc_lines) >= rc_set.ways:
                    del rc_lines[next(iter(rc_lines))]
                    rc_ne += 1
                elif rc_col is not None:
                    rc_col.rc_occupancy[rci] += 1
                rc_line = CacheLine(rc_tag)
                rc_set._clock += 1
                rc_line.counter = rc_set._clock
                rc_lines[rc_tag] = rc_line
                rc_miss = True
                f_rb += 16
                f_nr += 1
                f_db += 16
                tbl_reads += 1

            if case == 1:
                # Stage hit: exact-rank LRU promote, then serve. Ranks are
                # dense 0..valid-1, so a target already at MRU rank leaves
                # every rank (including its own) unchanged.
                entries_si = stage_entries[set_index]
                target = entries_si[way]
                old_rank = target.lru
                mru = valid_counts[set_index] - 1
                if old_rank != mru:
                    for e in entries_si:
                        if e.valid and e.lru > old_rank:
                            e.lru -= 1
                    target.lru = mru
                t_acc += 1
                c_stage += 1
                t_served += 1
                if is_write:
                    t_writes += 1
                    f_wb += cl_size
                    f_nw += 1
                    a_addr = block_id * block_size + sub_idx * sub_size
                    if rb_open is not None:
                        row = a_addr // rb_row_bytes
                        bank = row % rb_banks
                        row //= rb_banks
                        prev = rb_open.get(bank)
                        if prev == row:
                            rb_h += 1
                        else:
                            rb_open[bank] = row
                            rb_m += 1
                            if prev is not None:
                                rb_p += 1
                            else:
                                rb_a += 1
                    if slot is None:
                        slot = stage_entries[set_index][way].slots[slot_idx]
                    slot.dirty = True
                    if col_mark_dirty is not None:
                        col_mark_dirty(set_index, way, slot_idx)
                    note_write(block_id, sub_idx)
                    return (rc_miss, True, 3, cl_size, 0.0, 0.0, None)
                t_reads += 1
                if zero:
                    return (rc_miss, True, 0, 0, 0.0, 0.0, None)
            elif case == 2:
                # Commit hit: fast-area LRU stamp, then serve.
                fa._clock += 1
                state.stamp = fa._clock
                t_acc += 1
                c_commit += 1
                t_served += 1
                if is_write:
                    t_writes += 1
                    f_wb += cl_size
                    f_nw += 1
                    a_addr = block_id * block_size + sub_idx * sub_size
                    if rb_open is not None:
                        row = a_addr // rb_row_bytes
                        bank = row % rb_banks
                        row //= rb_banks
                        prev = rb_open.get(bank)
                        if prev == row:
                            rb_h += 1
                        else:
                            rb_open[bank] = row
                            rb_m += 1
                            if prev is not None:
                                rb_p += 1
                            else:
                                rb_a += 1
                    state.dirty_subs.add((blk_off, sub_idx))
                    note_write(block_id, sub_idx)
                    return (rc_miss, False, 3, cl_size, 0.0, 0.0, None)
                t_reads += 1
                if zero:
                    return (rc_miss, False, 0, 0, 0.0, 0.0, None)
            elif case == 4:
                # Commit miss: a pure slow-memory bypass.
                t_acc += 1
                c_cmiss += 1
                if is_write:
                    t_writes += 1
                    s_wb += cl_size
                    s_nw += 1
                    return (rc_miss, False, 4, cl_size, 0.0, 0.0, None)
                t_reads += 1
                s_rb += cl_size
                s_nr += 1
                s_db += cl_size
                return (rc_miss, False, 2, cl_size, s_read_lat + 0.0, 0.0, None)
            elif case == 7:
                # Cases 3/5 (staging fetch): every state decision in the
                # fetch-and-stage tree is clock-free, so it runs eagerly
                # here. The dominant shapes (non-zero fetch into a free
                # slot or a fresh way) are inlined outright; the rare ones
                # (zero blocks, selective compression, replacements) fall
                # back to the real helpers with the channel pools swapped
                # for recorders. Either way the op carries the transfer
                # sequence, replayed in order at the op's exact clock
                # (dev codes 5/6).
                t_acc += 1
                if is_write:
                    t_writes += 1
                else:
                    t_reads += 1
                # stage.record_block_miss, inlined; the MRU check uses the
                # dense-rank invariant (MRU way has rank valid-1).
                if miss_way is None:
                    c_bmiss += 1
                    bound_entry = None
                    n = mru_miss_cnt[set_index] + 1
                    mru_miss_cnt[set_index] = n if n < miss_cap else miss_cap
                else:
                    c_smiss += 1
                    bound_entry = stage_entries[set_index][miss_way]
                    n = bound_entry.miss_count + 1
                    if n > miss_cap:
                        n = miss_cap
                    bound_entry.miss_count = n
                    col_block_miss(set_index, miss_way, n)
                    if bound_entry.lru == valid_counts[set_index] - 1:
                        n = mru_miss_cnt[set_index] + 1
                        mru_miss_cnt[set_index] = (
                            n if n < miss_cap else miss_cap
                        )
                if selective or (
                    bound_entry is None
                    and zero_support
                    and is_zero(block_id, 0, sub_per_block)
                ):
                    fast.pool = rec_fast
                    slow.pool = rec_slow
                    try:
                        latency, prefetched = fetch_and_stage(
                            0.0, 0.0, super_id, block_id, blk_off, sub_idx,
                            (rem % sub_size) // line_size, is_write,
                        )
                    finally:
                        fast.pool = real_fast_pool
                        slow.pool = real_slow_pool
                    if rec_log and rec_log[0][2]:
                        # The demand read is the only priority transfer
                        # the capture can see (the table probe replays
                        # from rc_miss); the rest is posted traffic.
                        demand_nb = rec_log[0][1]
                        extras = tuple(rec_log[1:])
                    else:
                        demand_nb = 0  # zero block: meta-only latency
                        extras = tuple(rec_log)
                    del rec_log[:]
                    return (
                        rc_miss,
                        False,
                        6 if is_write else 5,
                        (demand_nb, extras),
                        s_read_lat + 0.0,
                        decomp_f if prefetched else 0.0,
                        prefetched if prefetched else None,
                    )
                # _choose_fetch_range, inlined (selective is off here).
                compressed = False
                hint = cf_hints_get(block_id)
                if hint is not None and cwb:
                    cf2h, cf4h, _z = hint
                    if (cf4h >> (sub_idx >> 2)) & 1:
                        sub_start = (sub_idx >> 2) << 2
                        cf = 4
                        compressed = True
                    elif (cf2h >> (sub_idx >> 1)) & 1:
                        sub_start = (sub_idx >> 1) << 1
                        cf = 2
                        compressed = True
                if not compressed:
                    cf = max_cf(block_id, sub_idx, ca)
                    sub_start = (sub_idx // cf) * cf
                if bound_entry is not None and cf > 1:
                    # Avoid refetching sub-blocks already staged.
                    staged_subs = {
                        s
                        for bslot in bound_entry.slots
                        if bslot is not None and bslot.blk_off == blk_off
                        for s in bslot.sub_blocks
                    }
                    while cf > 1 and any(
                        s in staged_subs
                        for s in range(sub_start, sub_start + cf)
                    ):
                        cf //= 2
                        sub_start = (sub_idx // cf) * cf
                        compressed = False
                lines = None
                if compressed:
                    demand_nb = cl_size if ca else sb_size
                    fetch_bytes = sb_size
                    # _chunk_lines, inlined.
                    line_idx = (rem % sub_size) // line_size
                    base = block_id * block_size + sub_start * sub_size
                    demanded = (
                        (sub_idx - sub_start) * lines_per_sub + line_idx
                    )
                    if ca:
                        first = (demanded // cf) * cf
                        rng = range(first, first + cf)
                    else:
                        rng = range(cf * lines_per_sub)
                    lines = [
                        base + i * line_size for i in rng if i != demanded
                    ]
                else:
                    demand_nb = cl_size
                    fetch_bytes = cf * sb_size
                s_rb += demand_nb
                s_nr += 1
                s_db += demand_nb
                rest = fetch_bytes - demand_nb
                if rest > 0:
                    s_rb += rest
                    s_nr += 1
                    s_fb += rest
                    extras = [(0, rest, False), (1, sb_size, False)]
                else:
                    extras = [(1, sb_size, False)]
                f_wb += sb_size
                f_nw += 1
                if h_fetch_subs is not None:
                    h_fetch_subs.observe(cf)
                    h_fetch_bytes.observe(fetch_bytes)
                new_slot = RangeSlot(
                    cf=cf, dirty=is_write, blk_off=blk_off,
                    sub_start=sub_start,
                )
                # _stage_insert: free-slot / fresh-way shapes inline, the
                # replacement shapes via the captured real helper.
                ins_way = None
                if bound_entry is not None:
                    if bound_entry.free_slot() is not None:
                        ins_way = miss_way
                elif share_phys:
                    candidates = stage_tag_lookup(
                        set_index, super_id // stage_num_sets
                    )
                    if candidates:
                        with_room = [
                            (w, e)
                            for w, e in candidates
                            if e.free_slot() is not None
                        ]
                        if with_room:
                            ins_way = rng_choice(with_room)[0]
                            if len(candidates) > 1:
                                stats_inc("multi_block_super_stages")
                    else:
                        allocated = stage_allocate(super_id)
                        if allocated is not None:
                            ins_way = allocated[1]
                else:
                    allocated = stage_allocate(super_id)
                    if allocated is not None:
                        ins_way = allocated[1]
                if ins_way is not None:
                    stage_insert_range(set_index, ins_way, new_slot)
                    # stage.touch with the exact-rank MRU shortcut.
                    entries_si = stage_entries[set_index]
                    target = entries_si[ins_way]
                    old_rank = target.lru
                    mru = valid_counts[set_index] - 1
                    if old_rank != mru:
                        for e in entries_si:
                            if e.valid and e.lru > old_rank:
                                e.lru -= 1
                        target.lru = mru
                else:
                    fast.pool = rec_fast
                    slow.pool = rec_slow
                    try:
                        stage_insert_m(
                            0.0, super_id, block_id, blk_off, new_slot,
                            None if bound_entry is None
                            else (miss_way, bound_entry),
                        )
                    finally:
                        fast.pool = real_fast_pool
                        slow.pool = real_slow_pool
                    if rec_log:
                        extras.extend(rec_log)
                        del rec_log[:]
                if is_write:
                    note_write(block_id, sub_idx)
                return (
                    rc_miss,
                    False,
                    6 if is_write else 5,
                    (demand_nb, extras),
                    s_read_lat + 0.0,
                    decomp_f if compressed else 0.0,
                    lines,
                )
            elif case == 5:
                # Flat scheme: resident home block, served in place.
                t_acc += 1
                c_home += 1
                t_served += 1
                a_addr = block_id * block_size
                if rb_open is not None:
                    row = a_addr // rb_row_bytes
                    bank = row % rb_banks
                    row //= rb_banks
                    prev = rb_open.get(bank)
                    if prev == row:
                        rb_h += 1
                        arr = rb_cas
                    else:
                        rb_open[bank] = row
                        rb_m += 1
                        if prev is not None:
                            rb_p += 1
                            arr = rb_pre_lat
                        else:
                            rb_a += 1
                            arr = rb_act_lat
                else:
                    arr = f_write_lat if is_write else f_read_lat
                fa._clock += 1
                home_stamps[block_id] = fa._clock
                if is_write:
                    t_writes += 1
                    f_wb += cl_size
                    f_nw += 1
                    return (rc_miss, False, 3, cl_size, 0.0, 0.0, None)
                t_reads += 1
                f_rb += cl_size
                f_nr += 1
                f_db += cl_size
                return (rc_miss, False, 1, cl_size, arr + 0.0, 0.0, None)
            else:
                # Displaced home: served from its spread slow copy.
                t_acc += 1
                c_slowd += 1
                if is_write:
                    t_writes += 1
                    s_wb += cl_size
                    s_nw += 1
                    return (rc_miss, False, 4, cl_size, 0.0, 0.0, None)
                t_reads += 1
                s_rb += cl_size
                s_nr += 1
                s_db += cl_size
                return (rc_miss, False, 2, cl_size, s_read_lat + 0.0, 0.0, None)

            # ---- non-zero read data transfer (cases 1 and 2) ----
            nbytes = cl_size if (cf <= 1 or ca) else sb_size
            f_rb += nbytes
            f_nr += 1
            f_db += nbytes
            a_addr = block_id * block_size + sub_idx * sub_size
            if rb_open is not None:
                row = a_addr // rb_row_bytes
                bank = row % rb_banks
                row //= rb_banks
                prev = rb_open.get(bank)
                if prev == row:
                    rb_h += 1
                    arr = rb_cas
                else:
                    rb_open[bank] = row
                    rb_m += 1
                    if prev is not None:
                        rb_p += 1
                        arr = rb_pre_lat
                    else:
                        rb_a += 1
                        arr = rb_act_lat
            else:
                arr = f_read_lat
            stage_meta = case == 1
            if cf > 1:
                # _chunk_lines, inlined: sibling cachelines of the
                # compressed chunk the demand read decompresses.
                line_idx = (rem % sub_size) // line_size
                base = block_id * block_size + sub_start * sub_size
                demanded = (sub_idx - sub_start) * lines_per_sub + line_idx
                if ca:
                    first = (demanded // cf) * cf
                    rng = range(first, first + cf)
                else:
                    rng = range(cf * lines_per_sub)
                lines = [base + i * line_size for i in rng if i != demanded]
                return (rc_miss, stage_meta, 1, nbytes, arr + 0.0, decomp_f, lines)
            return (rc_miss, stage_meta, 1, nbytes, arr + 0.0, 0.0, None)

        def flush():
            nonlocal t_acc, t_reads, t_writes, t_served
            nonlocal c_stage, c_commit, c_cmiss, c_home, c_slowd, tbl_reads
            nonlocal c_smiss, c_bmiss
            nonlocal rc_total, rc_hit_t, rc_nm, rc_ne
            nonlocal f_rb, f_nr, f_db, f_wb, f_nw
            nonlocal s_rb, s_nr, s_db, s_fb, s_wb, s_nw
            nonlocal rb_h, rb_m, rb_p, rb_a
            if t_acc:
                self._n_accesses += t_acc
                self._n_reads += t_reads
                self._n_writes += t_writes
                self._n_served_fast += t_served
                t_acc = t_reads = t_writes = t_served = 0
            if c_stage:
                n_cases[idx_stage] += c_stage
                c_stage = 0
            if c_commit:
                n_cases[idx_commit] += c_commit
                c_commit = 0
            if c_cmiss:
                n_cases[idx_cmiss] += c_cmiss
                c_cmiss = 0
            if c_smiss:
                n_cases[idx_smiss] += c_smiss
                c_smiss = 0
            if c_bmiss:
                n_cases[idx_bmiss] += c_bmiss
                c_bmiss = 0
            if c_home:
                n_cases[idx_home] += c_home
                c_home = 0
            if c_slowd:
                n_cases[idx_slowd] += c_slowd
                c_slowd = 0
            if tbl_reads:
                self._stats.inc("remap_table_reads", tbl_reads)
                tbl_reads = 0
            if rc_total:
                rc_credit(rc_total, rc_hit_t, rc_nm, rc_ne)
                rc_total = rc_hit_t = rc_nm = rc_ne = 0
            if f_nr or f_nw:
                fast._n_read_bytes += f_rb
                fast._n_reads += f_nr
                fast._n_demand_read_bytes += f_db
                fast._n_write_bytes += f_wb
                fast._n_writes += f_nw
                f_rb = f_nr = f_db = f_wb = f_nw = 0
            if s_nr or s_nw:
                slow._n_read_bytes += s_rb
                slow._n_reads += s_nr
                slow._n_demand_read_bytes += s_db
                slow._n_fill_read_bytes += s_fb
                slow._n_write_bytes += s_wb
                slow._n_writes += s_nw
                s_rb = s_nr = s_db = s_fb = s_wb = s_nw = 0
            if rb_h:
                rb.stats.inc("row_hits", rb_h)
                rb_h = 0
            if rb_m:
                rb.stats.inc("row_misses", rb_m)
                rb_m = 0
                if rb_p:
                    rb.stats.inc("precharges", rb_p)
                    rb_p = 0
                if rb_a:
                    rb.stats.inc("activations", rb_a)
                    rb_a = 0
            return None

        # Prebound replay: access_batch with the prologue binds hoisted
        # (the loop body is copied verbatim — same float operation order).
        fast_transfer = fast.pool.transfer
        slow_transfer = slow.pool.transfer
        tag_lat = self._tag_lat_f
        meta_hit = self._meta_hit_f
        rc_lat = self._rc_lat_f
        probe_lat = fast.read_latency + 0.0

        def replay(ops, cycles, mlp):
            now = self._now
            for op in ops:
                if op.__class__ is float:
                    cycles += op
                    continue
                rc_miss, stage_meta, dev, nbytes, arr, decomp, _lines = op
                now = cycles
                if dev >= 3:
                    if dev >= 5:
                        # Staging fetch (cases 3/5): replay the captured
                        # transfer sequence — table probe, demand read,
                        # then the posted background traffic — and stall
                        # the core only for reads (dev 5).
                        demand_nb, extras = nbytes
                        if rc_miss:
                            queue, transfer = fast_transfer(now, 16, True)
                            remap_lat = rc_lat + ((probe_lat + queue) + transfer)
                            latency = remap_lat if remap_lat > tag_lat else tag_lat
                        else:
                            latency = meta_hit
                        if demand_nb:
                            queue, transfer = slow_transfer(now, demand_nb, True)
                            latency += (arr + queue) + transfer
                            if decomp:
                                latency += decomp
                        for pid, nb, pri in extras:
                            if pid:
                                fast_transfer(now, nb, pri)
                            else:
                                slow_transfer(now, nb, pri)
                        if dev == 5:
                            cycles += latency / mlp
                        continue
                    if rc_miss:
                        fast_transfer(now, 16, True)
                    if dev == 3:
                        fast_transfer(now, nbytes)
                    else:
                        slow_transfer(now, nbytes)
                    continue
                if rc_miss:
                    queue, transfer = fast_transfer(now, 16, True)
                    if stage_meta:
                        latency = tag_lat
                    else:
                        remap_lat = rc_lat + ((probe_lat + queue) + transfer)
                        latency = remap_lat if remap_lat > tag_lat else tag_lat
                else:
                    latency = tag_lat if stage_meta else meta_hit
                if dev:
                    queue, transfer = (
                        fast_transfer(now, nbytes, True)
                        if dev == 1
                        else slow_transfer(now, nbytes, True)
                    )
                    latency += (arr + queue) + transfer
                    if decomp:
                        latency += decomp
                cycles += latency / mlp
            self._now = now
            return cycles

        return serve, flush, replay

    def access_classified(self, addr: int, is_write: bool, code: int, aux: int):
        """Serve one access whose membership verdict was pre-resolved.

        ``code``/``aux`` come from the run classifier's gather pass (see
        :mod:`repro.core.columnar`): the verdict already encodes which
        Fig. 6 case applies and where the covering range lives, so this
        only applies the order-sensitive eager effects — stage credit and
        LRU touches, the remap-cache probe with its fill, traffic and
        case counters, row-buffer evolution, dirty marks and oracle write
        notes — in exactly :meth:`access_deferred`'s order, and emits the
        same op tuple for :meth:`access_batch`. Counter updates and float
        expressions mirror that method operation for operation; the
        fuzzer holds both to the scalar reference bit-for-bit.
        """
        block_size = self._g_block_size
        block_id = addr // block_size
        super_id = block_id // self._g_super_blocks
        stage = self.stage
        set_index = super_id % stage.num_sets
        if code <= 3:
            # Case 1: stage hit; aux packs way/slot/cf/sub_start.
            way = aux & 7
            if is_write:
                # CLS_STAGE_WRITE: uncompressed non-zero slot, no
                # overflow probe needed (cf <= 1 never overflows).
                stage.record_set_access(set_index)
                rc_miss = not self.remap_cache.access(super_id)
                if rc_miss:
                    self._count_table_probe()
                stage.touch(set_index, way)
                dev = self.devices.fast
                nbytes = self._cl_size
                dev._n_write_bytes += nbytes
                dev._n_writes += 1
                sub_size = self._g_sub_size
                sub_idx = (addr % block_size) // sub_size
                dev._array_latency(
                    block_id * block_size + sub_idx * sub_size,
                    dev.write_latency,
                )
                stage.mark_dirty(set_index, way, (aux >> 3) & 31)
                self.oracle.note_write(block_id, sub_idx)
                self._n_accesses += 1
                self._n_writes += 1
                self._n_cases[self._idx_stage_hit] += 1
                self._n_served_fast += 1
                return (rc_miss, True, 3, nbytes, 0.0, 0.0, None)
            stage.record_set_access(set_index)
            rc_miss = not self.remap_cache.access(super_id)
            if rc_miss:
                self._count_table_probe()
            stage.touch(set_index, way)
            self._n_accesses += 1
            self._n_reads += 1
            self._n_cases[self._idx_stage_hit] += 1
            self._n_served_fast += 1
            if code == 2:  # CLS_STAGE_ZERO
                return (rc_miss, True, 0, 0, 0.0, 0.0, None)
            cf = (aux >> 8) & 7
            nbytes = self._cl_size if (cf <= 1 or self._ca) else self._sb_size
            dev = self.devices.fast
            dev._n_read_bytes += nbytes
            dev._n_reads += 1
            dev._n_demand_read_bytes += nbytes
            rem = addr % block_size
            sub_size = self._g_sub_size
            sub_idx = rem // sub_size
            arr = dev._array_latency(
                block_id * block_size + sub_idx * sub_size, dev.read_latency
            ) + 0.0
            if cf > 1:
                line_idx = (rem % sub_size) // self._g_line_size
                lines = self._chunk_lines(
                    block_id, aux >> 12, cf, sub_idx, line_idx
                )
                return (rc_miss, True, 1, nbytes, arr, self._decomp_f, lines)
            return (rc_miss, True, 1, nbytes, arr, 0.0, None)
        if code <= 6:
            # Case 2: commit hit; aux packs range_of's (cf, sub_start).
            # The fast-area residency invariant stays a live per-op check.
            blk_off = block_id % self._g_super_blocks
            located = self.fast_area.find_block(super_id, blk_off)
            if located is None:
                self.deferred_declines["invariant"] += 1
                return None
            way, state = located
            sub_size = self._g_sub_size
            rem = addr % block_size
            sub_idx = rem // sub_size
            if is_write:
                # CLS_COMMIT_WRITE: cf <= 1, non-zero — never overflows.
                stage.record_set_access(set_index)
                rc_miss = not self.remap_cache.access(super_id)
                if rc_miss:
                    self._count_table_probe()
                self.fast_area.touch(self.fast_area.set_of_super(super_id), way)
                dev = self.devices.fast
                nbytes = self._cl_size
                dev._n_write_bytes += nbytes
                dev._n_writes += 1
                dev._array_latency(
                    block_id * block_size + sub_idx * sub_size,
                    dev.write_latency,
                )
                state.dirty_subs.add((blk_off, sub_idx))
                self.oracle.note_write(block_id, sub_idx)
                self._n_accesses += 1
                self._n_writes += 1
                self._n_cases[self._idx_commit_hit] += 1
                self._n_served_fast += 1
                return (rc_miss, False, 3, nbytes, 0.0, 0.0, None)
            stage.record_set_access(set_index)
            rc_miss = not self.remap_cache.access(super_id)
            if rc_miss:
                self._count_table_probe()
            self.fast_area.touch(self.fast_area.set_of_super(super_id), way)
            self._n_accesses += 1
            self._n_reads += 1
            self._n_cases[self._idx_commit_hit] += 1
            self._n_served_fast += 1
            if code == 5:  # CLS_COMMIT_ZERO
                return (rc_miss, False, 0, 0, 0.0, 0.0, None)
            cf = aux & 7
            nbytes = self._cl_size if (cf <= 1 or self._ca) else self._sb_size
            dev = self.devices.fast
            dev._n_read_bytes += nbytes
            dev._n_reads += 1
            dev._n_demand_read_bytes += nbytes
            arr = dev._array_latency(
                block_id * block_size + sub_idx * sub_size, dev.read_latency
            ) + 0.0
            if cf > 1:
                line_idx = (rem % sub_size) // self._g_line_size
                lines = self._chunk_lines(block_id, aux >> 3, cf, sub_idx, line_idx)
                return (rc_miss, False, 1, nbytes, arr, self._decomp_f, lines)
            return (rc_miss, False, 1, nbytes, arr, 0.0, None)
        # Case 4: commit miss — a pure slow-memory bypass.
        stage.record_set_access(set_index)
        rc_miss = not self.remap_cache.access(super_id)
        if rc_miss:
            self._count_table_probe()
        self._n_accesses += 1
        self._n_cases[self._idx_commit_miss] += 1
        dev = self.devices.slow
        nbytes = self._cl_size
        if is_write:
            self._n_writes += 1
            dev._n_write_bytes += nbytes
            dev._n_writes += 1
            return (rc_miss, False, 4, nbytes, 0.0, 0.0, None)
        self._n_reads += 1
        dev._n_read_bytes += nbytes
        dev._n_reads += 1
        dev._n_demand_read_bytes += nbytes
        return (rc_miss, False, 2, nbytes, dev.read_latency + 0.0, 0.0, None)

    def access_batch(self, ops, cycles: float, mlp: float) -> float:
        """Replay a span of deferred ops against the channel pools.

        ``ops`` interleaves plain floats (core-side cycle increments the
        caller deferred to keep the accumulation order) with op tuples
        from :meth:`access_deferred`, in trace order. Each op is served at
        the clock value the accumulator has reached — exactly the ``now``
        the scalar loop would have passed to :meth:`access` — so the
        channel busy-state evolution, the queueing delays and the float
        accumulation order of ``cycles`` are bit-identical to the scalar
        path. Returns the advanced ``cycles``.
        """
        fast_transfer = self.devices.fast.pool.transfer
        slow_transfer = self.devices.slow.pool.transfer
        tag_lat = self._tag_lat_f
        meta_hit = self._meta_hit_f
        rc_lat = self._rc_lat_f
        probe_lat = self.devices.fast.read_latency + 0.0
        now = self._now
        for op in ops:
            if op.__class__ is float:
                cycles += op
                continue
            rc_miss, stage_meta, dev, nbytes, arr, decomp, _lines = op
            now = cycles
            if dev >= 3:
                if dev >= 5:
                    # Staging fetch (cases 3/5): ``nbytes`` carries
                    # ``(demand_bytes, extras)`` — the demand read plus
                    # the captured posted transfers, replayed in capture
                    # order. Only reads (dev 5) stall the core.
                    demand_nb, extras = nbytes
                    if rc_miss:
                        queue, transfer = fast_transfer(now, 16, True)
                        remap_lat = rc_lat + ((probe_lat + queue) + transfer)
                        latency = remap_lat if remap_lat > tag_lat else tag_lat
                    else:
                        latency = meta_hit
                    if demand_nb:
                        queue, transfer = slow_transfer(now, demand_nb, True)
                        latency += (arr + queue) + transfer
                        if decomp:
                            latency += decomp
                    for pid, nb, pri in extras:
                        if pid:
                            fast_transfer(now, nb, pri)
                        else:
                            slow_transfer(now, nb, pri)
                    if dev == 5:
                        cycles += latency / mlp
                    continue
                # Posted write: evolves the channel busy state (and the
                # remap-table probe) but adds no core-visible latency —
                # the simulator never accumulates write latencies.
                if rc_miss:
                    fast_transfer(now, 16, True)
                if dev == 3:
                    fast_transfer(now, nbytes)
                else:
                    slow_transfer(now, nbytes)
                continue
            if rc_miss:
                queue, transfer = fast_transfer(now, 16, True)
                if stage_meta:
                    latency = tag_lat
                else:
                    remap_lat = rc_lat + ((probe_lat + queue) + transfer)
                    latency = remap_lat if remap_lat > tag_lat else tag_lat
            else:
                latency = tag_lat if stage_meta else meta_hit
            if dev:
                queue, transfer = (
                    fast_transfer(now, nbytes, True)
                    if dev == 1
                    else slow_transfer(now, nbytes, True)
                )
                latency += (arr + queue) + transfer
                if decomp:
                    latency += decomp
            cycles += latency / mlp
        self._now = now
        return cycles

    def _dispatch(
        self,
        now: float,
        super_id: int,
        block_id: int,
        blk_off: int,
        sub_idx: int,
        line_idx: int,
        is_write: bool,
    ) -> Tuple[AccessResult, Optional[RemapEntry], Optional[Tuple[int, StageTagEntry]]]:
        """The Fig. 6 case dispatch (the body of :meth:`access`)."""
        stage_set = self.stage.set_index_of(super_id)
        self.stage.record_set_access(stage_set)

        # Metadata lookup: stage tag array and remap cache in parallel.
        meta_latency = float(self.config.stage.tag_latency_cycles)
        try:
            remap_hit = self.remap_cache.access(super_id)
        except CorruptionError:
            # Injected remap-cache corruption: the line is dropped and
            # rebuilt from the authoritative table. The refill runs with
            # injection paused so the repair always terminates.
            remap_hit = self._repair_remap_cache_line(super_id)
        remap_latency = float(self.remap_cache.latency_cycles)
        if not remap_hit:
            # Off-chip remap table probe: one super-block line (16 B).
            table = self._dev_read(self.devices.fast, now, 16, demand=True)
            remap_latency += table.total_cycles
            self._stats.inc("remap_table_reads")
        # Fast path: with no fault injection armed, `_table_get` is a pure
        # read, so the entry materialization can be deferred until a
        # consumer needs it. The dominant stage-hit/remap-cache-hit case
        # then skips it entirely unless a tracker is recording (the
        # existing zero-cost guards stay in place).
        defer_entry = self.faults is None
        entry = None if defer_entry else self._table_get(now, block_id)

        staged_block = None
        staged_sub = None
        if self.config.stage.enabled:
            if self.faults is None:
                # O(1) columnar probes replace the way x slot scans. The
                # Rule-3 and no-overlap invariants (ColumnarState.verify)
                # make the dict answers identical to the first-match
                # scans; with fault injection armed the scans stay, since
                # lookup_block draws the corruption sample per match.
                ref = self.columnar.stage_block.get(block_id)
                if ref is not None:
                    way = ref[0]
                    entry_obj = self.stage.tags.entries[stage_set][way]
                    staged_block = (way, entry_obj)
                    hit = self.columnar.stage_sub.get(
                        block_id * self._g_sub_per_block + sub_idx
                    )
                    if hit is not None:
                        staged_sub = (way, entry_obj, hit[1])
            else:
                staged_block = self.stage.lookup_block(super_id, blk_off)
                if staged_block is not None:
                    staged_sub = self.stage.lookup_sub_block(
                        super_id, blk_off, sub_idx
                    )

        if staged_sub is not None:
            meta = meta_latency
            result = self._case1_stage_hit(
                now, meta, super_id, block_id, blk_off, sub_idx, line_idx,
                staged_sub, is_write,
            )
            if defer_entry and self.tracker is not None:
                entry = self._table_get(now, block_id)
            return result, entry, staged_block
        else:
            if defer_entry:
                entry = self._table_get(now, block_id)
            meta = max(meta_latency, remap_latency)
            if entry.is_remapped and entry.sub_block_remapped(sub_idx):
                result = self._case2_commit_hit(
                    now, meta, super_id, block_id, blk_off, sub_idx, line_idx,
                    entry, is_write,
                )
            elif staged_block is not None:
                result = self._case3_stage_miss(
                    now, meta, super_id, block_id, blk_off, sub_idx, line_idx,
                    staged_block, is_write,
                )
            elif entry.is_remapped:
                if self.config.stage.enabled:
                    result = self._case4_commit_miss(now, meta, is_write)
                else:
                    # No-stage ablation: insert directly (with re-sort cost).
                    result = self._no_stage_miss(
                        now, meta, super_id, block_id, blk_off, sub_idx,
                        line_idx, is_write,
                    )
            elif self._is_fast_home(block_id):
                result = self._fast_home_access(now, meta, block_id, is_write)
            elif self._is_home_block(block_id):
                # Displaced home block: served from its spread slow copy
                # until its space frees (never staged; Sec. III-F).
                result = self._slow_direct(now, meta, is_write)
            else:
                result = self._case5_block_miss(
                    now, meta, super_id, block_id, blk_off, sub_idx, line_idx,
                    is_write,
                )

        return result, entry, staged_block

    # --------------------------------------------------- recovery paths
    def _dev_read(self, device, now: float, nbytes: int, *, demand: bool = True,
                  addr: Optional[int] = None):
        """Device read, through bounded retry when recovery is armed."""
        if self.recovery is not None and self.faults is not None:
            return self.recovery.retry_read(device, now, nbytes, demand=demand, addr=addr)
        return device.read(now, nbytes, demand=demand, addr=addr)

    def _dev_write(self, device, now: float, nbytes: int, addr: Optional[int] = None):
        """Device write, through bounded retry when recovery is armed."""
        if self.recovery is not None and self.faults is not None:
            return self.recovery.retry_write(device, now, nbytes, addr=addr)
        return device.write(now, nbytes, addr=addr)

    def _bg_read(self, device, now: float, nbytes: int) -> None:
        """Fill-side read whose timing outcome is discarded.

        Same channel occupancy and traffic counters as
        ``_dev_read(..., demand=False)`` without materializing the
        :class:`DeviceAccess` nobody reads; falls back to the retry
        wrapper whenever fault injection is armed.
        """
        if self.faults is not None or device.faults is not None:
            self._dev_read(device, now, nbytes, demand=False)
            return
        device.pool.transfer(now, nbytes, False)
        device._n_read_bytes += nbytes
        device._n_reads += 1
        device._n_fill_read_bytes += nbytes

    def _bg_write(self, device, now: float, nbytes: int) -> None:
        """Posted write whose timing outcome is discarded (see _bg_read)."""
        if self.faults is not None or device.faults is not None:
            self._dev_write(device, now, nbytes)
            return
        device.pool.transfer(now, nbytes)
        device._n_write_bytes += nbytes
        device._n_writes += 1

    def _pause_faults(self) -> bool:
        """Suspend injection for a recovery path; returns a resume token."""
        if self.faults is not None and not self.faults.paused:
            self.faults.paused = True
            return True
        return False

    def _resume_faults(self, token: bool) -> None:
        if token:
            self.faults.paused = False

    def _table_get(self, now: float, block_id: int) -> RemapEntry:
        """Access-path remap table read, with corruption detection.

        When the injector corrupts the read and the shadow checker is
        armed, the checker returns the shadow-true entry and the repaired
        entry is written back (one 2-byte metadata write, injection
        paused). Without a checker this configuration is rejected at
        config time — corruption would be a silent wrong result.
        """
        entry = self.remap_table.get(block_id)
        if (
            self.faults is not None
            and self.faults.active
            and self.faults.table_corruption()
        ):
            entry = self.checker.verified_get(block_id, entry, corrupted=True)
            token = self._pause_faults()
            try:
                self._bg_write(self.devices.fast, now, 2)
            finally:
                self._resume_faults(token)
            self.recovery.record("table_repairs", site="remap_table")
        return entry

    def _repair_remap_cache_line(self, super_id: int) -> bool:
        """Drop and refill a corrupted remap-cache line. Returns False:
        the access now pays the off-chip table probe, as any miss would.

        Delegates to :meth:`RemapCache.repair`, which fuses the old
        invalidate + fault-paused refill into one pass over the set (the
        columnar occupancy column replaces the re-probe); a paused access
        never consulted the injector, so no pause/resume is needed here.
        """
        self.remap_cache.repair(super_id)
        self.recovery.record("remap_cache_repairs", site="remap_cache")
        return False

    def _quarantined_serve(self, now: float, is_write: bool) -> AccessResult:
        """Degraded service for a poisoned super-block (always succeeds)."""
        self.recovery.record("quarantined_serves")
        token = self._pause_faults()
        try:
            return self._slow_direct(
                now, float(self.config.stage.tag_latency_cycles), is_write
            )
        finally:
            self._resume_faults(token)

    def _degraded(
        self, now: float, super_id: int, err: Exception, is_write: bool
    ) -> AccessResult:
        """Recovery exhausted (retries spent or corruption with no clean
        repair): quarantine the super-block and serve from slow memory.

        The cleanup — flushing staged data, evicting committed data back
        to slow memory, dropping cached metadata — runs with injection
        paused, so degradation itself cannot fault.
        """
        token = self._pause_faults()
        try:
            self._quarantine_super(now, super_id)
            kind = "corruption" if isinstance(err, CorruptionError) else "transient"
            self.recovery.record(
                f"degraded_{kind}", site=getattr(err, "site", None)
            )
            return self._slow_direct(
                now, float(self.config.stage.tag_latency_cycles), is_write
            )
        finally:
            self._resume_faults(token)

    def _quarantine_super(self, now: float, super_id: int) -> None:
        """Poison one super-block: flush its staged and committed data to
        slow memory and serve it slow-direct from now on."""
        if super_id in self._quarantined:
            return
        self._quarantined.add(super_id)
        self.recovery.record("quarantined_supers")
        set_index = self.stage.set_index_of(super_id)
        for way, _entry in list(self.stage.lookup_super(super_id)):
            self._evict_stage_block(now, set_index, way, super_id)
            self.recovery.record("stage_flushes")
        base = super_id * self.geometry.super_block_blocks
        for off in range(self.geometry.super_block_blocks):
            block_id = base + off
            if self.remap_table.get(block_id).is_remapped:
                self._evict_committed_logical_block(now, super_id, block_id, off)
            self._cf_hints.pop(block_id, None)
        self.remap_cache.invalidate(super_id)

    # ----------------------------------------------------------- case 1
    def _case1_stage_hit(
        self,
        now: float,
        meta: float,
        super_id: int,
        block_id: int,
        blk_off: int,
        sub_idx: int,
        line_idx: int,
        staged_sub: Tuple[int, StageTagEntry, int],
        is_write: bool,
    ) -> AccessResult:
        way, entry, slot_idx = staged_sub
        slot = entry.slots[slot_idx]
        assert slot is not None
        set_index = self.stage.set_index_of(super_id)
        self.stage.touch(set_index, way)
        prefetched: List[int] = []
        latency = meta
        overflow = False

        if slot.zero:
            # Zero data: nothing to read from the device.
            if is_write:
                overflow = self._stage_zero_write(
                    now, set_index, way, slot_idx, block_id, blk_off, sub_idx
                )
                access = self._dev_write(self.devices.fast,
                    now, self.geometry.cacheline_size, addr=block_id * self.geometry.block_size
                )
                latency += access.total_cycles
        elif is_write:
            access = self._dev_write(self.devices.fast,
                now, self.geometry.cacheline_size,
                addr=block_id * self.geometry.block_size + sub_idx * self.geometry.sub_block_size,
            )
            latency += access.total_cycles
            self.stage.mark_dirty(set_index, way, slot_idx)
            overflow = self._maybe_stage_overflow(
                now, set_index, way, slot_idx, block_id, blk_off, sub_idx
            )
        else:
            access = self._dev_read(self.devices.fast,
                now, self._demand_bytes(slot.cf),
                addr=block_id * self.geometry.block_size + sub_idx * self.geometry.sub_block_size,
            )
            latency += access.total_cycles
            if slot.cf > 1:
                latency += self._decomp_i
                prefetched = self._chunk_lines(
                    block_id, slot.sub_start, slot.cf, sub_idx, line_idx
                )
        return AccessResult(
            AccessCase.STAGE_HIT, latency, is_write, overflow, prefetched
        )

    def _maybe_stage_overflow(
        self,
        now: float,
        set_index: int,
        way: int,
        slot_idx: int,
        block_id: int,
        blk_off: int,
        sub_idx: int,
    ) -> bool:
        """Recompress after a stage write; reinsert split ranges on overflow."""
        entry = self.stage.entry(set_index, way)
        slot = entry.slots[slot_idx]
        assert slot is not None
        changed = self.oracle.note_write(block_id, sub_idx)
        if not changed or slot.cf == 1:
            return False
        if self.oracle.fits(
            block_id, slot.sub_start, slot.cf, self.config.compression.cacheline_aligned
        ):
            return False
        # Overflow: remove the range and reinsert it as freshly fetched
        # pieces (case 3 semantics) — data are already in fast memory.
        self._stats.inc("stage_write_overflows")
        removed = self.stage.remove_slot(set_index, way, slot_idx)
        super_id = self.stage.mapper.super_block_of(set_index, entry.tag)
        for piece in self._split_range(block_id, removed.sub_start, removed.cf):
            piece_slot = RangeSlot(
                cf=piece[1], dirty=True, blk_off=blk_off, sub_start=piece[0]
            )
            self._stage_insert(now, super_id, block_id, blk_off, piece_slot)
            self._bg_write(self.devices.fast, now, self.geometry.sub_block_size)
        return True

    def _stage_zero_write(
        self,
        now: float,
        set_index: int,
        way: int,
        slot_idx: int,
        block_id: int,
        blk_off: int,
        sub_idx: int,
    ) -> bool:
        """A write to a staged all-zero block breaks the Z encoding."""
        self._stats.inc("stage_zero_breaks")
        self.oracle.note_write(block_id, sub_idx)
        entry = self.stage.entry(set_index, way)
        self.stage.remove_slot(set_index, way, slot_idx)
        super_id = self.stage.mapper.super_block_of(set_index, entry.tag)
        cf = self.oracle.max_cf(
            block_id, sub_idx, self.config.compression.cacheline_aligned
        )
        start, _ = self.geometry.aligned_range(sub_idx, cf)
        slot = RangeSlot(cf=cf, dirty=True, blk_off=blk_off, sub_start=start)
        self._stage_insert(now, super_id, block_id, blk_off, slot)
        return True

    def _split_range(
        self, block_id: int, start: int, cf: int
    ) -> List[Tuple[int, int]]:
        """Split an overflowed range into pieces at their new maximal CFs."""
        pieces: List[Tuple[int, int]] = []
        ca = self.config.compression.cacheline_aligned
        sub = start
        while sub < start + cf:
            new_cf = self.oracle.max_cf(block_id, sub, ca)
            piece_start, length = self.geometry.aligned_range(sub, new_cf)
            # The piece must stay inside the data we actually hold, and
            # must really compress at its CF under the current contents.
            while new_cf > 1 and (
                piece_start < start
                or piece_start + length > start + cf
                or not self.oracle.fits(block_id, piece_start, new_cf, ca)
            ):
                new_cf //= 2
                piece_start, length = self.geometry.aligned_range(sub, new_cf)
            pieces.append((piece_start, new_cf))
            sub = piece_start + length
        return pieces

    # ----------------------------------------------------------- case 2
    def _case2_commit_hit(
        self,
        now: float,
        meta: float,
        super_id: int,
        block_id: int,
        blk_off: int,
        sub_idx: int,
        line_idx: int,
        entry: RemapEntry,
        is_write: bool,
    ) -> AccessResult:
        located = self.fast_area.find_block(super_id, blk_off)
        if located is None:
            raise SimulationError(
                f"remap entry points to fast memory but block {block_id} "
                "is not tracked in the fast area"
            )
        way, state = located
        set_index = self.fast_area.set_of_super(super_id)
        self.fast_area.touch(set_index, way)
        target_range = entry.range_of(sub_idx)
        assert target_range is not None
        start, cf = target_range
        prefetched: List[int] = []
        latency = meta
        overflow = False

        if entry.zero:
            if is_write:
                # Writing a committed all-zero block invalidates the Z
                # encoding: evict the whole logical block, write to slow.
                self._stats.inc("commit_zero_breaks")
                self.oracle.note_write(block_id, sub_idx)
                self._evict_committed_logical_block(now, super_id, block_id, blk_off)
                access = self._dev_write(self.devices.slow, now, self.geometry.cacheline_size)
                latency += access.total_cycles
                overflow = True
            return AccessResult(
                AccessCase.COMMIT_HIT, latency, is_write, overflow, prefetched
            )

        if is_write:
            access = self._dev_write(self.devices.fast,
                now, self.geometry.cacheline_size,
                addr=block_id * self.geometry.block_size + sub_idx * self.geometry.sub_block_size,
            )
            latency += access.total_cycles
            state.dirty_subs.add((blk_off, sub_idx))
            changed = self.oracle.note_write(block_id, sub_idx)
            if changed and cf > 1 and not self.oracle.fits(
                block_id, start, cf, self.config.compression.cacheline_aligned
            ):
                overflow = True
                self._stats.inc("commit_write_overflows")
                self._handle_commit_overflow(
                    now, super_id, block_id, blk_off, start, cf, set_index, way
                )
        else:
            access = self._dev_read(self.devices.fast,
                now, self._demand_bytes(cf),
                addr=block_id * self.geometry.block_size + sub_idx * self.geometry.sub_block_size,
            )
            latency += access.total_cycles
            if cf > 1:
                latency += self.config.compression.decompression_latency_cycles
                prefetched = self._chunk_lines(block_id, start, cf, sub_idx, line_idx)
        return AccessResult(
            AccessCase.COMMIT_HIT, latency, is_write, overflow, prefetched
        )

    def _handle_commit_overflow(
        self,
        now: float,
        super_id: int,
        block_id: int,
        blk_off: int,
        start: int,
        cf: int,
        set_index: int,
        way: int,
    ) -> None:
        """Rule 4 fallout: a committed range no longer fits its slot.

        If the range is the last slot of the physical block, only it is
        evicted; otherwise the sorted layout is invalidated and the whole
        physical block is evicted (Sec. III-D case 2).
        """
        state = self.fast_area.state(set_index, way)
        assert state is not None
        if self._range_is_last_slot(super_id, block_id, blk_off, start, way):
            self._evict_committed_range(now, super_id, block_id, blk_off, start, cf)
        else:
            self._evict_fast_block(now, set_index, way)

    def _range_is_last_slot(
        self, super_id: int, block_id: int, blk_off: int, start: int, way: int
    ) -> bool:
        """Is (blk_off, start) the last occupied slot of its physical block?"""
        base = super_id * self.geometry.super_block_blocks
        last_block: Optional[int] = None
        for off in range(self.geometry.super_block_blocks):
            e = self.remap_table.get(base + off)
            if e.is_remapped and not e.zero and e.pointer == way and e.occupied_slots():
                last_block = off
        if last_block != blk_off:
            return False
        entry = self.remap_table.get(block_id)
        ranges = entry.ranges()
        return bool(ranges) and ranges[-1][0] == start

    # ----------------------------------------------------------- case 3
    def _case3_stage_miss(
        self,
        now: float,
        meta: float,
        super_id: int,
        block_id: int,
        blk_off: int,
        sub_idx: int,
        line_idx: int,
        staged_block: Tuple[int, StageTagEntry],
        is_write: bool,
    ) -> AccessResult:
        set_index = self.stage.set_index_of(super_id)
        way, _entry = staged_block
        self.stage.record_block_miss(set_index, way)
        latency, prefetched = self._fetch_and_stage(
            now, meta, super_id, block_id, blk_off, sub_idx, line_idx, is_write
        )
        return AccessResult(AccessCase.STAGE_MISS, latency, is_write, False, prefetched)

    # ----------------------------------------------------------- case 4
    def _case4_commit_miss(self, now: float, meta: float, is_write: bool) -> AccessResult:
        size = self.geometry.cacheline_size
        if is_write:
            access = self._dev_write(self.devices.slow, now, size)
        else:
            access = self._dev_read(self.devices.slow, now, size, demand=True)
        return AccessResult(AccessCase.COMMIT_MISS, meta + access.total_cycles, is_write)

    def _slow_direct(self, now: float, meta: float, is_write: bool) -> AccessResult:
        """Serve from slow memory with no staging side effects."""
        size = self.geometry.cacheline_size
        if is_write:
            access = self._dev_write(self.devices.slow, now, size)
        else:
            access = self._dev_read(self.devices.slow, now, size, demand=True)
        return AccessResult(AccessCase.SLOW_DIRECT, meta + access.total_cycles, is_write)

    # ----------------------------------------------------------- case 5
    def _case5_block_miss(
        self,
        now: float,
        meta: float,
        super_id: int,
        block_id: int,
        blk_off: int,
        sub_idx: int,
        line_idx: int,
        is_write: bool,
    ) -> AccessResult:
        if not self.config.stage.enabled:
            return self._no_stage_miss(
                now, meta, super_id, block_id, blk_off, sub_idx, line_idx, is_write
            )
        set_index = self.stage.set_index_of(super_id)
        self.stage.record_block_miss(set_index, None)
        latency, prefetched = self._fetch_and_stage(
            now, meta, super_id, block_id, blk_off, sub_idx, line_idx, is_write
        )
        if self.tracker is not None:
            self.tracker.block_staged(block_id)
        return AccessResult(AccessCase.BLOCK_MISS, latency, is_write, False, prefetched)

    # --------------------------------------------------- flat-scheme homes
    def _is_home_block(self, block_id: int) -> bool:
        """Flat scheme: is this block's OS home a fast block space?"""
        if self._flat_blocks == 0 or block_id % self._home_period != 0:
            return False
        return block_id // self._home_period < self._flat_blocks

    def _is_fast_home(self, block_id: int) -> bool:
        """Home-fast *and* currently resident (not displaced by a commit)."""
        return self._is_home_block(block_id) and block_id not in self._displaced

    def _home_location(self, block_id: int) -> Tuple[int, int]:
        """(set, way) of a home-fast block's space."""
        index = block_id // self._home_period
        return index % self.fast_area.num_sets, index // self.fast_area.num_sets

    def _home_block_of(self, set_index: int, way: int) -> Optional[int]:
        """Inverse of :meth:`_home_location` for flat ways."""
        if way >= self._flat_ways:
            return None
        index = way * self.fast_area.num_sets + set_index
        if index >= self._flat_blocks:
            return None
        return index * self._home_period

    def _fast_home_access(
        self, now: float, meta: float, block_id: int, is_write: bool
    ) -> AccessResult:
        size = self.geometry.cacheline_size
        if is_write:
            access = self._dev_write(self.devices.fast, now, size, addr=block_id * self.geometry.block_size)
        else:
            access = self._dev_read(self.devices.fast, now, size, addr=block_id * self.geometry.block_size)
        self._home_stamps[block_id] = self.fast_area.next_stamp()
        return AccessResult(AccessCase.FAST_HOME, meta + access.total_cycles, is_write)

    def _commit_victim_way(self, fa_set: int) -> Tuple[int, Optional[FastBlockState]]:
        """Pick the fast block space a commit should take.

        Low-associative sets scan their few ways for the coldest candidate
        across committed blocks (replacement stamp) and resident home
        blocks (last-access stamp), so a hot OS-resident block is not
        displaced in favour of lukewarm migrated data. Fully-associative
        organizations use the paper's FIFO policy (Sec. III-E) via a
        cycling pointer.
        """
        if self.config.layout.fully_associative:
            way = self._fa_next_victim()
            self._fa_victim_ptr = way + 1
            return way, self.fast_area.state(fa_set, way)
        return self._coldest_way(fa_set)

    def _fa_next_victim(self) -> int:
        """FIFO victim for the fully-associative organization.

        The pointer cycles over the cache-area ways; OS-resident home
        blocks are only displaced when the configuration provisions no
        cache section at all (flat_fraction = 1).
        """
        ways = self.fast_area.ways
        first = self._flat_ways if self._flat_ways < ways else 0
        span = ways - first
        return first + (max(0, self._fa_victim_ptr - first)) % span

    def _peek_commit_victim(self, fa_set: int) -> Tuple[int, Optional[FastBlockState]]:
        """Like :meth:`_commit_victim_way` but with no side effects (the
        FA FIFO pointer must not advance for a mere cost-model peek)."""
        if self.config.layout.fully_associative:
            way = self._fa_next_victim()
            return way, self.fast_area.state(fa_set, way)
        return self._coldest_way(fa_set)

    def _coldest_way(self, fa_set: int) -> Tuple[int, Optional[FastBlockState]]:
        best_way, best_stamp, best_state = None, None, None
        for way in range(self.fast_area.ways):
            state = self.fast_area.state(fa_set, way)
            if state is None:
                home = self._home_block_of(fa_set, way)
                if home is None:
                    return way, None  # free cache-area way
                stamp = self._home_stamps.get(home, 0)
            else:
                stamp = state.stamp
            if best_stamp is None or stamp < best_stamp:
                best_way, best_stamp, best_state = way, stamp, state
        if best_way is None:
            raise SimulationError("fast area has no ways")
        return best_way, best_state

    # ------------------------------------------------------- fetch + stage
    def _fetch_and_stage(
        self,
        now: float,
        meta: float,
        super_id: int,
        block_id: int,
        blk_off: int,
        sub_idx: int,
        line_idx: int,
        is_write: bool,
    ) -> Tuple[float, List[int]]:
        """Cases 3/5: fetch from slow memory, respond, stage in background."""
        g = self.geometry
        existing = self._staged_block_of(super_id, block_id, blk_off)

        # All-zero block: the Z encoding stages the whole block for free
        # (only on the first fetch of the block, which covers it entirely).
        if (
            existing is None
            and self._zero_support
            and self.oracle.is_zero(block_id, 0, g.sub_blocks_per_block)
        ):
            slot = RangeSlot(cf=1, dirty=is_write, blk_off=blk_off, zero=True)
            self._stage_insert(now, super_id, block_id, blk_off, slot, existing)
            self._stats.inc("zero_block_stages")
            return meta, []

        start, cf, compressed = self._choose_fetch_range(block_id, blk_off, sub_idx)
        # Avoid refetching sub-blocks this block already has staged.
        if existing is not None:
            _, entry = existing
            staged_subs = {
                s
                for slot in entry.slots
                if slot is not None and slot.blk_off == blk_off
                for s in slot.sub_blocks
            }
            while cf > 1 and any(
                s in staged_subs for s in range(start, start + cf)
            ):
                cf //= 2
                start, _ = g.aligned_range(sub_idx, cf)
                compressed = False

        # Demand chunk first (one 64 B transfer; the whole compressed slot
        # when cacheline-aligned compression is disabled).
        demand_bytes = self._demand_bytes(cf) if compressed else g.cacheline_size
        demand = self._dev_read(self.devices.slow, now, demand_bytes, demand=True)
        latency = meta + demand.total_cycles
        prefetched: List[int] = []
        if compressed:
            latency += self.config.compression.decompression_latency_cycles
            prefetched = self._chunk_lines(block_id, start, cf, sub_idx, line_idx)
            fetch_bytes = g.sub_block_size
        else:
            fetch_bytes = cf * g.sub_block_size
        # Background: the rest of the range, plus the stage-area fill.
        rest = max(0, fetch_bytes - demand_bytes)
        if rest:
            self._bg_read(self.devices.slow, now, rest)
        self._bg_write(self.devices.fast, now, g.sub_block_size)
        if self._h_fetch_subs is not None:
            self._h_fetch_subs.observe(cf)
            self._h_fetch_bytes.observe(fetch_bytes)

        slot = RangeSlot(cf=cf, dirty=is_write, blk_off=blk_off, sub_start=start)
        self._stage_insert(now, super_id, block_id, blk_off, slot, existing)
        if is_write:
            self.oracle.note_write(block_id, sub_idx)
        return latency, prefetched

    def _choose_fetch_range(
        self, block_id: int, blk_off: int, sub_idx: int
    ) -> Tuple[int, int, bool]:
        """Pick the maximal compressible aligned range around ``sub_idx``.

        Returns ``(start, cf, compressed)``; ``compressed`` means the data
        are already stored compressed in slow memory (CF hint present after
        a compressed writeback), so the fetch itself moves fewer bytes.
        """
        g = self.geometry
        ca = self._ca
        hint = self._cf_hints.get(block_id)
        if hint is not None and self._cwb:
            cf2, cf4, _zero = hint
            quad = sub_idx // 4
            if (cf4 >> quad) & 1:
                return quad * 4, 4, True
            pair = sub_idx // 2
            if (cf2 >> pair) & 1:
                return pair * 2, 2, True
        if self._compression_skipped(block_id):
            return sub_idx, 1, False
        cf = self.oracle.max_cf(block_id, sub_idx, ca)
        start, _ = g.aligned_range(sub_idx, cf)
        return start, cf, False

    def _compression_skipped(self, block_id: int) -> bool:
        """Selective compression (future-work extension): skip regions
        whose expected CF is too low to pay for the decompression latency
        and overflow risk."""
        comp = self.config.compression
        if not comp.selective:
            return False
        profile_of = getattr(self.oracle, "profile_of", None)
        if profile_of is None:
            return False
        expected = profile_of(block_id).expected_cf(comp.cacheline_aligned)
        if expected >= comp.selective_threshold:
            return False
        self._stats.inc("compression_skips")
        return True

    def _chunk_lines(
        self, block_id: int, range_start: int, cf: int, sub_idx: int, line_idx: int
    ) -> List[int]:
        """Cachelines sharing the demanded 64 B compressed chunk (Fig. 7).

        With cacheline-aligned compression the chunk holds ``cf``
        consecutive cachelines; without it the whole range must be fetched
        and decompressed, so every line of the range arrives (bandwidth
        waste + LLC pollution, the Fig. 12 w/o-CA penalty).
        """
        g = self.geometry
        if cf <= 1:
            return []
        base = block_id * g.block_size + range_start * g.sub_block_size
        lines_per_sub = g.cachelines_per_sub_block
        demanded = (sub_idx - range_start) * lines_per_sub + line_idx
        if self.config.compression.cacheline_aligned:
            chunk = demanded // cf
            indices = range(chunk * cf, chunk * cf + cf)
        else:
            indices = range(cf * lines_per_sub)
        return [
            base + i * g.cacheline_size for i in indices if i != demanded
        ]

    def _demand_bytes(self, cf: int) -> int:
        """Bytes the critical-path transfer must move for one demand read.

        Cacheline-aligned compression keeps this at 64 B regardless of CF;
        without it a compressed slot has unknown internal boundaries and
        the whole slot must be fetched before decompression (Fig. 7 left).
        """
        if cf <= 1 or self.config.compression.cacheline_aligned:
            return self.geometry.cacheline_size
        return self.geometry.sub_block_size

    # ------------------------------------------------------- stage insertion
    def _stage_insert(
        self,
        now: float,
        super_id: int,
        block_id: int,
        blk_off: int,
        new_slot: RangeSlot,
        bound: Optional[Tuple[int, StageTagEntry]] = _UNRESOLVED,
    ) -> None:
        """Insert one range into the stage area (two-level replacement).

        Implements the Fig. 8 heuristic: Rule 3 binds a block's ranges to
        one physical block; when that block is full we FIFO-replace inside
        it if it is the set's LRU (or the two-level policy is disabled),
        and otherwise allocate a fresh physical block via a block-level
        replacement, regrouping the data block's existing ranges into it.
        """
        set_index = self.stage.set_index_of(super_id)
        if bound is _UNRESOLVED:
            bound = self._staged_block_of(super_id, block_id, blk_off)
        if bound is not None:
            way, entry = bound
            if entry.free_slot() is not None:
                self.stage.insert_range(set_index, way, new_slot)
                self.stage.touch(set_index, way)
                return
            owns_whole_block = len(entry.slots_of_block(blk_off)) >= len(entry.slots)
            if (
                not self._two_level
                or self.stage.is_lru(set_index, way)
                or owns_whole_block
            ):
                self._sub_block_replace(now, set_index, way, super_id)
                self.stage.insert_range(set_index, way, new_slot)
                self.stage.touch(set_index, way)
                return
            # Block-level move: free a way, regroup this data block there.
            self._block_level_replace(now, set_index, protect_way=way)
            allocated = self.stage.allocate(super_id)
            if allocated is None:
                raise SimulationError("block-level replacement freed no way")
            _, new_way = allocated
            moved = 0
            for slot_idx in list(
                self.stage.entry(set_index, way).slots_of_block(blk_off)
            ):
                slot = self.stage.remove_slot(set_index, way, slot_idx)
                self.stage.insert_range(set_index, new_way, slot)
                moved += 1
            if not self.stage.entry(set_index, way).occupancy():
                self.stage.invalidate(set_index, way)
            # Fast-to-fast regrouping traffic.
            move_bytes = moved * self.geometry.sub_block_size
            self._bg_read(self.devices.fast, now, move_bytes)
            self._bg_write(self.devices.fast, now, move_bytes)
            self._stats.inc("stage_regroup_moves")
            self.stage.insert_range(set_index, new_way, new_slot)
            self.stage.touch(set_index, new_way)
            return

        candidates = self.stage.lookup_super(super_id)
        if not self._share_phys:
            # Traditional sub-blocking: a physical block serves one logical
            # block only, so other blocks' stage ways are not candidates.
            candidates = []
        with_room = [(w, e) for w, e in candidates if e.free_slot() is not None]
        if with_room:
            way, _ = self._rng.choice(with_room)
            if len(candidates) > 1:
                self._stats.inc("multi_block_super_stages")
            self.stage.insert_range(set_index, way, new_slot)
            self.stage.touch(set_index, way)
            return
        if candidates:
            lru_full = [
                w for w, _ in candidates if self.stage.is_lru(set_index, w)
            ]
            if lru_full or not self._two_level:
                way = lru_full[0] if lru_full else self._rng.choice(candidates)[0]
                self._sub_block_replace(now, set_index, way, super_id)
                self.stage.insert_range(set_index, way, new_slot)
                self.stage.touch(set_index, way)
                return
            self._block_level_replace(now, set_index)
            allocated = self.stage.allocate(super_id)
            if allocated is None:
                raise SimulationError("block-level replacement freed no way")
            _, way = allocated
            self.stage.insert_range(set_index, way, new_slot)
            self.stage.touch(set_index, way)
            return

        allocated = self.stage.allocate(super_id)
        if allocated is None:
            self._block_level_replace(now, set_index)
            allocated = self.stage.allocate(super_id)
            if allocated is None:
                raise SimulationError("stage allocation failed after replacement")
        _, way = allocated
        self.stage.insert_range(set_index, way, new_slot)
        self.stage.touch(set_index, way)

    def _sub_block_replace(
        self, now: float, set_index: int, way: int, super_id: int
    ) -> None:
        """FIFO-evict one range from a full stage block to slow memory."""
        slot_idx = self.stage.fifo_victim_slot(set_index, way)
        slot = self.stage.remove_slot(set_index, way, slot_idx)
        self._writeback_stage_slot(now, set_index, super_id, slot)
        self._stats.inc("sub_block_replacements")

    def _writeback_stage_slot(
        self, now: float, set_index: int, super_id: int, slot: RangeSlot
    ) -> None:
        """Evict one staged range back to slow memory.

        Clean data are dropped (the slow copy is intact in both schemes —
        staged data are copies until committed); dirty data are written,
        compressed when the optimization is on, and leave CF hints.
        """
        if slot.zero:
            return
        block_id = (
            super_id * self.geometry.super_block_blocks + slot.blk_off
        )
        if slot.dirty:
            if self.config.compressed_writeback:
                nbytes = self.geometry.sub_block_size
                self._record_hint(block_id, slot)
            else:
                nbytes = slot.cf * self.geometry.sub_block_size
            self._bg_read(self.devices.fast, now, nbytes)
            self._bg_write(self.devices.slow, now, nbytes)
            self._stats.inc("stage_dirty_writebacks")
            if self.obs.enabled:
                self.obs.emit(
                    "writeback", block=block_id, bytes=nbytes, kind="stage_dirty"
                )

    def _record_hint(self, block_id: int, slot: RangeSlot) -> None:
        cf2, cf4, zero = self._cf_hints.get(block_id, (0, 0, False))
        if slot.cf == 2:
            cf2 |= 1 << (slot.sub_start // 2)
        elif slot.cf == 4:
            cf4 |= 1 << (slot.sub_start // 4)
        self._cf_hints[block_id] = (cf2, cf4, zero)

    # ------------------------------------------------- block-level replacement
    def _block_level_replace(
        self, now: float, set_index: int, protect_way: Optional[int] = None
    ) -> None:
        """Evict or commit the stage set's LRU block (selective commit)."""
        victim_way = self.stage.lru_way(set_index)
        if victim_way is None:
            raise SimulationError("block-level replacement on an empty set")
        if victim_way == protect_way:
            # The LRU way is the one we must keep: take the next-LRU.
            ranked = sorted(
                (
                    (self.stage.entry(set_index, w).lru, w)
                    for w in range(self.stage.ways)
                    if self.stage.entry(set_index, w).valid and w != protect_way
                ),
            )
            if not ranked:
                raise SimulationError("no replaceable stage way")
            victim_way = ranked[0][1]
        entry = self.stage.entry(set_index, victim_way)
        super_id = self.stage.mapper.super_block_of(set_index, entry.tag)
        fa_set = self.fast_area.set_of_super(super_id)
        target_way, prospective = self._peek_commit_victim(fa_set)
        if prospective is None:
            # Displacing a resident home block swaps all of its sub-blocks.
            is_home = self._home_block_of(fa_set, target_way) is not None
            dirty_area = self.geometry.sub_blocks_per_block if is_home else 0
        elif target_way < self._flat_ways:
            # Flat area: every sub-block is swapped regardless of dirtiness.
            dirty_area = sum(
                self.remap_table.get(
                    prospective.super_id * self.geometry.super_block_blocks + off
                ).dirty_like_count()
                for off in prospective.committed
            )
        else:
            dirty_area = prospective.dirty_count()
        decision = self.policy.decide(
            mru_miss_cnt=self.stage.mru_miss_cnt[set_index],
            associativity=self.stage.ways,
            victim_miss_cnt=entry.miss_count,
            dirty_stage=entry.dirty_sub_block_count(),
            dirty_area=dirty_area,
            quarantined=super_id in self._quarantined,
        )
        if decision.commit:
            self._commit_stage_block(now, set_index, victim_way, super_id)
        else:
            self._evict_stage_block(now, set_index, victim_way, super_id)
        self._stats.inc("block_level_replacements")

    def _evict_stage_block(
        self, now: float, set_index: int, way: int, super_id: int
    ) -> None:
        """Put a stage victim back to slow memory (not committed)."""
        entry = self.stage.entry(set_index, way)
        blocks = entry.blocks_present()
        for slot in entry.slots:
            if slot is not None:
                self._writeback_stage_slot(now, set_index, super_id, slot)
        self.stage.invalidate(set_index, way)
        self._stats.inc("stage_evictions")
        if self.tracker is not None:
            base = super_id * self.geometry.super_block_blocks
            for blk_off in blocks:
                self.tracker.block_unstaged(base + blk_off, committed=False)

    # --------------------------------------------------------------- commit
    def _commit_stage_block(
        self, now: float, set_index: int, way: int, super_id: int
    ) -> None:
        """Promote a stage block into the cache/flat area (Rule 4 freeze)."""
        entry = self.stage.entry(set_index, way)
        fa_set = self.fast_area.set_of_super(super_id)
        target_way, occupant = self._commit_victim_way(fa_set)
        if occupant is not None:
            self._evict_fast_block(now, fa_set, target_way, for_commit=True)
        displaced = self._displace_home(now, fa_set, target_way)

        base = super_id * self.geometry.super_block_blocks
        state = FastBlockState(super_id=super_id, displaced_home=displaced)
        for blk_off in entry.blocks_present():
            block_id = base + blk_off
            remap, cf2, cf4, zero, dirties = self._slots_to_remap(entry, blk_off)
            new_entry = RemapEntry(
                remap=remap, pointer=target_way, cf2=cf2, cf4=cf4, zero=zero,
                num_subs=self.geometry.sub_blocks_per_block,
            )
            self.remap_table.set(block_id, new_entry)
            self._cf_hints.pop(block_id, None)
            occupied = new_entry.occupied_slots()
            state.committed[blk_off] = occupied
            state.slots_used += occupied
            for sub in dirties:
                state.dirty_subs.add((blk_off, sub))
            if self.tracker is not None:
                self.tracker.block_unstaged(block_id, committed=True)
        self.fast_area.install(fa_set, target_way, state)
        # Commit data movement: stage block -> cache/flat area block.
        move = state.slots_used * self.geometry.sub_block_size
        if move:
            self._bg_read(self.devices.fast, now, move)
            self._bg_write(self.devices.fast, now, move)
        snapshot = self.stage.invalidate(set_index, way)
        self._stats.inc("commits")
        if self.checker is not None:
            self.checker.check_commit(
                super_id,
                table=self.remap_table,
                stage=self.stage,
                fa_state=state,
                snapshot=snapshot,
                blocks_per_super=self.geometry.super_block_blocks,
                slots_per_block=self.geometry.sub_blocks_per_block,
            )

    def _slots_to_remap(
        self, entry: StageTagEntry, blk_off: int
    ) -> Tuple[int, int, int, bool, List[int]]:
        """Translate a block's stage slots into remap-entry fields."""
        n = self.geometry.sub_blocks_per_block
        remap, cf2, cf4 = 0, 0, 0
        zero = False
        dirties: List[int] = []
        for slot in entry.slots:
            if slot is None or slot.blk_off != blk_off:
                continue
            if slot.zero:
                zero = True
                remap = (1 << n) - 1
                if slot.dirty:
                    dirties.extend(range(n))
                continue
            for sub in slot.sub_blocks:
                remap |= 1 << sub
                if slot.dirty:
                    dirties.append(sub)
            if slot.cf == 2:
                cf2 |= 1 << (slot.sub_start // 2)
            elif slot.cf == 4:
                cf4 |= 1 << (slot.sub_start // 4)
        if zero:
            cf2, cf4 = 0, 0
        return remap, cf2, cf4, zero, dirties

    def _displace_home(self, now: float, fa_set: int, way: int) -> Optional[int]:
        """Flat scheme: spread-swap the home block out of a flat way.

        When the home is already displaced (the previous occupant was just
        slow-swapped away for this commit), only the bookkeeping carries
        over — the data already sit in slow memory.
        """
        home = self._home_block_of(fa_set, way)
        if home is None:
            return None
        if home in self._displaced:
            return home
        # Spread the original 2 kB into the freed slow sub-block spaces.
        size = self.geometry.block_size
        self._bg_read(self.devices.fast, now, size)
        self._bg_write(self.devices.slow, now, size)
        self._displaced[home] = (fa_set, way)
        self._stats.inc("home_displacements")
        return home

    def _home_displaced_at(self, fa_set: int, way: int) -> Optional[int]:
        home = self._home_block_of(fa_set, way)
        if home is not None and self._displaced.get(home) == (fa_set, way):
            return home
        return None

    def _restore_home(self, now: float, fa_set: int, way: int) -> None:
        """Flat scheme: bring a displaced home block back to its space."""
        home = self._home_displaced_at(fa_set, way)
        if home is None:
            return
        size = self.geometry.block_size
        self._bg_read(self.devices.slow, now, size)
        self._bg_write(self.devices.fast, now, size)
        del self._displaced[home]
        self._stats.inc("home_restores")

    # -------------------------------------------------------------- eviction
    def _evict_fast_block(
        self, now: float, set_index: int, way: int, for_commit: bool = False
    ) -> None:
        """Evict one committed physical block entirely.

        Cache scheme: write back dirty data, drop the clean copies.
        Flat scheme: all committed data return to their original slow
        locations (migration undo). When the eviction makes room for a new
        commit (``for_commit``), the displaced home block *stays* in slow
        memory — its spread content is only shuffled into the just-vacated
        sub-block spaces (the three-way slow swap, Sec. III-F). Otherwise
        the home block is restored to its space.
        """
        state = self.fast_area.state(set_index, way)
        if state is None:
            return
        base = state.super_id * self.geometry.super_block_blocks
        is_flat_way = way < self._flat_ways
        g = self.geometry
        for blk_off, slots in state.committed.items():
            block_id = base + blk_off
            entry = self.remap_table.get(block_id)
            if is_flat_way:
                # Migrated data must all go back (slow swap step 2).
                nbytes = (
                    slots * g.sub_block_size
                    if self.config.compressed_writeback
                    else entry.dirty_like_count() * g.sub_block_size
                )
                if nbytes:
                    self._bg_read(self.devices.fast, now, nbytes)
                    self._bg_write(self.devices.slow, now, nbytes)
                    if self.obs.enabled:
                        self.obs.emit(
                            "writeback", block=block_id, bytes=nbytes,
                            kind="flat_undo",
                        )
            else:
                dirty_subs = {
                    s for b, s in state.dirty_subs if b == blk_off
                }
                if dirty_subs:
                    if self.config.compressed_writeback:
                        dirty_ranges = {
                            entry.range_of(s) for s in dirty_subs
                        } - {None}
                        nbytes = len(dirty_ranges) * g.sub_block_size
                    else:
                        nbytes = len(dirty_subs) * g.sub_block_size
                    self._bg_read(self.devices.fast, now, nbytes)
                    self._bg_write(self.devices.slow, now, nbytes)
                    self._stats.inc("commit_dirty_writebacks")
                    if self.obs.enabled:
                        self.obs.emit(
                            "writeback", block=block_id, bytes=nbytes,
                            kind="commit_dirty",
                        )
            if self.config.compressed_writeback and not entry.zero:
                self._cf_hints[block_id] = (entry.cf2, entry.cf4, False)
            self.remap_table.clear(block_id)
        if is_flat_way and self._home_displaced_at(set_index, way) is not None:
            if for_commit:
                # Slow swap step 1: shuffle the spread original content
                # into the spaces just vacated; the home stays displaced
                # because a new block commits into its space right away.
                self._bg_read(self.devices.slow, now, g.block_size)
                self._bg_write(self.devices.slow, now, g.block_size)
                self._stats.inc("slow_swaps")
            else:
                self._restore_home(now, set_index, way)
        self.fast_area.remove(set_index, way)
        self._stats.inc("fast_block_evictions")

    def _evict_committed_range(
        self, now: float, super_id: int, block_id: int, blk_off: int, start: int, cf: int
    ) -> None:
        """Evict only the last range of a committed block (overflow case)."""
        located = self.fast_area.find_block(super_id, blk_off)
        if located is None:
            return
        way, state = located
        entry = self.remap_table.get(block_id)
        remap = entry.remap
        cf2, cf4 = entry.cf2, entry.cf4
        for sub in range(start, start + cf):
            remap &= ~(1 << sub)
            state.dirty_subs.discard((blk_off, sub))
        if cf == 2:
            cf2 &= ~(1 << (start // 2))
        elif cf == 4:
            cf4 &= ~(1 << (start // 4))
        nbytes = self.geometry.sub_block_size * (
            1 if self.config.compressed_writeback else cf
        )
        self._bg_read(self.devices.fast, now, nbytes)
        self._bg_write(self.devices.slow, now, nbytes)
        new_entry = RemapEntry(
            remap=remap, pointer=way, cf2=cf2, cf4=cf4,
            num_subs=self.geometry.sub_blocks_per_block,
        )
        self.remap_table.set(block_id, new_entry)
        state.committed[blk_off] = new_entry.occupied_slots()
        state.slots_used -= 1
        if new_entry.remap == 0:
            state.committed.pop(blk_off, None)
            if not state.committed:
                set_index = self.fast_area.set_of_super(super_id)
                self._restore_home(now, set_index, way)
                self.fast_area.remove(set_index, way)
        self._stats.inc("committed_range_evictions")

    def _evict_committed_logical_block(
        self, now: float, super_id: int, block_id: int, blk_off: int
    ) -> None:
        """Evict one whole logical block's committed data (zero-break)."""
        located = self.fast_area.find_block(super_id, blk_off)
        if located is None:
            return
        way, state = located
        entry = self.remap_table.get(block_id)
        if not entry.zero:
            nbytes = entry.occupied_slots() * self.geometry.sub_block_size
            if nbytes:
                self._bg_read(self.devices.fast, now, nbytes)
                self._bg_write(self.devices.slow, now, nbytes)
        self.remap_table.clear(block_id)
        state.slots_used -= state.committed.pop(blk_off, 0)
        state.dirty_subs = {
            (b, s) for (b, s) in state.dirty_subs if b != blk_off
        }
        if not state.committed:
            set_index = self.fast_area.set_of_super(super_id)
            self._restore_home(now, set_index, way)
            self.fast_area.remove(set_index, way)

    # ------------------------------------------------------- no-stage path
    def _no_stage_miss(
        self,
        now: float,
        meta: float,
        super_id: int,
        block_id: int,
        blk_off: int,
        sub_idx: int,
        line_idx: int,
        is_write: bool,
    ) -> AccessResult:
        """Fig. 13(c) ablation: no stage area.

        Every fetched range goes straight into the committed area. Because
        the compact remap format is sorted and dense, each insertion into
        an existing physical block re-sorts the whole block layout: a full
        fast-memory read + write of the block, on top of the slow fetch.
        """
        g = self.geometry
        entry = self.remap_table.get(block_id)
        start, cf, compressed = self._choose_fetch_range(block_id, blk_off, sub_idx)
        # Never refetch sub-blocks the block already holds in fast memory.
        while cf > 1 and any(
            entry.sub_block_remapped(s) for s in range(start, start + cf)
        ):
            cf //= 2
            start, _ = g.aligned_range(sub_idx, cf)
            compressed = False
        demand_bytes = self._demand_bytes(cf) if compressed else g.cacheline_size
        demand = self._dev_read(self.devices.slow, now, demand_bytes, demand=True)
        latency = meta + demand.total_cycles
        prefetched: List[int] = []
        if compressed:
            latency += self.config.compression.decompression_latency_cycles
            prefetched = self._chunk_lines(block_id, start, cf, sub_idx, line_idx)
            fetch_bytes = g.sub_block_size
        else:
            fetch_bytes = cf * g.sub_block_size
        rest = max(0, fetch_bytes - demand_bytes)
        if rest:
            self._bg_read(self.devices.slow, now, rest)

        fa_set = self.fast_area.set_of_super(super_id)
        if entry.is_remapped:
            # Rule 3: the block's data already live at entry.pointer.
            located = self.fast_area.find_block(super_id, blk_off)
            if located is None:
                raise SimulationError("remapped block missing from fast area")
            way, state = located
            if state.slots_used >= g.sub_blocks_per_block:
                # No room in the frozen layout: evict the physical block
                # and start this logical block over in a fresh space.
                self._evict_fast_block(now, fa_set, way)
                entry = self.remap_table.get(block_id)
                located = None
        else:
            located = None
        if entry.is_remapped and located is not None:
            way, state = located
        else:
            way, occupant = self._commit_victim_way(fa_set)
            if occupant is not None:
                self._evict_fast_block(now, fa_set, way, for_commit=True)
            displaced = self._displace_home(now, fa_set, way)
            state = FastBlockState(super_id=super_id, displaced_home=displaced)
            self.fast_area.install(fa_set, way, state)
        # Re-sort penalty: rewrite the whole physical block layout.
        resort = state.slots_used * g.sub_block_size
        if resort:
            self._bg_read(self.devices.fast, now, resort)
            self._bg_write(self.devices.fast, now, resort)
            self._stats.inc("layout_resorts")
        self._bg_write(self.devices.fast, now, g.sub_block_size)

        remap, cf2, cf4 = entry.remap, entry.cf2, entry.cf4
        if entry.remap == 0:
            cf2, cf4 = 0, 0  # drop hint state when materializing
        for sub in range(start, start + cf):
            remap |= 1 << sub
        if cf == 2:
            cf2 |= 1 << (start // 2)
        elif cf == 4:
            cf4 |= 1 << (start // 4)
        self.remap_table.set(
            block_id,
            RemapEntry(
                remap=remap, pointer=way, cf2=cf2, cf4=cf4,
                num_subs=self.geometry.sub_blocks_per_block,
            ),
        )
        state.committed[blk_off] = state.committed.get(blk_off, 0) + 1
        state.slots_used += 1
        if is_write:
            state.dirty_subs.add((blk_off, sub_idx))
            self.oracle.note_write(block_id, sub_idx)
        self.fast_area.touch(fa_set, way)
        return AccessResult(AccessCase.BLOCK_MISS, latency, is_write, False, prefetched)

    # ------------------------------------------------------------ reporting
    def serve_rate(self) -> float:
        accesses = self.stats.get("accesses")
        return self.stats.get("served_fast") / accesses if accesses else 0.0

    def storage_report(self) -> Dict[str, int]:
        """On-chip/off-chip metadata budgets (Table I / Sec. III-B claims)."""
        return {
            "stage_tag_array_bytes": self.stage.storage_bytes(),
            "remap_cache_bytes": self.remap_cache.storage_bytes(),
            "remap_table_bytes": self.config.remap_table_bytes(),
        }
