"""Selective commit policy: the stability-aware cost model of Eq. 1.

When a block-level replacement evicts a stage-area victim, Baryon chooses
between *committing* it (promote into the cache/flat area, displacing that
area's own victim) and *evicting* it back to slow memory. The benefit of
committing is

    B = k * (MRUMissCnt / assoc - MissCnt) + (#Dirty_stage - #Dirty_area)

The first term is the expected miss saving: ``MRUMissCnt / assoc``
estimates the miss rate of a just-staged block (i.e. what this block would
suffer if *not* committed and re-fetched later), while its own ``MissCnt``
— aged so it reflects the recent end of the stage phase — estimates the
misses it would still produce after commit. The second term is Hybrid2's
write-traffic cost: dirty sub-blocks the two candidate victims would write
back. ``k = 0`` degenerates to Hybrid2's policy, ``k = inf`` to stability
only; the paper finds k slightly above 1 (default 4) best because writes
are off the critical path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import CommitConfig
from repro.common.stats import CounterGroup
from repro.obs.tracer import NULL_TRACER


@dataclass(frozen=True)
class CommitDecision:
    """The decision and the inputs that produced it (for tests/analysis)."""

    commit: bool
    benefit: float
    stability_term: float
    dirty_term: float


class CommitPolicy:
    """Evaluates Eq. 1 for a stage-area victim block."""

    def __init__(self, config: CommitConfig | None = None) -> None:
        self.config = config or CommitConfig()
        self.stats = CounterGroup("commit_policy")
        #: Observability hook point; see :mod:`repro.obs`.
        self.obs = NULL_TRACER

    def decide(
        self,
        mru_miss_cnt: int,
        associativity: int,
        victim_miss_cnt: int,
        dirty_stage: int,
        dirty_area: int,
        quarantined: bool = False,
    ) -> CommitDecision:
        """Apply Eq. 1; ``commit`` is True when B >= 0.

        ``dirty_area`` is the dirty-sub-block count of the cache/flat-area
        block that committing would displace; for the flat area all
        sub-blocks count as dirty because a swap moves them regardless.

        ``quarantined`` vetoes the cost model entirely: a super-block the
        recovery layer has poisoned must never be promoted into the
        committed area, whatever Eq. 1 says — it is evicted to slow
        memory, where degraded service is safe.
        """
        stability = mru_miss_cnt / max(1, associativity) - victim_miss_cnt
        dirty = float(dirty_stage - dirty_area)
        if quarantined:
            self.stats.inc("evictions")
            self.stats.inc("quarantine_vetoes")
            decision = CommitDecision(False, float("-inf"), stability, dirty)
        elif self.config.commit_all:
            self.stats.inc("commits")
            decision = CommitDecision(True, float("inf"), stability, dirty)
        else:
            k = self.config.effective_k()
            if k == float("inf"):
                benefit = stability
            else:
                benefit = k * stability + dirty
            commit = benefit >= 0
            self.stats.inc("commits" if commit else "evictions")
            decision = CommitDecision(commit, benefit, stability, dirty)
        if self.obs.enabled:
            self.obs.emit(
                "commit_decision",
                commit=decision.commit, benefit=decision.benefit,
                stability=decision.stability_term, dirty=decision.dirty_term,
                mru_miss_cnt=mru_miss_cnt, victim_miss_cnt=victim_miss_cnt,
                dirty_stage=dirty_stage, dirty_area=dirty_area,
            )
        return decision
