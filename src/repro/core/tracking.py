"""Instrumentation for the stage-phase experiments (Fig. 3 and Fig. 4).

:class:`StagePhaseTracker` records, per logical block, its current stage
phase (from first staging to commit/eviction) and classifies every access
as S (block currently staged) or C (block currently committed), with the
outcome types the paper plots: read/write hit, read/write miss, and write
overflow. For Fig. 4 it keeps per-phase miss timelines of a sample of
blocks and bins them over normalized phase time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.common.stats import OnlineStats


@dataclass
class _Phase:
    """One block's in-progress stage phase."""

    start_access: int
    #: (access_index, was_miss) events against this block during the phase.
    events: List[Tuple[int, bool]] = field(default_factory=list)


class StagePhaseTracker:
    """Collects the S/C access breakdown and stage-phase MPKI trends."""

    OUTCOMES = ("read_hit", "read_miss", "write_hit", "write_miss", "write_overflow")

    def __init__(self, sample_blocks: int = 1024, bins: int = 10) -> None:
        self.sample_blocks = sample_blocks
        self.bins = bins
        self._access_no = 0
        self._phases: Dict[int, _Phase] = {}
        #: breakdown[("S"|"C", outcome)] -> count
        self.breakdown: Dict[Tuple[str, str], int] = {}
        #: per-bin distribution of phase miss rates (misses per kilo-access).
        self.bin_stats: List[OnlineStats] = [
            OnlineStats(keep_samples=True) for _ in range(bins)
        ]
        self._sampled_phases = 0

    # -- phase lifecycle -------------------------------------------------------
    def tick(self) -> None:
        """Advance the global access clock (call once per memory access)."""
        self._access_no += 1

    def block_staged(self, block_id: int) -> None:
        if self._sampled_phases >= self.sample_blocks:
            return
        if block_id not in self._phases:
            self._phases[block_id] = _Phase(start_access=self._access_no)

    def block_unstaged(self, block_id: int, committed: bool) -> None:
        """Close a phase at commit or eviction and bin its miss timeline."""
        phase = self._phases.pop(block_id, None)
        if phase is None:
            return
        if self._sampled_phases >= self.sample_blocks:
            return
        span = self._access_no - phase.start_access
        if span <= 0 or len(phase.events) < 2:
            return
        self._sampled_phases += 1
        bin_events = [[0, 0] for _ in range(self.bins)]  # [accesses, misses]
        for access_no, was_miss in phase.events:
            rel = (access_no - phase.start_access) / span
            index = min(self.bins - 1, int(rel * self.bins))
            bin_events[index][0] += 1
            if was_miss:
                bin_events[index][1] += 1
        for index, (accesses, misses) in enumerate(bin_events):
            if accesses:
                self.bin_stats[index].add(1000.0 * misses / accesses)

    def finalize(self) -> None:
        """Flush phases still open at end of run.

        Without this, any block staged but neither committed nor evicted by
        the time the trace ends never reaches the Fig. 3b/4 bins, silently
        dropping the tail of every trace.
        """
        for block_id in list(self._phases):
            self.block_unstaged(block_id, committed=False)

    # -- access classification ----------------------------------------------------
    def record(
        self,
        block_id: int,
        staged: bool,
        committed: bool,
        is_write: bool,
        miss: bool,
        overflow: bool,
    ) -> None:
        """Classify one access for the Fig. 3 breakdown.

        ``staged``/``committed`` describe the block *before* the access.
        """
        if staged:
            category = "S"
            if self._sampled_phases < self.sample_blocks:
                phase = self._phases.get(block_id)
                if phase is not None:
                    phase.events.append((self._access_no, miss))
        elif committed:
            category = "C"
        else:
            return
        if overflow and is_write:
            outcome = "write_overflow"
        else:
            outcome = ("write_" if is_write else "read_") + ("miss" if miss else "hit")
        key = (category, outcome)
        self.breakdown[key] = self.breakdown.get(key, 0) + 1

    # -- reports --------------------------------------------------------------------
    def breakdown_fractions(self, category: str) -> Dict[str, float]:
        """Outcome fractions within one category ('S' or 'C')."""
        total = sum(
            count for (cat, _), count in self.breakdown.items() if cat == category
        )
        if total == 0:
            return {outcome: 0.0 for outcome in self.OUTCOMES}
        return {
            outcome: self.breakdown.get((category, outcome), 0) / total
            for outcome in self.OUTCOMES
        }

    def miss_rate(self, category: str) -> float:
        fractions = self.breakdown_fractions(category)
        return fractions["read_miss"] + fractions["write_miss"]

    def overflow_rate(self, category: str) -> float:
        return self.breakdown_fractions(category)["write_overflow"]

    def mpki_distribution(self) -> List[Dict[str, float]]:
        """Per-bin quartiles/tails of the stage-phase miss trend (Fig. 4)."""
        out: List[Dict[str, float]] = []
        for index, stats in enumerate(self.bin_stats):
            if stats.count == 0:
                out.append({"bin": index / self.bins, "count": 0.0})
                continue
            out.append(
                {
                    "bin": index / self.bins,
                    "count": float(stats.count),
                    "p5": stats.percentile(0.05),
                    "p25": stats.percentile(0.25),
                    "median": stats.percentile(0.50),
                    "p75": stats.percentile(0.75),
                    "p95": stats.percentile(0.95),
                    "mean": stats.mean,
                }
            )
        return out
