"""Access outcome types shared by all hybrid-memory controller designs.

:class:`AccessCase` names the five cases of Baryon's access flow (Fig. 6)
plus the outcomes baselines produce, so the Fig. 3 access-type breakdown
can be computed uniformly. :class:`AccessResult` is what every controller
returns to the system simulator for one memory-level access.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List


class AccessCase(enum.Enum):
    """Where an access was resolved (Fig. 6 cases, generalized)."""

    STAGE_HIT = "stage_hit"  # case 1: block staged, sub-block present
    COMMIT_HIT = "commit_hit"  # case 2: block committed, sub-block present
    STAGE_MISS = "stage_miss"  # case 3: block staged, sub-block fetched
    COMMIT_MISS = "commit_miss"  # case 4: committed, sub-block bypassed
    BLOCK_MISS = "block_miss"  # case 5: block absent from fast memory
    FAST_HOME = "fast_home"  # flat scheme: block natively in fast memory
    SLOW_DIRECT = "slow_direct"  # served from slow with no staging path

    @property
    def is_fast(self) -> bool:
        """Did the demanded data come from the fast memory?"""
        return self in FAST_CASES


#: Cases served from fast memory — a frozenset membership test instead of
#: a tuple scan on the per-access path.
FAST_CASES = frozenset(
    (AccessCase.STAGE_HIT, AccessCase.COMMIT_HIT, AccessCase.FAST_HOME)
)

#: Precomputed per-case stats counter keys, so the per-access accounting
#: never rebuilds the ``case_*`` f-string.
CASE_COUNTER_KEYS = {case: f"case_{case.value}" for case in AccessCase}

# Per-member attributes precomputed for the per-access path: enum ``__hash__``
# and the frozenset probe are measurable at hot-loop call counts, while an
# attribute load is not. ``fast`` mirrors ``is_fast``; ``index`` gives each
# case a stable list position for dense counter arrays.
for _index, _case in enumerate(AccessCase):
    _case.fast = _case in FAST_CASES
    _case.index = _index
del _index, _case


@dataclass
class AccessResult:
    """Outcome of one 64 B memory access at the controller.

    ``latency_cycles`` includes metadata lookup, device access, queueing
    and decompression; ``prefetched_lines`` are cacheline addresses that
    arrived for free with a compressed chunk and should be installed in the
    LLC (Sec. III-E memory-to-LLC prefetching); ``write_overflow`` flags a
    recompression that no longer fit its slot (Fig. 3's overflow events).
    """

    case: AccessCase
    latency_cycles: float
    is_write: bool = False
    write_overflow: bool = False
    prefetched_lines: List[int] = field(default_factory=list)

    @property
    def served_fast(self) -> bool:
        return self.case.is_fast
