"""Baryon's core: the stage area, commit policy and memory controller.

The package composes the substrates into the paper's architecture:

* :class:`~repro.core.stage_area.StageArea` — the small fast-memory staging
  region with its on-chip tag array, two-level replacement state and the
  MissCnt/MRUMissCnt statistics that feed the commit cost model;
* :class:`~repro.core.commit.CommitPolicy` — the selective commit decision,
  Eq. 1 with parameter ``k``;
* :class:`~repro.core.fast_area.FastArea` — the committed cache/flat region
  organized as hybrid sets of fast block spaces;
* :class:`~repro.core.controller.BaryonController` — the access flow of
  Fig. 6 (cases 1-5), slow-to-stage prefetching, cacheline-aligned
  transfers, flat-scheme swapping and compressed writeback;
* :class:`~repro.core.columnar.ColumnarState` — the columnar (structured
  numpy array) mirror of the controller metadata plus the O(1) probe
  indices behind the deferred batch fast path.
"""

from repro.core.columnar import ColumnarState
from repro.core.commit import CommitDecision, CommitPolicy
from repro.core.controller import BaryonController
from repro.core.events import AccessCase, AccessResult
from repro.core.fast_area import FastArea, FastBlockState
from repro.core.stage_area import StageArea

__all__ = [
    "AccessCase",
    "AccessResult",
    "BaryonController",
    "ColumnarState",
    "CommitDecision",
    "CommitPolicy",
    "FastArea",
    "FastBlockState",
    "StageArea",
]
