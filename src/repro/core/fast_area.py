"""The committed cache/flat area: hybrid sets of fast block spaces.

Committed blocks live here under the compact remap-entry format. This
class owns the physical side of that story:

* which super-block's data each fast block space holds, and which logical
  blocks (BlkOffs) of it are committed there;
* the per-physical-block dirty/replacement metadata the paper stores
  separately from the remap entries (Sec. III-C);
* LRU victim selection for low-associative configurations and FIFO for
  fully-associative ones (Sec. III-E);
* for the flat scheme, which OS-visible fast block is *homed* at each
  space and whether it is currently displaced by committed data.

Indexing: slow-side lookups map a super-block to a set via
``super_block_id % num_sets`` so that one stage block (whose ranges all
share a super-block, Rule 1) commits into a single set. Fast block spaces
are statically partitioned across sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.common.config import Geometry
from repro.common.errors import LayoutError
from repro.common.stats import CounterGroup


@dataclass(slots=True)
class FastBlockState:
    """State of one occupied fast block space in the cache/flat area."""

    super_id: int
    #: BlkOffs of the super-block committed into this space, each with its
    #: occupied slot count (needed to free capacity on per-block eviction).
    committed: Dict[int, int] = field(default_factory=dict)
    slots_used: int = 0
    #: Dirty sub-blocks as (blk_off, sub_index) pairs.
    dirty_subs: Set[Tuple[int, int]] = field(default_factory=set)
    #: Replacement timestamp (LRU touch time or FIFO insertion time).
    stamp: int = 0
    #: LFU access frequency and CLOCK referenced bit.
    frequency: int = 0
    referenced: bool = False
    #: Flat scheme: home block displaced by this committed data, if any.
    displaced_home: Optional[int] = None

    def dirty_count(self) -> int:
        return len(self.dirty_subs)


class FastArea:
    """Set-associative committed area with LRU or FIFO replacement."""

    #: Fast-to-slow eviction policies the paper lists as interchangeable
    #: (Sec. III-E: "LRU, LFU, CLOCK, and even random").
    POLICIES = ("lru", "fifo", "lfu", "clock", "random")

    def __init__(
        self,
        num_sets: int,
        ways: int,
        geometry: Geometry,
        replacement: str = "lru",
        seed: int = 0xFA57,
    ) -> None:
        import random

        if num_sets <= 0 or ways <= 0:
            raise LayoutError("fast area needs positive sets and ways")
        if replacement not in self.POLICIES:
            raise LayoutError(
                f"fast area replacement must be one of {self.POLICIES}"
            )
        self.num_sets = num_sets
        self.ways = ways
        self.geometry = geometry
        self.replacement = replacement
        self.blocks: List[List[Optional[FastBlockState]]] = [
            [None] * ways for _ in range(num_sets)
        ]
        self._clock = 0
        self._rng = random.Random(seed)
        self.stats = CounterGroup("fast_area")

    # -- indexing -----------------------------------------------------------
    def set_of_super(self, super_id: int) -> int:
        return super_id % self.num_sets

    def total_blocks(self) -> int:
        return self.num_sets * self.ways

    # -- lookup --------------------------------------------------------------
    def lookup_super(self, super_id: int) -> List[Tuple[int, FastBlockState]]:
        """All ways of the set currently holding data of ``super_id``."""
        set_index = self.set_of_super(super_id)
        return [
            (way, state)
            for way, state in enumerate(self.blocks[set_index])
            if state is not None and state.super_id == super_id
        ]

    def find_block(self, super_id: int, blk_off: int) -> Optional[Tuple[int, FastBlockState]]:
        """The way holding committed data of logical block ``blk_off``."""
        for way, state in self.lookup_super(super_id):
            if blk_off in state.committed:
                return way, state
        return None

    def state(self, set_index: int, way: int) -> Optional[FastBlockState]:
        return self.blocks[set_index][way]

    # -- replacement -----------------------------------------------------------
    def next_stamp(self) -> int:
        """Advance and return the replacement clock (shared with the
        controller's home-block recency bookkeeping in the flat scheme)."""
        self._clock += 1
        return self._clock

    def touch(self, set_index: int, way: int) -> None:
        """Refresh replacement state on a hit.

        LRU bumps the stamp; LFU increments a frequency count; CLOCK sets
        the referenced bit; FIFO and random ignore touches.
        """
        state = self.blocks[set_index][way]
        if state is None:
            raise LayoutError("touched an empty fast block space")
        if self.replacement == "lru":
            self._clock += 1
            state.stamp = self._clock
        elif self.replacement == "lfu":
            state.frequency += 1
        elif self.replacement == "clock":
            state.referenced = True

    def free_way(self, set_index: int) -> Optional[int]:
        for way, state in enumerate(self.blocks[set_index]):
            if state is None:
                return way
        return None

    def victim_way(self, set_index: int) -> int:
        """Replacement victim according to the configured policy."""
        row = self.blocks[set_index]
        for way, state in enumerate(row):
            if state is None:
                return way
        if self.replacement == "random":
            return self._rng.randrange(self.ways)
        if self.replacement == "lfu":
            return min(
                range(self.ways), key=lambda w: (row[w].frequency, row[w].stamp)
            )
        if self.replacement == "clock":
            # Second chance sweep from the oldest stamp.
            order = sorted(range(self.ways), key=lambda w: row[w].stamp)
            for way in order:
                if not row[way].referenced:
                    return way
                row[way].referenced = False
            return order[0]
        # LRU / FIFO: oldest stamp (touch refreshes it only under LRU).
        return min(range(self.ways), key=lambda w: row[w].stamp)

    def peek_victim(self, set_index: int) -> Optional[FastBlockState]:
        """The state that :meth:`victim_way` would displace (None if a free
        way exists) — used by the commit cost model's #Dirty_area term."""
        if self.free_way(set_index) is not None:
            return None
        return self.blocks[set_index][self.victim_way(set_index)]

    # -- mutation -----------------------------------------------------------------
    def install(self, set_index: int, way: int, state: FastBlockState) -> None:
        if self.blocks[set_index][way] is not None:
            raise LayoutError("installing over an occupied fast block space")
        self._clock += 1
        state.stamp = self._clock
        self.blocks[set_index][way] = state
        self.stats.inc("installs")

    def remove(self, set_index: int, way: int) -> FastBlockState:
        state = self.blocks[set_index][way]
        if state is None:
            raise LayoutError("removing an empty fast block space")
        self.blocks[set_index][way] = None
        self.stats.inc("removals")
        return state

    def occupancy(self) -> float:
        used = sum(
            1 for row in self.blocks for state in row if state is not None
        )
        return used / self.total_blocks()
