"""Memory-system energy accounting (Section IV-B comparison).

Energy = bits moved x pJ/bit per medium, plus DRAM activate/precharge
energy per row activation. Row activations are approximated as one per
2 kB-block touch (the paper's blocks are DRAM-page aligned precisely so a
block transfer is one activation), which the devices report as access
counts. The absolute joules are not the point — the *relative* energy of
Baryon vs the baselines tracks their traffic, which is what we reproduce.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import MemoryTimings
from repro.devices.memory import MemoryDevice


@dataclass(frozen=True)
class EnergyReport:
    """Joules spent per medium plus the total."""

    fast_dynamic_j: float
    fast_act_pre_j: float
    slow_dynamic_j: float

    @property
    def total_j(self) -> float:
        return self.fast_dynamic_j + self.fast_act_pre_j + self.slow_dynamic_j


class EnergyModel:
    """Translate device traffic counters into joules using Table I numbers."""

    def __init__(self, timings: MemoryTimings | None = None) -> None:
        self.timings = timings or MemoryTimings()

    def report(self, fast: MemoryDevice, slow: MemoryDevice) -> EnergyReport:
        return self.report_deltas(
            fast.stats.get("read_bytes"),
            fast.stats.get("write_bytes"),
            fast.stats.get("reads") + fast.stats.get("writes"),
            slow.stats.get("read_bytes"),
            slow.stats.get("write_bytes"),
        )

    def report_deltas(
        self,
        fast_read_bytes: int,
        fast_write_bytes: int,
        fast_ops: int,
        slow_read_bytes: int,
        slow_write_bytes: int,
    ) -> EnergyReport:
        """Energy for a window of traffic given raw counter deltas.

        Used to report the measured window only (post-warmup), instead of
        charging the whole run's traffic to the measurement window.
        """
        t = self.timings
        pj = 1e-12
        fast_dynamic = (
            fast_read_bytes * 8 * t.fast_read_pj_per_bit
            + fast_write_bytes * 8 * t.fast_write_pj_per_bit
        ) * pj
        fast_act = fast_ops * t.fast_act_pre_pj * pj
        slow_dynamic = (
            slow_read_bytes * 8 * t.slow_read_pj_per_bit
            + slow_write_bytes * 8 * t.slow_write_pj_per_bit
        ) * pj
        return EnergyReport(fast_dynamic, fast_act, slow_dynamic)
