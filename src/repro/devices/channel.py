"""Per-channel busy-until queueing.

Each memory device owns a small number of channels; a transfer occupies one
channel for ``bytes * cycles_per_byte`` cycles. An access picks the channel
that frees earliest and queues behind it. This is the standard first-order
contention model for trace-driven memory studies: it charges latency only
when offered load actually exceeds channel bandwidth, which is exactly the
regime where sub-blocking and compression pay off in the paper.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.common.errors import ConfigurationError


class ChannelPool:
    """A set of identical channels with busy-until bookkeeping.

    Time is in controller cycles (floats; transfers are fractional cycles).
    The pool also integrates total busy time so utilization can be
    reported per simulation window.

    Demand (priority) transfers model FR-FCFS read prioritization: they
    observe only a fraction (``priority_discount``) of the queue backlog,
    because the scheduler reorders them ahead of fills and writebacks.
    Bandwidth accounting is unaffected — the channel is still occupied for
    the full duration, so saturation feeds back on everyone.
    """

    def __init__(
        self,
        channels: int,
        cycles_per_byte: float,
        priority_discount: float = 0.25,
    ) -> None:
        if channels <= 0:
            raise ConfigurationError("channel count must be positive")
        if cycles_per_byte <= 0:
            raise ConfigurationError("cycles_per_byte must be positive")
        if not 0.0 <= priority_discount <= 1.0:
            raise ConfigurationError("priority_discount must be in [0, 1]")
        self.channels = channels
        self.cycles_per_byte = cycles_per_byte
        self.priority_discount = priority_discount
        self._busy_until: List[float] = [0.0] * channels
        self.total_busy_cycles = 0.0
        self.total_bytes = 0

    def transfer(
        self, now: float, nbytes: int, priority: bool = False
    ) -> Tuple[float, float]:
        """Schedule a transfer of ``nbytes`` starting no earlier than ``now``.

        Returns ``(queue_delay, transfer_cycles)``; the data are fully on
        the bus at ``now + queue_delay + transfer_cycles``. Priority
        transfers report a discounted queue delay (see class docstring).
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            return 0.0, 0.0
        busy = self._busy_until
        if self.channels == 1:
            index = 0
        else:
            # list.index(min(...)) picks the same (first) earliest-free
            # channel as the key-based scan, at C speed.
            index = busy.index(min(busy))
        start = now if now > busy[index] else busy[index]
        duration = nbytes * self.cycles_per_byte
        self._busy_until[index] = start + duration
        self.total_busy_cycles += duration
        self.total_bytes += nbytes
        queue = start - now
        if priority:
            queue *= self.priority_discount
        return queue, duration

    def utilization(self, elapsed_cycles: float) -> float:
        """Mean channel utilization over ``elapsed_cycles``."""
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.total_busy_cycles / (elapsed_cycles * self.channels))

    def reset(self) -> None:
        self._busy_until = [0.0] * self.channels
        self.total_busy_cycles = 0.0
        self.total_bytes = 0
