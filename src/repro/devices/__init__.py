"""Memory device models: latency, channel queueing, traffic and energy.

The paper models DDR4-3200 fast memory and an NVM slow memory with the
Table I parameters. This package provides:

* :class:`~repro.devices.channel.ChannelPool` — per-channel busy-until
  queueing, the first-order contention model that makes bandwidth a real
  resource (the crux of the slow-memory-bandwidth story);
* :class:`~repro.devices.memory.MemoryDevice` — a device with read/write
  latencies and a channel pool, counting traffic;
* :class:`~repro.devices.memory.HybridMemoryDevices` — the fast+slow pair
  every controller design drives;
* :class:`~repro.devices.energy.EnergyModel` — pJ/bit + activate/precharge
  accounting for the Section IV-B energy comparison.
"""

from repro.devices.channel import ChannelPool
from repro.devices.energy import EnergyModel, EnergyReport
from repro.devices.memory import DeviceAccess, HybridMemoryDevices, MemoryDevice

__all__ = [
    "ChannelPool",
    "DeviceAccess",
    "EnergyModel",
    "EnergyReport",
    "HybridMemoryDevices",
    "MemoryDevice",
]
