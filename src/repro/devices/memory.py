"""Fast/slow memory device models built on the channel pool.

:class:`MemoryDevice` combines a fixed array-access latency with queued
channel transfers and traffic counters. :class:`HybridMemoryDevices` is the
pair every hybrid-memory controller design in this repository drives; it is
deliberately dumb — placement, remapping and migration policy all live in
the controllers, mirroring the paper's split between the memory media and
the (modified) memory controller.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.common.config import MemoryTimings
from repro.common.stats import CounterGroup


class DeviceAccess(NamedTuple):
    """Timing outcome of one device access.

    A NamedTuple rather than a frozen dataclass: one is created per device
    operation, and tuple construction is measurably cheaper than the
    ``object.__setattr__`` path frozen dataclasses pay per field.
    """

    latency_cycles: float
    queue_cycles: float
    transfer_cycles: float

    @property
    def total_cycles(self) -> float:
        return self.latency_cycles + self.queue_cycles + self.transfer_cycles


class MemoryDevice:
    """One memory medium: fixed access latency + queued channels + counters.

    ``critical`` transfers (demand reads) and background transfers (fills,
    writebacks, migrations) share the channels — background traffic delays
    demand reads, which is how bandwidth bloat turns into lost performance.
    """

    def __init__(
        self,
        name: str,
        read_latency: float,
        write_latency: float,
        channels: int,
        cycles_per_byte: float,
        row_buffer: "RowBufferModel | None" = None,
    ) -> None:
        from repro.devices.channel import ChannelPool

        self.name = name
        self.read_latency = read_latency
        self.write_latency = write_latency
        self.pool = ChannelPool(channels, cycles_per_byte)
        #: Optional open-page bank model (DRAM): when present, the array
        #: latency comes from row-buffer hit/miss state instead of the
        #: fixed ``read_latency``/``write_latency``, and activation counts
        #: feed the ACT/PRE energy term.
        self.row_buffer = row_buffer
        self._stats = CounterGroup(name)
        # Deferred traffic counters, folded into ``stats`` on read.
        self._n_reads = 0
        self._n_read_bytes = 0
        self._n_demand_read_bytes = 0
        self._n_fill_read_bytes = 0
        self._n_writes = 0
        self._n_write_bytes = 0
        #: Optional :class:`~repro.resilience.faults.FaultInjector`. Faults
        #: fire *before* any traffic/statistics accounting so a retried
        #: access leaves no accounting trace of its failed attempts.
        self.faults = None

    @property
    def stats(self) -> CounterGroup:
        """Counter group with all pending hot-path counts folded in."""
        if self._n_reads:
            self._stats.inc("reads", self._n_reads)
            self._n_reads = 0
        if self._n_read_bytes:
            self._stats.inc("read_bytes", self._n_read_bytes)
            self._n_read_bytes = 0
        if self._n_demand_read_bytes:
            self._stats.inc("demand_read_bytes", self._n_demand_read_bytes)
            self._n_demand_read_bytes = 0
        if self._n_fill_read_bytes:
            self._stats.inc("fill_read_bytes", self._n_fill_read_bytes)
            self._n_fill_read_bytes = 0
        if self._n_writes:
            self._stats.inc("writes", self._n_writes)
            self._n_writes = 0
        if self._n_write_bytes:
            self._stats.inc("write_bytes", self._n_write_bytes)
            self._n_write_bytes = 0
        return self._stats

    def _array_latency(self, addr: int | None, base: float) -> float:
        if self.row_buffer is None or addr is None:
            return base
        return self.row_buffer.access(addr)

    def read(
        self, now: float, nbytes: int, *, demand: bool = True, addr: int | None = None
    ) -> DeviceAccess:
        """Read ``nbytes``; demand reads are the latency-critical ones and
        are prioritized by the channel scheduler (FR-FCFS-style).

        ``addr`` enables the row-buffer model when one is attached; calls
        without an address fall back to the fixed array latency.
        """
        spike = 0.0
        if self.faults is not None and self.faults.active:
            spike = self.faults.on_read(self.name)
        queue, transfer = self.pool.transfer(now, nbytes, priority=demand)
        self._n_read_bytes += nbytes
        self._n_reads += 1
        if demand:
            self._n_demand_read_bytes += nbytes
        else:
            self._n_fill_read_bytes += nbytes
        return DeviceAccess(
            self._array_latency(addr, self.read_latency) + spike, queue, transfer
        )

    def write(self, now: float, nbytes: int, addr: int | None = None) -> DeviceAccess:
        """Write ``nbytes``; writes are posted (off the critical path) but
        still occupy channel bandwidth."""
        if self.faults is not None and self.faults.active:
            self.faults.on_write(self.name)
        queue, transfer = self.pool.transfer(now, nbytes)
        self._n_write_bytes += nbytes
        self._n_writes += 1
        return DeviceAccess(self._array_latency(addr, self.write_latency), queue, transfer)

    @property
    def total_bytes(self) -> int:
        stats = self.stats  # flushes pending counts
        return stats.get("read_bytes") + stats.get("write_bytes")

    def reset(self) -> None:
        self.pool.reset()
        self._stats.reset()
        self._n_reads = 0
        self._n_read_bytes = 0
        self._n_demand_read_bytes = 0
        self._n_fill_read_bytes = 0
        self._n_writes = 0
        self._n_write_bytes = 0


class HybridMemoryDevices:
    """The DDR4 + NVM pair of Table I.

    Constructed from :class:`~repro.common.config.MemoryTimings`; exposes
    ``fast`` and ``slow`` :class:`MemoryDevice` objects and convenience
    traffic totals used by the bandwidth-bloat metric of Fig. 11.
    """

    def __init__(self, timings: MemoryTimings | None = None) -> None:
        from repro.devices.rowbuffer import RowBufferModel

        self.timings = timings or MemoryTimings()
        t = self.timings
        fast_rows = (
            RowBufferModel(channels=t.fast_channels, banks_per_channel=16)
            if t.model_row_buffer
            else None
        )
        self.fast = MemoryDevice(
            "fast",
            read_latency=t.fast_read_latency_cycles,
            write_latency=t.fast_write_latency_cycles,
            channels=t.fast_channels,
            cycles_per_byte=t.fast_cycles_per_byte() / 1.0,
            row_buffer=fast_rows,
        )
        self.slow = MemoryDevice(
            "slow",
            read_latency=t.slow_read_latency_cycles,
            write_latency=t.slow_write_latency_cycles,
            channels=t.slow_channels,
            cycles_per_byte=t.slow_cycles_per_byte() / 1.0,
        )

    def fast_traffic_bytes(self) -> int:
        return self.fast.total_bytes

    def slow_traffic_bytes(self) -> int:
        return self.slow.total_bytes

    def reset(self) -> None:
        self.fast.reset()
        self.slow.reset()
