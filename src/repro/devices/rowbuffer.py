"""Bank and row-buffer model for the fast (DRAM) memory.

Table I gives DDR4-3200 with RCD-CAS-RP 22-22-22 and per-event energy
(RD/WR 5 pJ/bit, ACT/PRE 535.8 pJ). A flat per-access latency hides the
difference between row-buffer hits (CAS only) and row misses
(PRE + ACT + CAS), and charges activation energy per access instead of per
activation. This model tracks the open row per bank:

* the target bank is ``(row address) % (channels * banks)``;
* a hit costs ``t_cas``; a miss costs ``t_rp + t_rcd + t_cas`` and one
  activate/precharge energy event;
* 2 kB blocks are DRAM-page aligned (the paper picks the block size for
  exactly this reason), so block-sized transfers pay one activation.

The model is intentionally open-page with no timing-window constraints
(tFAW etc.) — those second-order effects do not change any comparison the
paper makes, while row locality very much does (streams vs scatter).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.common.stats import CounterGroup
from repro.obs.tracer import NULL_TRACER


class RowBufferModel:
    """Open-page row-buffer state across ``channels x banks`` banks."""

    def __init__(
        self,
        channels: int = 4,
        banks_per_channel: int = 16,
        row_bytes: int = 2048,
        t_rcd: float = 22.0,
        t_cas: float = 22.0,
        t_rp: float = 22.0,
    ) -> None:
        self.channels = channels
        self.banks_per_channel = banks_per_channel
        self.row_bytes = row_bytes
        self.t_rcd = t_rcd
        self.t_cas = t_cas
        self.t_rp = t_rp
        self._open_rows: Dict[int, int] = {}
        self.stats = CounterGroup("row_buffer")
        #: Observability hook point; see :mod:`repro.obs`.
        self.obs = NULL_TRACER
        #: Optional :class:`~repro.resilience.faults.FaultInjector`. A row
        #: glitch is a pure latency penalty (a spurious precharge+activate
        #: delay); bank state and hit/miss counters are untouched so the
        #: activation-energy accounting stays identical to a clean run.
        self.faults = None

    def _locate(self, addr: int) -> Tuple[int, int]:
        """(bank index, row id) for a byte address.

        Rows interleave across banks at row granularity, the common
        mapping for sequential-stream bank parallelism.
        """
        row = addr // self.row_bytes
        n_banks = self.channels * self.banks_per_channel
        return row % n_banks, row // n_banks

    def access(self, addr: int) -> float:
        """Latency (cycles) of the array access; updates bank state."""
        glitch = 0.0
        if self.faults is not None and self.faults.active and self.faults.row_glitch():
            glitch = self.t_rp + self.t_rcd
        bank, row = self._locate(addr)
        open_row = self._open_rows.get(bank)
        if open_row == row:
            self.stats.inc("row_hits")
            if self.obs.enabled:
                self.obs.emit("rowbuffer", bank=bank, row=row, hit=True, closed=None)
            return self.t_cas + glitch
        self._open_rows[bank] = row
        self.stats.inc("row_misses")
        if self.obs.enabled:
            self.obs.emit("rowbuffer", bank=bank, row=row, hit=False, closed=open_row)
        if open_row is not None:
            self.stats.inc("precharges")
            return self.t_rp + self.t_rcd + self.t_cas + glitch
        self.stats.inc("activations")
        return self.t_rcd + self.t_cas + glitch

    @property
    def activations(self) -> int:
        """Activate events (for ACT/PRE energy accounting)."""
        return self.stats.get("row_misses")

    @property
    def row_hit_rate(self) -> float:
        total = self.stats.get("row_hits") + self.stats.get("row_misses")
        return self.stats.get("row_hits") / total if total else 0.0

    def reset(self) -> None:
        self._open_rows.clear()
        self.stats.reset()
