"""Crash-durable file replacement.

``os.replace`` gives atomicity (readers see either the old or the new
file, never a partial one) but not durability: after a host crash the
rename itself — or the temp file's data — may not have reached the
platter, leaving an empty or stale file behind the "atomic" write.
POSIX durability needs three fsyncs worth of care:

1. fsync the temp file after writing, so its *data* is on disk before
   the rename can ever expose it;
2. ``os.replace`` onto the destination (atomic within one filesystem);
3. fsync the parent *directory*, so the rename (a directory-entry
   update) itself survives the crash.

:func:`durable_replace` packages that sequence for the checkpoint and
manifest writers. It lives in ``common`` (not ``resilience``) because
both ``repro.resilience.checkpoint`` and ``repro.obs.manifest`` need it
and neither package may import the other.
"""

import errno
import os
import tempfile
from typing import Callable, List, Optional, Sequence

__all__ = ["durable_replace", "fsync_dir", "remove_stale_temps"]

#: Suffix every :func:`durable_replace` temp file carries, so anything a
#: killed process leaves behind is recognizable (and removable) by a
#: plain ``*.tmp`` glob.
TEMP_SUFFIX = ".tmp"


def fsync_dir(path: str) -> None:
    """fsync a directory so a just-renamed entry in it survives a crash.

    Best-effort: some platforms/filesystems refuse ``open(dir)`` or
    ``fsync`` on a directory fd (EACCES/EINVAL/EPERM, or ENOTSUP on odd
    mounts); durability is then whatever the OS gives, which matches the
    pre-fix behavior rather than failing the write.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError as exc:
        if exc.errno not in (errno.EINVAL, errno.ENOTSUP, errno.EPERM, errno.EACCES):
            raise
    finally:
        os.close(fd)


def durable_replace(
    path: str,
    data: bytes,
    *,
    prefix: str = ".tmp-",
    mutate: Optional[Callable[[int, str], None]] = None,
) -> None:
    """Atomically and durably replace ``path`` with ``data``.

    Writes to a temp file in the destination directory, fsyncs it,
    renames over ``path``, then fsyncs the directory. On any failure the
    temp file is removed and the original ``path`` is left untouched.

    ``mutate``, if given, is called as ``mutate(fd, tmp_path)`` after the
    payload is written but before fsync/rename — the chaos injector's
    hook for tearing or bit-flipping the bytes, or raising ENOSPC, at
    exactly the point where a real crash or full disk would strike.
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        prefix=prefix, suffix=TEMP_SUFFIX, dir=directory
    )
    try:
        os.write(fd, data)
        if mutate is not None:
            mutate(fd, tmp_path)
        os.fsync(fd)
        os.close(fd)
        fd = -1
        os.replace(tmp_path, path)
    except BaseException:
        # Every failure path must unlink the temp file — a raising
        # close() must not leave it behind either.
        if fd >= 0:
            try:
                os.close(fd)
            except OSError:
                pass
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    fsync_dir(directory)


def remove_stale_temps(path: str, prefixes: Sequence[str]) -> List[str]:
    """Unlink ``<prefix>*.tmp`` files next to ``path`` and return their
    names.

    :func:`durable_replace` cleans up after itself on every exception,
    so the only way a temp file persists is a process killed between
    ``mkstemp`` and the rename (SIGKILL, power loss). Call this once at
    the *start* of a run that owns the directory — mkstemp names are
    random, so sweeping while another writer is mid-replace could cost
    that writer one (non-fatal, retried-next-cell) checkpoint write.
    """
    directory = os.path.dirname(os.path.abspath(path))
    removed: List[str] = []
    try:
        names = os.listdir(directory)
    except OSError:
        return removed
    for name in names:
        if not name.endswith(TEMP_SUFFIX):
            continue
        if not any(name.startswith(prefix) for prefix in prefixes):
            continue
        try:
            os.unlink(os.path.join(directory, name))
        except OSError:
            continue
        removed.append(name)
    return removed
