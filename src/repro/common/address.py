"""Address manipulation helpers shared across the library.

:class:`AddressMapper` wraps a :class:`~repro.common.config.Geometry` plus a
set count and provides the set-index / tag decomposition used by both the
hybrid memory organisation (Sec. III-A) and the stage area (Sec. III-B). The
paper indexes hybrid sets by *super-block* so that all blocks of one
super-block land in the same set — a requirement for Rule 1 (one physical
block only holds sub-blocks of one super-block) to be satisfiable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.common.config import Geometry
from repro.common.errors import ConfigurationError


def block_aligned(addr: int, geometry: Geometry) -> bool:
    """True when ``addr`` is the first byte of a block."""
    return addr % geometry.block_size == 0


def iter_sub_blocks(block_addr: int, geometry: Geometry) -> Iterator[int]:
    """Yield the byte address of every sub-block in the block at ``block_addr``."""
    base = geometry.block_base(block_addr)
    for i in range(geometry.sub_blocks_per_block):
        yield base + i * geometry.sub_block_size


def iter_cachelines(sub_block_addr: int, geometry: Geometry) -> Iterator[int]:
    """Yield the byte address of every cacheline in one sub-block."""
    base = geometry.sub_block_base(sub_block_addr)
    for i in range(geometry.cachelines_per_sub_block):
        yield base + i * geometry.cacheline_size


@dataclass(frozen=True)
class AddressMapper:
    """Super-block-indexed set mapping for a set-associative structure.

    With a power-of-two ``num_sets`` the index is a bit slice and the tag
    is the remaining upper bits of the super-block number, matching the
    21-bit tag budget of the stage tag entry (Fig. 5a); non-power-of-two
    counts (scaled-down experiment configs) use the same modulo arithmetic.
    """

    geometry: Geometry
    num_sets: int

    def __post_init__(self) -> None:
        if self.num_sets <= 0:
            raise ConfigurationError("num_sets must be positive")

    def set_index(self, addr: int) -> int:
        """Set index of the super-block containing ``addr``."""
        return self.geometry.super_block_id(addr) % self.num_sets

    def set_index_of_super(self, super_block_id: int) -> int:
        return super_block_id % self.num_sets

    def tag(self, addr: int) -> int:
        """Super-block tag: the bits of the super-block id above the index."""
        return self.geometry.super_block_id(addr) // self.num_sets

    def tag_of_super(self, super_block_id: int) -> int:
        return super_block_id // self.num_sets

    def split(self, addr: int) -> Tuple[int, int]:
        """Return ``(set_index, tag)`` of ``addr`` in one call."""
        sb = self.geometry.super_block_id(addr)
        return sb % self.num_sets, sb // self.num_sets

    def super_block_of(self, set_index: int, tag: int) -> int:
        """Inverse of :meth:`split`: reconstruct the super-block id."""
        return tag * self.num_sets + set_index
