"""Lightweight statistics primitives used throughout the simulator.

Three pieces:

* :class:`CounterGroup` — a named bag of integer event counters with
  arithmetic helpers, the backbone of every component's ``stats`` object;
* :class:`RatioStat` — a hits/total pair that renders as a rate;
* :class:`OnlineStats` — Welford mean/variance plus reservoir-free
  percentile support through an explicit sample list (used by the Fig. 4
  MPKI-distribution experiment, which needs 5/25/75/95 percentiles).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional


class CounterGroup:
    """A dictionary of named monotonically increasing counters.

    Unknown names read as zero, so components can ``inc`` freely and report
    sparse counter sets without pre-declaring every event.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._counters: Dict[str, int] = {}

    def inc(self, key: str, amount: int = 1) -> None:
        """Increase counter ``key`` by ``amount`` (may be zero)."""
        self._counters[key] = self._counters.get(key, 0) + amount

    def get(self, key: str) -> int:
        return self._counters.get(key, 0)

    def __getitem__(self, key: str) -> int:
        return self.get(key)

    def keys(self) -> Iterable[str]:
        return self._counters.keys()

    def items(self) -> Iterable[tuple]:
        return self._counters.items()

    def __contains__(self, key: str) -> bool:
        return key in self._counters

    def as_dict(self) -> Dict[str, int]:
        """A snapshot copy of all counters."""
        return dict(self._counters)

    def merge(self, other: "CounterGroup") -> "CounterGroup":
        """Add every counter of ``other`` into this group; returns self so
        sharded runs can fold results: ``reduce(CounterGroup.merge, parts)``."""
        for key, value in other._counters.items():
            self.inc(key, value)
        return self

    def reset(self) -> None:
        self._counters.clear()

    def total(self, *keys: str) -> int:
        """Sum of the named counters."""
        return sum(self.get(k) for k in keys)

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v}" for k, v in sorted(self._counters.items()))
        return f"CounterGroup({self.name!r}: {body})"


class RatioStat:
    """A numerator/denominator pair rendered as a rate in [0, 1]."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.hits = 0
        self.total = 0

    def record(self, hit: bool) -> None:
        self.total += 1
        if hit:
            self.hits += 1

    def merge(self, other: "RatioStat") -> "RatioStat":
        """Fold another ratio in (parallel/sharded aggregation); returns self."""
        self.hits += other.hits
        self.total += other.total
        return self

    @property
    def rate(self) -> float:
        """Hit fraction; zero when nothing was recorded."""
        if self.total == 0:
            return 0.0
        return self.hits / self.total

    def __repr__(self) -> str:
        return f"RatioStat({self.name!r}: {self.hits}/{self.total} = {self.rate:.3f})"


class OnlineStats:
    """Mean/variance via Welford's algorithm, with optional sample keeping.

    With ``keep_samples=True`` the raw values are stored so percentiles can
    be computed afterwards; the Fig. 4 experiment samples only ~1k blocks so
    this stays small.
    """

    def __init__(self, keep_samples: bool = False) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._samples: Optional[List[float]] = [] if keep_samples else None

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self._min = value if self._min is None else min(self._min, value)
        self._max = value if self._max is None else max(self._max, value)
        if self._samples is not None:
            self._samples.append(value)

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        return self._min if self._min is not None else 0.0

    @property
    def maximum(self) -> float:
        return self._max if self._max is not None else 0.0

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile; requires ``keep_samples=True``
        and ``0 <= q <= 1`` (q=0 is the minimum, q=1 the maximum)."""
        if self._samples is None:
            raise ValueError("percentile() requires keep_samples=True")
        if not 0.0 <= q <= 1.0:
            raise ValueError("percentile requires 0 <= q <= 1")
        if not self._samples:
            return 0.0
        data = sorted(self._samples)
        if len(data) == 1:
            return data[0]
        pos = (len(data) - 1) * q
        lo = int(math.floor(pos))
        hi = min(lo + 1, len(data) - 1)
        frac = pos - lo
        return data[lo] * (1.0 - frac) + data[hi] * frac

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "stddev": self.stddev,
            "min": self.minimum,
            "max": self.maximum,
        }


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values; the paper's cross-workload average."""
    values = list(values)
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
