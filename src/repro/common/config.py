"""Configuration dataclasses mirroring the paper's Table I.

The defaults reproduce the exact system the paper simulates:

* 16 x86 cores at 3.2 GHz with a 32 kB L1I / 64 kB L1D / 1 MB L2 per core
  and a shared 16 MB LLC;
* 4 GB DDR4-3200 fast memory and 32 GB NVM slow memory (1:8 ratio);
* 2 kB blocks, 256 B sub-blocks, 16 kB (8-block) super-blocks;
* a 64 MB stage area organized as 8192 sets x 4 ways;
* a 32 kB remap cache (256 sets x 8 ways, 8 entries per line);
* FPC/BDI compression with CF in {1, 2, 4} and 5-cycle decompression.

Everything is a frozen dataclass: configurations are values, shared freely
between the controller, the devices and the benchmark harness without risk
of aliasing bugs.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Tuple

from repro.common.errors import ConfigurationError

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

#: Compression factors supported by Baryon's metadata encoding (Sec. III-B).
SUPPORTED_CFS: Tuple[int, ...] = (1, 2, 4)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


def _is_pow2(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class Geometry:
    """Data-unit sizes and the derived address arithmetic.

    The four granularities form a strict power-of-two hierarchy:
    ``cacheline_size <= sub_block_size <= block_size <= super_block_size``.
    All address helpers are pure integer math on byte addresses.
    """

    cacheline_size: int = 64
    sub_block_size: int = 256
    block_size: int = 2 * KB
    super_block_blocks: int = 8

    def __post_init__(self) -> None:
        for name in ("cacheline_size", "sub_block_size", "block_size"):
            _require(_is_pow2(getattr(self, name)), f"{name} must be a power of two")
        _require(_is_pow2(self.super_block_blocks), "super_block_blocks must be a power of two")
        _require(
            self.cacheline_size <= self.sub_block_size <= self.block_size,
            "sizes must satisfy cacheline <= sub-block <= block",
        )
        _require(
            self.block_size % self.sub_block_size == 0,
            "block_size must be a multiple of sub_block_size",
        )

    # -- derived sizes -------------------------------------------------
    @property
    def super_block_size(self) -> int:
        """Bytes in one super-block (16 kB by default)."""
        return self.block_size * self.super_block_blocks

    @property
    def sub_blocks_per_block(self) -> int:
        """Sub-blocks per block (eight by default)."""
        return self.block_size // self.sub_block_size

    @property
    def cachelines_per_sub_block(self) -> int:
        return self.sub_block_size // self.cacheline_size

    @property
    def cachelines_per_block(self) -> int:
        return self.block_size // self.cacheline_size

    # -- address decomposition -----------------------------------------
    def block_id(self, addr: int) -> int:
        """Global block number of a byte address."""
        return addr // self.block_size

    def super_block_id(self, addr: int) -> int:
        """Global super-block number of a byte address."""
        return addr // self.super_block_size

    def block_offset_in_super(self, addr: int) -> int:
        """BlkOff: index of the block within its super-block (0..7)."""
        return (addr // self.block_size) % self.super_block_blocks

    def sub_block_index(self, addr: int) -> int:
        """SubOff: index of the sub-block within its block (0..7)."""
        return (addr % self.block_size) // self.sub_block_size

    def cacheline_index_in_sub_block(self, addr: int) -> int:
        return (addr % self.sub_block_size) // self.cacheline_size

    def block_base(self, addr: int) -> int:
        """Byte address of the start of the enclosing block."""
        return addr - (addr % self.block_size)

    def sub_block_base(self, addr: int) -> int:
        return addr - (addr % self.sub_block_size)

    def cacheline_base(self, addr: int) -> int:
        return addr - (addr % self.cacheline_size)

    def super_block_base(self, addr: int) -> int:
        return addr - (addr % self.super_block_size)

    def sub_block_addr(self, block_id: int, sub_index: int) -> int:
        """Byte address of sub-block ``sub_index`` of global ``block_id``."""
        return block_id * self.block_size + sub_index * self.sub_block_size

    def aligned_range(self, sub_index: int, cf: int) -> Tuple[int, int]:
        """Return ``(start, length)`` of the CF-aligned sub-block range.

        Rule 2 of the paper: a range compressed with factor ``cf`` spans
        ``cf`` contiguous sub-blocks aligned to a multiple of ``cf``.
        """
        if cf not in SUPPORTED_CFS:
            raise ConfigurationError(f"unsupported compression factor {cf}")
        start = (sub_index // cf) * cf
        return start, cf


def default_geometry() -> Geometry:
    """The paper's default geometry: 64 B / 256 B / 2 kB / 16 kB."""
    return Geometry()


@dataclass(frozen=True)
class CacheGeometry:
    """One level of the SRAM cache hierarchy (Table I rows L1I..LLC)."""

    name: str
    size_bytes: int
    ways: int
    line_size: int = 64
    latency_cycles: int = 1
    replacement: str = "lru"

    def __post_init__(self) -> None:
        _require(self.size_bytes > 0 and self.ways > 0, "cache size/ways must be positive")
        _require(
            self.size_bytes % (self.ways * self.line_size) == 0,
            f"{self.name}: size must be a multiple of ways*line_size",
        )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_size)


@dataclass(frozen=True)
class HierarchyConfig:
    """Table I processor-side configuration."""

    cores: int = 16
    frequency_ghz: float = 3.2
    l1d: CacheGeometry = field(
        default_factory=lambda: CacheGeometry("L1D", 64 * KB, 8, latency_cycles=4)
    )
    l2: CacheGeometry = field(
        default_factory=lambda: CacheGeometry("L2", 1 * MB, 8, latency_cycles=9)
    )
    llc: CacheGeometry = field(
        default_factory=lambda: CacheGeometry("LLC", 16 * MB, 16, latency_cycles=38)
    )

    def __post_init__(self) -> None:
        _require(self.cores > 0, "cores must be positive")
        _require(self.frequency_ghz > 0, "frequency must be positive")


@dataclass(frozen=True)
class MemoryTimings:
    """Device latency/bandwidth/energy, from Table I.

    Latencies are in controller clock cycles at ``frequency_ghz``; energy in
    picojoules. The NVM numbers (76.92 ns read, 230.77 ns write) and DDR4
    RCD-CAS-RP 22-22-22 timings translate to the defaults below at 3.2 GHz.
    """

    frequency_ghz: float = 3.2
    #: Model the DRAM open-page row buffer (per-bank state) for the fast
    #: memory's demand accesses instead of a fixed array latency.
    model_row_buffer: bool = False
    # Fast memory: DDR4-3200, 4 channels x 2 ranks x 16 banks.
    fast_channels: int = 4
    fast_read_latency_cycles: int = 44  # ~tRCD+tCAS at 3.2 GHz core clock
    fast_write_latency_cycles: int = 44
    fast_channel_bw_gbps: float = 25.6  # DDR4-3200 per channel
    fast_read_pj_per_bit: float = 5.0
    fast_write_pj_per_bit: float = 5.0
    fast_act_pre_pj: float = 535.8
    # Slow memory: NVM, 1333 MHz, 4 channels x 1 rank x 8 banks.
    slow_channels: int = 4
    slow_read_latency_cycles: int = 246  # 76.92 ns at 3.2 GHz
    slow_write_latency_cycles: int = 738  # 230.77 ns at 3.2 GHz
    slow_channel_bw_gbps: float = 10.66
    slow_read_pj_per_bit: float = 14.0
    slow_write_pj_per_bit: float = 21.0

    def __post_init__(self) -> None:
        _require(self.fast_channels > 0 and self.slow_channels > 0, "channels must be positive")
        _require(
            self.fast_read_latency_cycles < self.slow_read_latency_cycles,
            "fast memory must be faster than slow memory",
        )

    def fast_cycles_per_byte(self) -> float:
        """Channel occupancy per transferred byte, in core cycles."""
        bytes_per_ns = self.fast_channel_bw_gbps / 8.0
        return self.frequency_ghz / bytes_per_ns / 1.0

    def slow_cycles_per_byte(self) -> float:
        bytes_per_ns = self.slow_channel_bw_gbps / 8.0
        return self.frequency_ghz / bytes_per_ns / 1.0


@dataclass(frozen=True)
class HybridLayout:
    """Capacities and associativity of the hybrid memory (Sec. III-A).

    The hybrid memory is set-associative: each set has ``associativity``
    fast blocks and ``slow_blocks_per_set`` slow blocks (fast:slow capacity
    ratio 1:8 by default). ``flat_fraction`` statically partitions the fast
    memory between the OS-invisible cache area and the OS-visible flat area.
    ``fully_associative`` models Baryon-FA / Hybrid2-style organizations.
    """

    fast_capacity: int = 4 * GB
    slow_capacity: int = 32 * GB
    associativity: int = 4
    flat_fraction: float = 0.0
    fully_associative: bool = False

    def __post_init__(self) -> None:
        _require(self.fast_capacity > 0 and self.slow_capacity > 0, "capacities must be positive")
        _require(
            self.slow_capacity % self.fast_capacity == 0,
            "slow capacity must be a multiple of fast capacity",
        )
        _require(self.associativity >= 1, "associativity must be >= 1")
        _require(0.0 <= self.flat_fraction <= 1.0, "flat_fraction must be in [0, 1]")

    @property
    def capacity_ratio(self) -> int:
        """Slow blocks per fast block (8 by default)."""
        return self.slow_capacity // self.fast_capacity

    def num_sets(self, geometry: Geometry) -> int:
        """Number of hybrid sets given the block size."""
        fast_blocks = self.fast_capacity // geometry.block_size
        if self.fully_associative:
            return 1
        return fast_blocks // self.associativity

    def slow_blocks_per_set(self, geometry: Geometry) -> int:
        return self.num_sets_assoc(geometry)[1] * self.capacity_ratio

    def num_sets_assoc(self, geometry: Geometry) -> Tuple[int, int]:
        """Return ``(num_sets, fast_ways)`` handling the FA case."""
        fast_blocks = self.fast_capacity // geometry.block_size
        if self.fully_associative:
            return 1, fast_blocks
        return fast_blocks // self.associativity, self.associativity


@dataclass(frozen=True)
class StageConfig:
    """Stage area + stage tag array configuration (Sec. III-B).

    Default 64 MB = 8192 sets x 4 ways x 2 kB blocks, matching the paper.
    ``enabled=False`` models the no-stage ablation of Fig. 13(c), where
    every insertion pays the layout re-sort penalty.
    """

    size_bytes: int = 64 * MB
    ways: int = 4
    enabled: bool = True
    tag_latency_cycles: int = 5
    miss_counter_bits: int = 16
    aging_period_accesses: int = 10_000

    def __post_init__(self) -> None:
        _require(self.size_bytes > 0, "stage size must be positive")
        _require(self.ways >= 1, "stage ways must be >= 1")

    def num_sets(self, geometry: Geometry) -> int:
        blocks = self.size_bytes // geometry.block_size
        _require(blocks % self.ways == 0, "stage blocks must divide evenly into ways")
        return blocks // self.ways

    def miss_counter_max(self) -> int:
        return (1 << self.miss_counter_bits) - 1


@dataclass(frozen=True)
class RemapCacheConfig:
    """On-chip remap cache: 32 kB, 256 sets x 8 ways, 8 entries/line."""

    num_sets: int = 256
    ways: int = 8
    entries_per_line: int = 8
    latency_cycles: int = 3

    def size_bytes(self, entry_bytes: int = 2, tag_bytes: int = 4) -> int:
        """Total SRAM bytes (data + tags)."""
        line = self.entries_per_line * entry_bytes + tag_bytes
        return self.num_sets * self.ways * line


@dataclass(frozen=True)
class CompressionConfig:
    """Compression engine configuration (Sec. III-B / III-E)."""

    algorithms: Tuple[str, ...] = ("fpc", "bdi")
    decompression_latency_cycles: int = 5
    cacheline_aligned: bool = True
    zero_block_support: bool = True
    #: Rule 2 restriction: ranges share one CF. Disabling models the
    #: "w/o same-CF restriction" ideal of Fig. 12.
    same_cf_restriction: bool = True
    #: Selective compression (the paper's future-work item, Sec. III-B):
    #: skip compression for address regions whose expected CF falls below
    #: ``selective_threshold``, avoiding decompression latency and write-
    #: overflow risk where compression barely pays.
    selective: bool = False
    selective_threshold: float = 1.3

    def __post_init__(self) -> None:
        _require(len(self.algorithms) > 0, "at least one compression algorithm required")
        _require(self.decompression_latency_cycles >= 0, "latency must be non-negative")
        _require(self.selective_threshold >= 1.0, "selective threshold must be >= 1")


@dataclass(frozen=True)
class CommitConfig:
    """Selective commit policy (Eq. 1). ``k=None`` means k = infinity."""

    k: float = 4.0
    commit_all: bool = False
    stability_only: bool = False

    def effective_k(self) -> float:
        if self.stability_only:
            return math.inf
        return self.k


@dataclass(frozen=True)
class ResilienceConfig:
    """Fault-injection and recovery knobs (see docs/resilience.md).

    ``enabled`` turns the deterministic fault injector on; every ``p_*``
    is a per-draw probability evaluated from a counter-based hash of
    ``fault_seed``, so a given configuration injects the exact same fault
    sequence on every run. ``check_invariants`` runs the shadow-memory
    invariant checker (R1-R4 + metadata round-trip on every commit) even
    when injection is off; it is mandatory when remap-table corruption is
    injected because the checker is the only component that can detect
    and repair it — without it the corruption would be a silent wrong
    result, which the resilience layer exists to rule out.
    """

    enabled: bool = False
    fault_seed: int = 0xBA51C
    #: Transient device faults: a read attempt fails (retryable) or a
    #: writeback is dropped before reaching the medium (retryable).
    p_read_transient: float = 0.0
    p_write_drop: float = 0.0
    #: Metadata bit corruption: a remap-cache line, a stage tag entry, or
    #: an off-chip remap-table entry reads back corrupted.
    p_remap_corruption: float = 0.0
    p_stage_tag_corruption: float = 0.0
    p_table_corruption: float = 0.0
    #: Slow-memory latency spikes (media maintenance, wear leveling):
    #: adds ``latency_spike_cycles`` to an affected read's array latency.
    p_latency_spike: float = 0.0
    latency_spike_cycles: int = 500
    #: DRAM row glitch: the open-row state is lost and the access pays a
    #: full precharge + activate reopen penalty (latency only).
    p_row_glitch: float = 0.0
    #: Bounded retry with exponential backoff for transient faults:
    #: attempt ``i`` adds ``backoff_base_cycles * 2**i`` latency; after
    #: ``max_retries`` retries the block is quarantined.
    max_retries: int = 3
    backoff_base_cycles: int = 16
    #: Run the shadow-memory invariant checker continuously.
    check_invariants: bool = False

    def __post_init__(self) -> None:
        for name in (
            "p_read_transient", "p_write_drop", "p_remap_corruption",
            "p_stage_tag_corruption", "p_table_corruption",
            "p_latency_spike", "p_row_glitch",
        ):
            value = getattr(self, name)
            _require(0.0 <= value <= 1.0, f"{name} must be in [0, 1]")
        _require(self.max_retries >= 0, "max_retries must be non-negative")
        _require(self.backoff_base_cycles >= 0, "backoff_base_cycles must be non-negative")
        _require(self.latency_spike_cycles >= 0, "latency_spike_cycles must be non-negative")
        _require(
            not (self.p_table_corruption > 0.0 and not self.check_invariants),
            "p_table_corruption requires check_invariants=True: only the "
            "shadow checker can detect and repair remap-table corruption",
        )

    def any_faults(self) -> bool:
        """True when at least one fault kind has a non-zero probability."""
        return any(
            getattr(self, name) > 0.0
            for name in (
                "p_read_transient", "p_write_drop", "p_remap_corruption",
                "p_stage_tag_corruption", "p_table_corruption",
                "p_latency_spike", "p_row_glitch",
            )
        )


@dataclass(frozen=True)
class BaryonConfig:
    """Top-level Baryon configuration bundling every subsystem.

    Use :meth:`cache_mode` / :meth:`flat_mode` / :meth:`fully_associative`
    for the paper's three headline variants, and ``dataclasses.replace``
    for ablations.
    """

    geometry: Geometry = field(default_factory=Geometry)
    layout: HybridLayout = field(default_factory=HybridLayout)
    stage: StageConfig = field(default_factory=StageConfig)
    remap_cache: RemapCacheConfig = field(default_factory=RemapCacheConfig)
    compression: CompressionConfig = field(default_factory=CompressionConfig)
    commit: CommitConfig = field(default_factory=CommitConfig)
    timings: MemoryTimings = field(default_factory=MemoryTimings)
    #: Keep evicted data compressed in slow memory (Sec. III-F optimization).
    compressed_writeback: bool = True
    #: Allow block-level replacements in the stage area (Fig. 13a ablation).
    two_level_replacement: bool = True
    #: Disable to model compression-free designs (Hybrid2) on the same
    #: machinery: every range has CF 1 and the Z bit never fires.
    compression_enabled: bool = True
    #: Disable to forbid sub-blocks of different blocks sharing a physical
    #: block (traditional sub-blocking, e.g. Hybrid2/SILC-FM/Footprint).
    share_physical_blocks: bool = True
    #: Fast-to-slow eviction policy for the committed area: "auto" picks
    #: the paper's choices (LRU for low-associative, FIFO for fully-
    #: associative); explicit values from {lru, fifo, lfu, clock, random}
    #: override (Sec. III-E lists them as interchangeable).
    fast_replacement: str = "auto"
    #: Fault-injection / recovery / invariant-checking configuration
    #: (None keeps the resilience layer completely out of the hot path).
    resilience: "ResilienceConfig | None" = None

    @staticmethod
    def cache_mode(**overrides) -> "BaryonConfig":
        """Low-associative cache scheme: all fast memory is a cache."""
        cfg = BaryonConfig()
        layout = dataclasses.replace(cfg.layout, flat_fraction=0.0, fully_associative=False)
        return dataclasses.replace(cfg, layout=layout, **overrides)

    @staticmethod
    def flat_mode(flat_fraction: float = 1.0, **overrides) -> "BaryonConfig":
        """Flat scheme: fast memory is OS-visible; data migrate by swapping."""
        cfg = BaryonConfig()
        layout = dataclasses.replace(cfg.layout, flat_fraction=flat_fraction)
        return dataclasses.replace(cfg, layout=layout, **overrides)

    @staticmethod
    def fully_associative(flat_fraction: float = 1.0, **overrides) -> "BaryonConfig":
        """Baryon-FA: fully-associative flat organization (Fig. 10)."""
        cfg = BaryonConfig.flat_mode(flat_fraction)
        layout = dataclasses.replace(cfg.layout, fully_associative=True)
        return dataclasses.replace(cfg, layout=layout, **overrides)

    def with_sub_block_size(self, sub_block_size: int) -> "BaryonConfig":
        """Baryon-64B and other sub-block granularity variants (Fig. 9)."""
        geometry = dataclasses.replace(self.geometry, sub_block_size=sub_block_size)
        return dataclasses.replace(self, geometry=geometry)

    def stage_tag_entry_bits(self) -> int:
        """Bits per stage tag entry (paper: 108 bits, 14 B; Fig. 5a)."""
        tag_bits = 21
        valid = 1
        slot_bits = 8 * self.geometry.sub_blocks_per_block
        lru = 3
        fifo = 3
        miss_cnt = self.stage.miss_counter_bits
        return tag_bits + valid + slot_bits + lru + fifo + miss_cnt

    def stage_tag_array_bytes(self) -> int:
        """Total on-chip stage tag array size (paper: 448 kB)."""
        blocks = self.stage.size_bytes // self.geometry.block_size
        return blocks * ((self.stage_tag_entry_bits() + 7) // 8)

    def remap_table_bytes(self) -> int:
        """Off-chip remap table size: 2 B per block over the full space."""
        total = self.layout.fast_capacity + self.layout.slow_capacity
        return (total // self.geometry.block_size) * 2


@dataclass(frozen=True)
class SimulationConfig:
    """Knobs of the trace-driven system simulator (`repro.sim`).

    The trace interleaves the accesses of all cores (rate-mode SPEC runs
    16 copies), so wall-clock time advances by each access's instruction
    gap divided by the core count, and a demand read's latency is charged
    divided by ``memory_level_parallelism`` — the aggregate overlap from
    out-of-order execution plus cross-thread concurrency. Queueing delays
    inside the device models are *not* diluted: when offered load exceeds
    channel bandwidth the queue grows without bound, which is exactly how
    bandwidth bloat turns into lost IPC on the real system.
    """

    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)
    base_cpi: float = 0.45
    memory_level_parallelism: float = 8.0
    warmup_fraction: float = 0.1
    seed: int = 1

    def __post_init__(self) -> None:
        _require(self.base_cpi > 0, "base_cpi must be positive")
        _require(self.memory_level_parallelism >= 1.0, "MLP must be >= 1")
        _require(0.0 <= self.warmup_fraction < 1.0, "warmup fraction must be in [0, 1)")
