"""Exception hierarchy for the Baryon reproduction.

All library-raised errors derive from :class:`ReproError` so callers can
catch one base class. Sub-classes separate configuration mistakes (user
input) from metadata/layout invariant violations (library bugs or corrupted
state) because the correct reaction differs: the former should be fixed by
the caller, the latter indicates an internal inconsistency and is also what
the property-based tests assert never happens.

The resilience layer (:mod:`repro.resilience`) adds a retryable/fatal
split on top: :class:`TransientDeviceError` marks injected device faults
that bounded retry may recover, :class:`CorruptionError` marks detected
metadata corruption (a :class:`MetadataError` subtype, so existing
metadata handling still catches it), and :class:`CellExecutionError`
carries a failed sweep cell's identity and attempt count back to matrix
callers.

The orchestration layer (:mod:`repro.parallel` +
:mod:`repro.resilience.chaos`) distinguishes three further failure
classes: :class:`WorkerHungError` (a worker that keeps heartbeating but
stops making progress — alive but stalled, unlike a dead worker whose
beats stop), :class:`PoisonCellError` (a cell that killed several
consecutive workers and was quarantined by the circuit breaker), and
:class:`CheckpointCorruptError` (a torn or bit-flipped checkpoint file;
a :class:`ConfigurationError` subtype so pre-salvage callers still catch
it, but distinct so the runner can attempt per-cell salvage instead of
refusing to resume).
"""

from typing import Optional


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class MetadataError(ReproError):
    """A metadata entry could not be encoded/decoded or is inconsistent."""


class LayoutError(ReproError):
    """A data-layout invariant (Rules 1-4 of the paper) was violated."""


class SimulationError(ReproError):
    """The simulator reached an impossible state."""


class TransientDeviceError(ReproError):
    """A device access failed transiently; the operation may be retried.

    ``site`` names the failing operation (e.g. ``"slow.read"``) so retry
    accounting and the event tracer can attribute the fault.
    """

    def __init__(self, message: str, site: Optional[str] = None) -> None:
        super().__init__(message)
        self.site = site


class CorruptionError(MetadataError):
    """Metadata corruption was detected (injected or real).

    Carries enough location context for the recovery paths: ``site``
    names the structure (``"remap_cache"``, ``"stage_tag"``,
    ``"remap_table"``), ``set_index``/``way`` locate a stage tag entry,
    and ``block_id`` names the affected logical block or super-block.
    """

    def __init__(
        self,
        message: str,
        site: Optional[str] = None,
        set_index: Optional[int] = None,
        way: Optional[int] = None,
        block_id: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.site = site
        self.set_index = set_index
        self.way = way
        self.block_id = block_id


class OracleViolation(ReproError):
    """The content oracle caught a data-integrity failure.

    Raised by :mod:`repro.validation` when a demand read returns bytes
    that differ from the last write to that cacheline, when a sub-block
    is resident in more than one tier at once (conservation), or when
    two designs serve different data for the same trace (differential).
    ``kind`` is one of ``"stale_read"``, ``"conservation"`` or
    ``"differential"``; the remaining fields locate the failure.
    """

    def __init__(
        self,
        message: str,
        kind: str = "stale_read",
        addr: Optional[int] = None,
        access_index: Optional[int] = None,
        location: Optional[str] = None,
        expected: Optional[int] = None,
        got: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.kind = kind
        self.addr = addr
        self.access_index = access_index
        self.location = location
        self.expected = expected
        self.got = got


class CellExecutionError(ReproError):
    """A sweep cell failed after its bounded retry budget.

    ``cell`` is the cell's matrix key (or index), ``attempts`` the number
    of attempts made; ``traceback_text`` preserves the worker's formatted
    traceback so the parent process can report the real failure site.
    """

    def __init__(
        self,
        message: str,
        cell=None,
        attempts: int = 1,
        traceback_text: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.cell = cell
        self.attempts = attempts
        self.traceback_text = traceback_text


class WorkerHungError(ReproError):
    """A pool worker kept heartbeating but stopped making progress.

    Distinct from a dead worker (whose heartbeats stop entirely and who
    trips the ``cell_timeout_s`` deadline): a hung worker holds its slot
    while its ``done`` counter stays flat past ``progress_timeout_s``.
    ``cell`` is the stalled cell's key, ``attempt`` the attempt that
    hung, ``stalled_done`` the progress count it froze at.
    """

    def __init__(
        self,
        message: str,
        cell=None,
        attempt: int = 1,
        stalled_done: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.cell = cell
        self.attempt = attempt
        self.stalled_done = stalled_done


class PoisonCellError(ReproError):
    """A cell was quarantined after killing several consecutive workers.

    The circuit breaker trips when one cell takes down
    ``quarantine_after`` workers in a row (crash, hang, or timeout each
    count); the sweep then records a degraded partial result instead of
    burning the whole retry budget on it. ``reasons`` lists the per-
    attempt failure tags, ``partial`` the last observed ``(done, total)``
    progress.
    """

    def __init__(
        self,
        message: str,
        cell=None,
        attempts: int = 1,
        reasons=None,
        partial=None,
    ) -> None:
        super().__init__(message)
        self.cell = cell
        self.attempts = attempts
        self.reasons = tuple(reasons) if reasons else ()
        self.partial = partial


class CheckpointCorruptError(ConfigurationError):
    """A checkpoint file is torn, truncated, or fails digest checks.

    A :class:`ConfigurationError` subtype so callers written before
    salvage existed still catch it, but distinct so the runner can route
    it to per-cell salvage (recover every record whose digest verifies)
    instead of refusing to resume. ``salvageable`` hints whether the
    header parsed well enough for salvage to be worth attempting.
    """

    def __init__(self, message: str, salvageable: bool = False) -> None:
        super().__init__(message)
        self.salvageable = salvageable
