"""Exception hierarchy for the Baryon reproduction.

All library-raised errors derive from :class:`ReproError` so callers can
catch one base class. Sub-classes separate configuration mistakes (user
input) from metadata/layout invariant violations (library bugs or corrupted
state) because the correct reaction differs: the former should be fixed by
the caller, the latter indicates an internal inconsistency and is also what
the property-based tests assert never happens.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class MetadataError(ReproError):
    """A metadata entry could not be encoded/decoded or is inconsistent."""


class LayoutError(ReproError):
    """A data-layout invariant (Rules 1-4 of the paper) was violated."""


class SimulationError(ReproError):
    """The simulator reached an impossible state."""
