"""Shared building blocks: geometry, address math, configuration, statistics.

Everything in the reproduction speaks in terms of the paper's data units:

* 64 B cachelines (the DDRx / LLC transfer unit),
* 256 B sub-blocks (Baryon's fetch/compression unit, eight per block),
* 2 kB blocks (the remap-table granularity, aligned with DRAM pages),
* 16 kB super-blocks (eight blocks; the stage-area tag granularity).

:class:`Geometry` captures those sizes and the derived address arithmetic;
:class:`BaryonConfig` and friends capture the Table I system configuration.
"""

from repro.common.address import (
    AddressMapper,
    block_aligned,
    iter_cachelines,
    iter_sub_blocks,
)
from repro.common.config import (
    BaryonConfig,
    CacheGeometry,
    Geometry,
    HierarchyConfig,
    HybridLayout,
    MemoryTimings,
    SimulationConfig,
    StageConfig,
    default_geometry,
)
from repro.common.errors import (
    CheckpointCorruptError,
    ConfigurationError,
    LayoutError,
    MetadataError,
    PoisonCellError,
    ReproError,
    WorkerHungError,
)
from repro.common.fsio import durable_replace
from repro.common.stats import CounterGroup, OnlineStats, RatioStat

__all__ = [
    "AddressMapper",
    "BaryonConfig",
    "CacheGeometry",
    "CheckpointCorruptError",
    "ConfigurationError",
    "CounterGroup",
    "Geometry",
    "HierarchyConfig",
    "HybridLayout",
    "LayoutError",
    "MemoryTimings",
    "MetadataError",
    "OnlineStats",
    "PoisonCellError",
    "RatioStat",
    "ReproError",
    "SimulationConfig",
    "StageConfig",
    "WorkerHungError",
    "block_aligned",
    "default_geometry",
    "durable_replace",
    "iter_cachelines",
    "iter_sub_blocks",
]
