"""Metrics registry: labeled counters, histograms, windowed time series.

This extends the raw :mod:`repro.common.stats` primitives (per-component
``CounterGroup`` bags) with the aggregation layer a long-running system
needs: metrics are *named once* in a registry, carry label dimensions
(design, workload, device, case ...), and export uniformly as JSON or
Prometheus-style text exposition.

The registry is pull-based and passive — components observe into it; it
never samples them — so simulation determinism is untouched and the whole
thing disappears when no registry is attached.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.common.stats import CounterGroup

#: Default cycle-latency buckets: roughly log-spaced over the range a
#: memory access can cost (L-cache-ish to queue-collapsed-NVM).
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    10, 20, 50, 100, 200, 400, 800, 1600, 3200, 6400, 12800,
)

LabelKey = Tuple[str, ...]


def _label_key(label_names: Sequence[str], labels: Mapping[str, Any]) -> LabelKey:
    if set(labels) != set(label_names):
        raise ValueError(
            f"expected labels {tuple(label_names)}, got {tuple(labels)}"
        )
    return tuple(str(labels[name]) for name in label_names)


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Backslash, double quote and newline are the three characters the
    format requires escaping inside quoted label values; anything else
    passes through verbatim.
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_labels(label_names: Sequence[str], key: LabelKey, extra: str = "") -> str:
    parts = [f'{n}="{_escape_label_value(v)}"' for n, v in zip(label_names, key)]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class LabeledCounter:
    """A monotonically increasing counter with fixed label dimensions."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", label_names: Sequence[str] = ()) -> None:
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = _label_key(self.label_names, labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_key(self.label_names, labels), 0.0)

    def series(self) -> Iterable[Tuple[Dict[str, str], float]]:
        for key, value in sorted(self._values.items()):
            yield dict(zip(self.label_names, key)), value

    def to_json(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "help": self.help,
            "labels": list(self.label_names),
            "values": [
                {"labels": labels, "value": value}
                for labels, value in self.series()
            ],
        }

    def exposition(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} counter"]
        if not self._values:
            return lines
        for key, value in sorted(self._values.items()):
            lines.append(f"{self.name}{_format_labels(self.label_names, key)} {_num(value)}")
        return lines


class Histogram:
    """Fixed-bucket histogram with sum/count (Prometheus semantics).

    Buckets are upper bounds; a ``+Inf`` bucket is implicit. Used for the
    latency, compressed-size and sub-blocks-fetched distributions.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        if not buckets:
            raise ValueError("histogram needs at least one bucket bound")
        self.name = name
        self.help = help
        self.bounds = tuple(sorted(float(b) for b in buckets))
        self.counts = [0] * (len(self.bounds) + 1)  # last = +Inf overflow
        self.total = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.total += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bound of the bucket
        holding the q-th sample); +Inf samples report the largest seen."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile requires 0 <= q <= 1")
        if not self.total:
            return 0.0
        target = q * self.total
        cumulative = 0
        for bound, count in zip(self.bounds, self.counts):
            cumulative += count
            if cumulative >= target:
                return bound
        return self.max if self.max is not None else math.inf

    def to_json(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "help": self.help,
            "buckets": list(self.bounds),
            "counts": list(self.counts),
            "count": self.total,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }

    def exposition(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} histogram"]
        cumulative = 0
        for bound, count in zip(self.bounds, self.counts):
            cumulative += count
            lines.append(f'{self.name}_bucket{{le="{_num(bound)}"}} {cumulative}')
        lines.append(f'{self.name}_bucket{{le="+Inf"}} {self.total}')
        lines.append(f"{self.name}_sum {_num(self.sum)}")
        lines.append(f"{self.name}_count {self.total}")
        return lines


class TimeSeries:
    """Windowed gauge: keeps one (tick, value) point every ``every`` ticks.

    ``tick(value)`` is the per-access call; the point survives only when
    the call count crosses the window, so a million-access run keeps a
    bounded, evenly spaced series (ring-bounded by ``capacity``).
    """

    kind = "series"

    def __init__(
        self, name: str, help: str = "", every: int = 1000, capacity: int = 4096
    ) -> None:
        if every <= 0:
            raise ValueError("series window must be positive")
        self.name = name
        self.help = help
        self.every = every
        self.capacity = capacity
        self.ticks = 0
        self.points: List[Tuple[int, float]] = []

    def tick(self, value: float) -> None:
        self.ticks += 1
        if self.ticks % self.every:
            return
        self.points.append((self.ticks, float(value)))
        if len(self.points) > self.capacity:
            # Decimate rather than truncate: halve resolution, keep span.
            self.points = self.points[::2]
            self.every *= 2

    def next_due(self) -> int:
        """The tick count at which the next point will be recorded.

        Lets a batched driver compute values only at recording ticks:
        calling :meth:`sample_at` at every due tick (re-querying after
        each, since decimation widens the window) and :meth:`advance_to`
        at the end yields a series identical to per-access :meth:`tick`.
        """
        return (self.ticks // self.every + 1) * self.every

    def sample_at(self, tick: int, value: float) -> None:
        """Record the point for ``tick`` (must be a due tick)."""
        self.ticks = tick
        if tick % self.every:
            return
        self.points.append((tick, float(value)))
        if len(self.points) > self.capacity:
            self.points = self.points[::2]
            self.every *= 2

    def advance_to(self, tick: int) -> None:
        """Advance the tick count without recording (trailing partial
        window, exactly like per-access ticks past the last due point)."""
        if tick > self.ticks:
            self.ticks = tick

    @property
    def last(self) -> float:
        return self.points[-1][1] if self.points else 0.0

    def to_json(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "help": self.help,
            "every": self.every,
            "points": [[t, v] for t, v in self.points],
        }

    def exposition(self) -> List[str]:
        # Prometheus has no native series type; expose the last value as
        # a gauge (the full series lives in the JSON export).
        return [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} gauge",
            f"{self.name} {_num(self.last)}",
        ]


class MetricsRegistry:
    """Named home of every metric; registration is idempotent by name."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    # -- registration -------------------------------------------------------
    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> LabeledCounter:
        return self._register(name, LabeledCounter, help=help, label_names=labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._register(name, Histogram, help=help, buckets=buckets)

    def series(
        self, name: str, help: str = "", every: int = 1000, capacity: int = 4096
    ) -> TimeSeries:
        return self._register(
            name, TimeSeries, help=help, every=every, capacity=capacity
        )

    def _register(self, name: str, cls, **kwargs) -> Any:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        metric = cls(name, **kwargs)
        self._metrics[name] = metric
        return metric

    def get(self, name: str) -> Optional[Any]:
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self) -> Iterable[str]:
        return iter(self._metrics)

    # -- ingestion ----------------------------------------------------------
    def ingest_counter_group(
        self,
        name: str,
        group: CounterGroup,
        label: str = "event",
        help: str = "",
        **const_labels: Any,
    ) -> LabeledCounter:
        """Copy a component's ``CounterGroup`` snapshot into one labeled
        counter, one label value per counter key."""
        labels = (*const_labels.keys(), label)
        counter = self.counter(name, help=help, labels=labels)
        for key, value in group.as_dict().items():
            counter.inc(value, **const_labels, **{label: key})
        return counter

    # -- export -------------------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        return {name: metric.to_json() for name, metric in sorted(self._metrics.items())}

    def to_prometheus(self) -> str:
        lines: List[str] = []
        for _, metric in sorted(self._metrics.items()):
            lines.extend(metric.exposition())
        return "\n".join(lines) + ("\n" if lines else "")


def _num(value: float) -> str:
    """Render a number the way Prometheus text format expects."""
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)
