"""Profiling hooks: per-phase wall-clock and instruction accounting.

The system simulator is a pure-Python inner loop, so the question "where
does the wall-clock time go" (cache hierarchy vs controller, warmup vs
measured window) is answered here rather than by an external profiler —
``time.perf_counter`` deltas accumulated per named phase, plus free-form
integer counters (instructions retired per phase, accesses per phase).

A :class:`NullProfiler` stands in when profiling is off; hook sites guard
on ``profiler.enabled`` so the timed path costs nothing in normal runs.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator


class NullProfiler:
    """Disabled profiler: ``enabled`` False, every operation a no-op."""

    enabled = False

    def add(self, phase: str, seconds: float, calls: int = 1) -> None:
        pass

    def count(self, name: str, amount: int = 1) -> None:
        pass

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        yield

    def report(self) -> Dict[str, Any]:
        return {"phases": {}, "counters": {}}


#: Shared no-op profiler.
NULL_PROFILER = NullProfiler()


class PhaseProfiler:
    """Accumulates wall-clock seconds and call counts per named phase."""

    enabled = True

    def __init__(self, clock=time.perf_counter) -> None:
        self.clock = clock
        self.seconds: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}
        self.counters: Dict[str, int] = {}

    # -- timing -------------------------------------------------------------
    def add(self, phase: str, seconds: float, calls: int = 1) -> None:
        """Credit ``seconds`` of wall time to ``phase`` (hot-loop form)."""
        self.seconds[phase] = self.seconds.get(phase, 0.0) + seconds
        self.calls[phase] = self.calls.get(phase, 0) + calls

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Context-manager form for coarse phases (warmup, measured...)."""
        start = self.clock()
        try:
            yield
        finally:
            self.add(name, self.clock() - start)

    # -- counters -------------------------------------------------------------
    def count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    # -- reporting ------------------------------------------------------------
    def report(self) -> Dict[str, Any]:
        phases = {
            name: {
                "seconds": self.seconds[name],
                "calls": self.calls.get(name, 0),
                "us_per_call": (
                    1e6 * self.seconds[name] / self.calls[name]
                    if self.calls.get(name)
                    else 0.0
                ),
            }
            for name in self.seconds
        }
        return {"phases": phases, "counters": dict(self.counters)}

    def format_report(self) -> str:
        """Fixed-width table for terminal output (``--profile``)."""
        report = self.report()
        lines = ["phase                    seconds      calls  us/call"]
        for name, row in sorted(
            report["phases"].items(), key=lambda kv: -kv[1]["seconds"]
        ):
            lines.append(
                f"{name:<22} {row['seconds']:>9.4f} {row['calls']:>10d} "
                f"{row['us_per_call']:>8.2f}"
            )
        if report["counters"]:
            lines.append("counters:")
            for name, value in sorted(report["counters"].items()):
                lines.append(f"  {name:<28} {value}")
        return "\n".join(lines)
