"""`repro.obs` — the observability layer of the simulation pipeline.

Three orthogonal pieces, all zero-cost when not attached:

* :class:`~repro.obs.tracer.EventTracer` — structured, ring-buffered,
  optionally sampled event records (JSONL) from hook points across the
  controller, stage area, commit policy, remap cache, row buffers and
  baselines;
* :class:`~repro.obs.metrics.MetricsRegistry` — labeled counters,
  histograms and windowed time series, exported as JSON or
  Prometheus-style text exposition;
* :class:`~repro.obs.profiler.PhaseProfiler` — per-phase wall-clock and
  instruction accounting inside :class:`~repro.sim.system.SystemSimulator`.

:func:`attach_observability` wires a tracer/registry into any controller
design (Baryon or baseline) by duck type, so ``run_one`` and the CLI can
instrument every design uniformly.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.aggregate import (
    SHARD_LABEL,
    aggregate_shard_snapshots,
    merge_snapshot,
    sum_over_label,
)
from repro.obs.manifest import (
    MANIFEST_MAGIC,
    MANIFEST_VERSION,
    audit_manifest,
    build_manifest,
    counter_digest,
    diff_manifests,
    format_diff,
    load_manifest,
    result_digests,
    write_manifest,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    LabeledCounter,
    MetricsRegistry,
    TimeSeries,
)
from repro.obs.profiler import NULL_PROFILER, NullProfiler, PhaseProfiler
from repro.obs.progress import (
    HEARTBEAT_SCHEMA,
    ProgressTracker,
    make_cli_tracker,
    make_heartbeat,
)
from repro.obs.spans import (
    NULL_SPANS,
    NullSpanTracer,
    Span,
    SpanTracer,
    format_span_tree,
    load_spans,
)
from repro.obs.tracer import (
    EVENT_SCHEMA,
    NULL_TRACER,
    EventTracer,
    NullTracer,
    case_breakdown,
    load_jsonl,
)

__all__ = [
    "EVENT_SCHEMA",
    "HEARTBEAT_SCHEMA",
    "MANIFEST_MAGIC",
    "MANIFEST_VERSION",
    "NULL_TRACER",
    "NULL_PROFILER",
    "NULL_SPANS",
    "DEFAULT_LATENCY_BUCKETS",
    "SHARD_LABEL",
    "EventTracer",
    "NullTracer",
    "NullSpanTracer",
    "Histogram",
    "LabeledCounter",
    "MetricsRegistry",
    "ProgressTracker",
    "Span",
    "SpanTracer",
    "TimeSeries",
    "NullProfiler",
    "PhaseProfiler",
    "aggregate_shard_snapshots",
    "attach_observability",
    "audit_manifest",
    "build_manifest",
    "case_breakdown",
    "collect_run_metrics",
    "counter_digest",
    "diff_manifests",
    "format_diff",
    "format_span_tree",
    "load_jsonl",
    "load_manifest",
    "load_spans",
    "make_cli_tracker",
    "make_heartbeat",
    "merge_snapshot",
    "result_digests",
    "sum_over_label",
    "write_manifest",
]


def attach_observability(
    controller,
    tracer: Optional[EventTracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> None:
    """Wire a tracer and/or metrics registry into a controller tree.

    Works on any design by duck type: the controller's own ``obs``
    attribute plus every known instrumented sub-component that exists
    (stage area, commit policy, remap cache, device row buffers).
    Wrapper designs that delegate to an inner controller (Hybrid2) are
    unwrapped so the hooks land where the access flow actually runs.
    """
    inner = getattr(controller, "_inner", None)
    if inner is not None:
        attach_observability(inner, tracer, metrics)
    if tracer is not None:
        controller.obs = tracer
        for attr in ("stage", "policy", "remap_cache", "faults", "recovery", "checker"):
            component = getattr(controller, attr, None)
            if component is not None:
                component.obs = tracer
        devices = getattr(controller, "devices", None)
        if devices is not None:
            for device in (devices.fast, devices.slow):
                if device.row_buffer is not None:
                    device.row_buffer.obs = tracer
    if metrics is not None:
        bind = getattr(controller, "bind_metrics", None)
        if bind is not None:
            bind(metrics)


def collect_run_metrics(
    registry: MetricsRegistry, controller, result=None, **const_labels
) -> MetricsRegistry:
    """Snapshot a finished controller's counter state into the registry.

    Turns the per-component :class:`~repro.common.stats.CounterGroup`
    bags into labeled counters with stable metric names:

    * ``repro_access_cases_total{case=...}`` — the Fig. 3 breakdown;
    * ``repro_controller_events_total{event=...}`` — everything else the
      controller counted;
    * ``repro_device_bytes_total{device=...,op=...}`` and
      ``repro_device_transfers_total{device=...,op=...}``;
    * ``repro_remap_cache_total{outcome=...}`` and
      ``repro_rowbuffer_total{outcome=...}`` when those components exist;
    * ``repro_compression_total{event=...}`` when a content-backed oracle
      carries a real :class:`~repro.compression.engine.CompressionEngine`
      — including the memo effectiveness events ``memo_hits`` /
      ``memo_misses`` / ``memo_evictions`` (see docs/performance.md);
    * ``repro_fault_total{kind=...}``, ``repro_recovery_total{action=...}``
      and ``repro_checker_total{event=...}`` when the resilience layer is
      active (see docs/resilience.md).
    """
    controller = getattr(controller, "_inner", controller)
    stats = getattr(controller, "stats", None)
    if stats is not None:
        cases = registry.counter(
            "repro_access_cases_total",
            help="accesses resolved per Fig. 3 access case",
            labels=(*const_labels.keys(), "case"),
        )
        events = registry.counter(
            "repro_controller_events_total",
            help="controller event counters",
            labels=(*const_labels.keys(), "event"),
        )
        for key, value in stats.as_dict().items():
            if key.startswith("case_"):
                cases.inc(value, **const_labels, case=key[len("case_"):])
            else:
                events.inc(value, **const_labels, event=key)

    devices = getattr(controller, "devices", None)
    if devices is not None:
        dev_bytes = registry.counter(
            "repro_device_bytes_total",
            help="bytes moved per device and operation",
            labels=(*const_labels.keys(), "device", "op"),
        )
        dev_ops = registry.counter(
            "repro_device_transfers_total",
            help="transfer operations per device",
            labels=(*const_labels.keys(), "device", "op"),
        )
        for device in (devices.fast, devices.slow):
            snap = device.stats.as_dict()
            for op in ("read", "write"):
                dev_bytes.inc(
                    snap.get(f"{op}_bytes", 0),
                    **const_labels, device=device.name, op=op,
                )
                dev_ops.inc(
                    snap.get(f"{op}s", 0),
                    **const_labels, device=device.name, op=op,
                )
            if device.row_buffer is not None:
                rb = registry.counter(
                    "repro_rowbuffer_total",
                    help="row-buffer outcomes",
                    labels=(*const_labels.keys(), "device", "outcome"),
                )
                for outcome in ("row_hits", "row_misses", "precharges", "activations"):
                    rb.inc(
                        device.row_buffer.stats.get(outcome),
                        **const_labels, device=device.name, outcome=outcome,
                    )

    engine = getattr(getattr(controller, "oracle", None), "engine", None)
    if engine is not None and getattr(engine, "stats", None) is not None:
        comp = registry.counter(
            "repro_compression_total",
            help="compression-engine events (algorithm wins, memo hits/misses)",
            labels=(*const_labels.keys(), "event"),
        )
        for event, value in engine.stats.as_dict().items():
            comp.inc(value, **const_labels, event=event)

    faults = getattr(controller, "faults", None)
    if faults is not None:
        fault_counter = registry.counter(
            "repro_fault_total",
            help="injected faults per kind (repro.resilience)",
            labels=(*const_labels.keys(), "kind"),
        )
        for key, value in faults.stats.as_dict().items():
            kind = key[len("injected_"):] if key.startswith("injected_") else key
            fault_counter.inc(value, **const_labels, kind=kind)

    recovery = getattr(controller, "recovery", None)
    if recovery is not None and recovery.stats.as_dict():
        recovery_counter = registry.counter(
            "repro_recovery_total",
            help="recovery actions taken (retries, repairs, quarantines)",
            labels=(*const_labels.keys(), "action"),
        )
        for action, value in recovery.stats.as_dict().items():
            recovery_counter.inc(value, **const_labels, action=action)

    checker = getattr(controller, "checker", None)
    if checker is not None and checker.stats.as_dict():
        checker_counter = registry.counter(
            "repro_checker_total",
            help="shadow-checker verifications and detections",
            labels=(*const_labels.keys(), "event"),
        )
        for event, value in checker.stats.as_dict().items():
            checker_counter.inc(value, **const_labels, event=event)

    remap_cache = getattr(controller, "remap_cache", None)
    if remap_cache is not None:
        rc = registry.counter(
            "repro_remap_cache_total",
            help="remap-cache probe outcomes",
            labels=(*const_labels.keys(), "outcome"),
        )
        for outcome in ("hits", "misses", "evictions"):
            rc.inc(remap_cache.stats.get(outcome), **const_labels, outcome=outcome)

    if result is not None:
        summary = registry.counter(
            "repro_run_summary",
            help="headline scalar results of the measured window",
            labels=(*const_labels.keys(), "metric"),
        )
        for metric, value in result.summary().items():
            summary.inc(value, **const_labels, metric=metric)
    return registry
