"""Run manifests: provenance-stamped summaries of a sweep.

A manifest is one JSON document written next to a sweep's checkpoint or
result file answering "which config and code produced this, and what
came out": the plan fingerprint (reusing
:func:`repro.resilience.checkpoint.plan_fingerprint`, so a manifest and
a checkpoint of the same run agree by construction), the git revision,
package versions, a SHA-256 digest over every merged counter, per-cell
result digests, and wall/CPU time.

``python -m repro manifest diff A B`` compares two manifests and
classifies differences: **identity** (fingerprint, counters, results —
two runs of the same sweep must match here bit for bit),
**environment** (git revision, package versions), and **timing**
(wall/CPU, always expected to differ). The diff exits non-zero only on
identity differences.
"""

from __future__ import annotations

import hashlib
import json
import platform
import subprocess
from time import time as _wall
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.common.errors import ConfigurationError
from repro.common.fsio import durable_replace
from repro.common.stats import CounterGroup

MANIFEST_MAGIC = "repro-run-manifest"
MANIFEST_VERSION = 1

#: Manifest keys whose divergence means the runs are *different runs*
#: (as opposed to the same run re-executed elsewhere or at another time).
IDENTITY_KEYS = ("fingerprint", "counter_digest", "results")
ENVIRONMENT_KEYS = ("git_revision", "packages", "hostname")
TIMING_KEYS = ("wall_s", "cpu_s", "created_unix")


def git_revision(cwd: Optional[str] = None) -> Optional[str]:
    """The current ``git rev-parse HEAD``, or ``None`` outside a repo."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=5.0,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    revision = proc.stdout.strip()
    return revision if proc.returncode == 0 and revision else None


def package_versions() -> Dict[str, str]:
    """Versions of the interpreter and the packages results depend on."""
    versions = {"python": platform.python_version()}
    try:
        import numpy

        versions["numpy"] = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dep in CI
        pass
    return versions


def counter_digest(groups: Mapping[str, CounterGroup]) -> str:
    """SHA-256 over every (group, counter, value) triple, order-free.

    The digest is computed over sorted lines, so two registries holding
    the same totals hash identically regardless of fold order.
    """
    digest = hashlib.sha256()
    for group_name in sorted(groups):
        for key, value in sorted(groups[group_name].as_dict().items()):
            digest.update(f"{group_name}.{key}={value}\n".encode("utf-8"))
    return digest.hexdigest()


def _result_digest(result_dict: Mapping[str, Any]) -> str:
    blob = json.dumps(result_dict, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _cpu_seconds() -> Optional[float]:
    """Self + children CPU seconds (workers included on fork platforms)."""
    try:
        import resource

        own = resource.getrusage(resource.RUSAGE_SELF)
        kids = resource.getrusage(resource.RUSAGE_CHILDREN)
    except (ImportError, OSError):  # pragma: no cover - non-POSIX
        return None
    return own.ru_utime + own.ru_stime + kids.ru_utime + kids.ru_stime


def build_manifest(
    fingerprint: str,
    outcome,
    plan: Sequence,
    cpu_s: Optional[float] = None,
) -> Dict[str, Any]:
    """Assemble the manifest for one finished matrix run.

    ``outcome`` is the :class:`~repro.parallel.MatrixOutcome`;
    ``fingerprint`` the plan fingerprint the checkpoint layer computed
    (shared, not recomputed, so the two artifacts cannot drift).
    """
    counters = {
        "controller": outcome.counters,
        "devices": outcome.device_counters,
        "compression": outcome.compression_counters,
        "resilience": outcome.resilience_counters,
    }
    results = {
        "/".join(str(part) for part in key): {
            "digest": _result_digest(result.to_dict()),
            "ipc": result.ipc,
            "serve_rate": result.serve_rate,
            "bandwidth_bloat": result.bandwidth_bloat,
        }
        for key, result in sorted(outcome.results.items())
    }
    return {
        "magic": MANIFEST_MAGIC,
        "version": MANIFEST_VERSION,
        "fingerprint": fingerprint,
        "git_revision": git_revision(),
        "packages": package_versions(),
        "hostname": platform.node(),
        "cells": outcome.cells,
        "jobs": outcome.jobs,
        "failed": sorted(
            "/".join(str(part) for part in key) for key in outcome.failed
        ),
        "quarantined": sorted(
            "/".join(str(part) for part in key)
            for key in getattr(outcome, "quarantined", {})
        ),
        "interrupted": bool(getattr(outcome, "interrupted", False)),
        "retries": outcome.retries,
        "resumed": outcome.resumed,
        "counter_digest": counter_digest(counters),
        "serve": {"hits": outcome.serve.hits, "total": outcome.serve.total},
        "results": results,
        "wall_s": outcome.elapsed_s,
        "cpu_s": _cpu_seconds() if cpu_s is None else cpu_s,
        "created_unix": _wall(),
    }


def result_digests(manifest: Mapping[str, Any], plan: Sequence) -> Dict[int, str]:
    """Per-cell result digests keyed by *plan index* instead of key
    string — the independent witness checkpoint salvage verifies
    against."""
    results = manifest.get("results")
    if not isinstance(results, dict):
        return {}
    digests: Dict[int, str] = {}
    for cell in plan:
        entry = results.get("/".join(str(part) for part in cell.key))
        if isinstance(entry, dict) and isinstance(entry.get("digest"), str):
            digests[cell.index] = entry["digest"]
    return digests


def audit_manifest(manifest: Mapping[str, Any], outcome, plan: Sequence) -> Dict[str, Any]:
    """End-of-run integrity audit: the manifest *on disk* vs a fresh fold.

    Re-computes the counter digest over the outcome's merged groups and
    every per-cell result digest, and compares them to what the manifest
    document records. A clean run trivially passes; a torn manifest
    write, a fold bug, or post-hoc tampering shows up as ``mismatches``.
    """
    counters = {
        "controller": outcome.counters,
        "devices": outcome.device_counters,
        "compression": outcome.compression_counters,
        "resilience": outcome.resilience_counters,
    }
    mismatches: List[str] = []
    checked = 1
    want = manifest.get("counter_digest")
    got = counter_digest(counters)
    if want != got:
        mismatches.append(f"counter_digest: manifest {want!r} != recomputed {got!r}")
    recorded = manifest.get("results")
    recorded = recorded if isinstance(recorded, dict) else {}
    for key, result in sorted(outcome.results.items()):
        checked += 1
        key_str = "/".join(str(part) for part in key)
        entry = recorded.get(key_str)
        if not isinstance(entry, dict):
            mismatches.append(f"results[{key_str}]: missing from manifest")
            continue
        digest = _result_digest(result.to_dict())
        if entry.get("digest") != digest:
            mismatches.append(
                f"results[{key_str}]: manifest {entry.get('digest')!r} "
                f"!= recomputed {digest!r}"
            )
    for key_str in recorded:
        if tuple(key_str.split("/")) not in {
            tuple(str(part) for part in key) for key in outcome.results
        }:
            checked += 1
            mismatches.append(f"results[{key_str}]: not in the merged outcome")
    return {"ok": not mismatches, "checked": checked, "mismatches": mismatches}


def write_manifest(
    path: str,
    manifest: Mapping[str, Any],
    mutate: Optional[Callable[[int, str], None]] = None,
) -> None:
    """Durably write the manifest (fsync + ``os.replace`` + dir fsync).

    ``mutate`` is forwarded to
    :func:`~repro.common.fsio.durable_replace` — the chaos injector's
    hook for simulating ENOSPC or torn writes on manifest emission
    (passed by the runner so this module never imports the resilience
    layer).
    """
    data = (
        json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    ).encode("utf-8")
    durable_replace(path, data, prefix=".manifest-", mutate=mutate)


def load_manifest(path: str) -> Dict[str, Any]:
    """Load and validate a manifest written by :func:`write_manifest`."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as err:
        raise ConfigurationError(f"cannot read manifest {path!r}: {err}") from err
    except json.JSONDecodeError as err:
        raise ConfigurationError(
            f"manifest {path!r} is not valid JSON: {err}"
        ) from err
    if not isinstance(document, dict) or document.get("magic") != MANIFEST_MAGIC:
        raise ConfigurationError(
            f"{path!r} is not a repro run manifest (missing magic)"
        )
    version = document.get("version")
    if version != MANIFEST_VERSION:
        raise ConfigurationError(
            f"manifest {path!r} has version {version!r}, this build reads "
            f"version {MANIFEST_VERSION}"
        )
    return document


def diff_manifests(
    a: Mapping[str, Any], b: Mapping[str, Any]
) -> Dict[str, List[str]]:
    """Classified differences between two manifests.

    Returns ``{"identity": [...], "environment": [...], "timing": [...]}``
    — empty ``identity`` means the two manifests describe the same sweep
    producing the same numbers.
    """
    diff: Dict[str, List[str]] = {"identity": [], "environment": [], "timing": []}

    def _compare(bucket: str, key: str) -> None:
        va, vb = a.get(key), b.get(key)
        if va == vb:
            return
        if key == "results" and isinstance(va, dict) and isinstance(vb, dict):
            for cell in sorted(set(va) | set(vb)):
                ra, rb = va.get(cell), vb.get(cell)
                if ra == rb:
                    continue
                if ra is None or rb is None:
                    diff[bucket].append(
                        f"results[{cell}]: only in {'B' if ra is None else 'A'}"
                    )
                else:
                    fields = ", ".join(
                        f"{f}: {ra.get(f)} != {rb.get(f)}"
                        for f in ("digest", "ipc", "serve_rate", "bandwidth_bloat")
                        if ra.get(f) != rb.get(f)
                    )
                    diff[bucket].append(f"results[{cell}]: {fields}")
            return
        diff[bucket].append(f"{key}: {va!r} != {vb!r}")

    for key in IDENTITY_KEYS + ("cells", "failed", "serve", "quarantined"):
        _compare("identity", key)
    for key in ENVIRONMENT_KEYS:
        _compare("environment", key)
    for key in TIMING_KEYS + ("jobs", "retries", "resumed", "interrupted"):
        _compare("timing", key)
    return diff


def format_diff(diff: Mapping[str, List[str]]) -> str:
    """Human-readable rendering of :func:`diff_manifests` output."""
    lines: List[str] = []
    for bucket in ("identity", "environment", "timing"):
        entries = diff.get(bucket, ())
        if not entries:
            continue
        lines.append(f"{bucket} differences:")
        lines.extend(f"  {entry}" for entry in entries)
    if not lines:
        return "manifests are identical"
    if not diff.get("identity"):
        lines.insert(0, "runs are equivalent (identity fields match)")
    return "\n".join(lines)
