"""Structured event tracing for the simulation pipeline.

The tracer is the "flight recorder" of the observability layer: components
emit typed event records (access resolved, stage insert/evict, commit
decision with its Eq. 1 cost terms, remap-cache probe, row-buffer
open/close, writeback) into a bounded ring buffer, optionally mirrored to
a JSONL sink as they happen.

Design constraints, in order:

1. **Zero cost when disabled.** Every hook site is guarded by a single
   ``if tracer.enabled:`` test against :data:`NULL_TRACER`, whose
   ``enabled`` is ``False``; the ``emit`` call is never reached on the
   hot path of an untraced run.
2. **Bounded memory.** The ring buffer (``collections.deque`` with
   ``maxlen``) silently drops the oldest events; ``emitted`` vs
   ``len(tracer)`` tells you how much history survived. Attach a
   ``sink`` for a complete stream.
3. **Plain dict events.** An event is ``{"seq": int, "type": str,
   ...fields}`` — trivially JSON-serializable and cheap to build.

The known event types and their fields are documented in
:data:`EVENT_SCHEMA`; emitting an unknown type is allowed (the schema is
documentation and validation support, not a straitjacket).
"""

from __future__ import annotations

import json
from collections import Counter, deque
from typing import Any, Dict, Iterable, Iterator, List, Optional, TextIO

#: Event types emitted by the built-in hook points, with their fields.
#: Every event also carries ``seq`` (global emission number, 1-based)
#: and ``type``.
EVENT_SCHEMA: Dict[str, tuple] = {
    # One memory-level access fully resolved by a controller.
    "access": ("t", "addr", "block", "case", "write", "latency", "fast", "overflow"),
    # A range slot entered the stage area.
    "stage_insert": ("set", "way", "blk_off", "sub_start", "cf", "dirty", "zero"),
    # A stage tag entry was dropped (commit or eviction emptied it).
    "stage_evict": ("set", "way", "tag", "occupied"),
    # Eq. 1 evaluated for a block-level replacement victim.
    "commit_decision": (
        "commit", "benefit", "stability", "dirty",
        "mru_miss_cnt", "victim_miss_cnt", "dirty_stage", "dirty_area",
    ),
    # Remap-cache probe (super-block line granularity).
    "remap_cache": ("super", "hit"),
    # Row-buffer state transition in a banked device.
    "rowbuffer": ("bank", "row", "hit", "closed"),
    # Dirty data moved back toward slow memory.
    "writeback": ("block", "bytes", "kind"),
    # A fault-injection draw fired (see repro.resilience.faults).
    "fault": ("site", "kind"),
    # A recovery action ran (retry, repair, quarantine, degraded serve);
    # events may carry extra context fields beyond these.
    "recovery": ("action", "site", "attempt"),
}


class NullTracer:
    """The disabled tracer: ``enabled`` is False and every call no-ops.

    Hook sites test ``tracer.enabled`` before building event fields, so a
    :class:`NullTracer` never costs more than one attribute load and a
    branch per hook.
    """

    enabled = False

    def emit(self, etype: str, **fields: Any) -> None:  # pragma: no cover
        pass

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass

    def __len__(self) -> int:
        return 0


#: Shared no-op tracer; components default their ``obs`` attribute to it.
NULL_TRACER = NullTracer()


class EventTracer:
    """Ring-buffered, optionally sampled, JSONL-capable event recorder.

    ``capacity``
        Ring-buffer size in events; the oldest events are dropped first.
    ``sample_every``
        Keep one event in every ``sample_every`` emissions (global
        counter). ``1`` keeps everything — required when the stream must
        reconstruct exact counter totals.
    ``sink``
        Optional text file object; sampled events are written to it as
        JSON lines immediately (in addition to the ring buffer).
    """

    enabled = True

    def __init__(
        self,
        capacity: int = 65536,
        sample_every: int = 1,
        sink: Optional[TextIO] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("tracer capacity must be positive")
        if sample_every <= 0:
            raise ValueError("sample_every must be positive")
        self.capacity = capacity
        self.sample_every = sample_every
        self.ring: "deque[Dict[str, Any]]" = deque(maxlen=capacity)
        self.emitted = 0
        self.sampled = 0
        self._sink = sink

    # -- emission -----------------------------------------------------------
    def emit(self, etype: str, **fields: Any) -> None:
        """Record one event; sampling and ring bounds applied here."""
        self.emitted += 1
        if self.sample_every > 1 and self.emitted % self.sample_every:
            return
        self.sampled += 1
        event: Dict[str, Any] = {"seq": self.emitted, "type": etype}
        event.update(fields)
        self.ring.append(event)
        if self._sink is not None:
            self._sink.write(json.dumps(event, separators=(",", ":")) + "\n")

    def flush(self) -> None:
        """Push buffered sink writes to the OS without detaching.

        :meth:`SystemSimulator._finalize <repro.sim.system.SystemSimulator>`
        calls this at the end of every run, so a short traced run whose
        caller never reaches :meth:`close` still has its tail events on
        disk deterministically.
        """
        if self._sink is not None:
            self._sink.flush()

    def close(self) -> None:
        """Flush and detach the sink (the caller owns closing the file).

        Idempotent: closing an already-closed tracer is a no-op.
        """
        if self._sink is not None:
            self._sink.flush()
            self._sink = None

    def clear(self) -> None:
        self.ring.clear()
        self.emitted = 0
        self.sampled = 0

    # -- inspection ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self.ring)

    @property
    def dropped(self) -> int:
        """Sampled events that fell off the ring buffer."""
        return self.sampled - len(self.ring)

    def events(self, etype: Optional[str] = None) -> Iterator[Dict[str, Any]]:
        """Iterate buffered events, optionally filtered by type."""
        if etype is None:
            return iter(self.ring)
        return (e for e in self.ring if e["type"] == etype)

    def counts_by_type(self) -> Dict[str, int]:
        return dict(Counter(e["type"] for e in self.ring))

    def case_breakdown(self) -> Dict[str, int]:
        """Fig. 3-style access-case counts reconstructed from the stream."""
        return case_breakdown(self.ring)

    # -- persistence --------------------------------------------------------
    def dump_jsonl(self, path: str) -> int:
        """Write the buffered events to ``path`` as JSONL; returns count."""
        with open(path, "w", encoding="utf-8") as fh:
            for event in self.ring:
                fh.write(json.dumps(event, separators=(",", ":")) + "\n")
        return len(self.ring)


def load_jsonl(path: str) -> List[Dict[str, Any]]:
    """Read a JSONL trace back into a list of event dicts.

    A truncated or otherwise malformed line raises
    :class:`~repro.common.errors.ConfigurationError` naming the line, so
    a half-written trace (e.g. from a crashed run) fails loudly instead
    of silently yielding a partial event list.
    """
    from repro.common.errors import ConfigurationError

    events: List[Dict[str, Any]] = []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError as err:
                    raise ConfigurationError(
                        f"trace file {path!r} is corrupt at line {lineno}: {err}"
                    ) from err
                if not isinstance(event, dict):
                    raise ConfigurationError(
                        f"trace file {path!r} line {lineno} is not an event "
                        f"object (got {type(event).__name__})"
                    )
                events.append(event)
    except OSError as err:
        raise ConfigurationError(f"cannot read trace file {path!r}: {err}") from err
    return events


def case_breakdown(events: Iterable[Dict[str, Any]]) -> Dict[str, int]:
    """Access-case counts from any event iterable (stream or ring)."""
    return dict(
        Counter(e["case"] for e in events if e.get("type") == "access")
    )
