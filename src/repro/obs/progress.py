"""Live sweep progress: worker heartbeats, ETA, rendering, JSONL sink.

A *heartbeat* is one JSON-compatible dict a worker emits every
``heartbeat_every`` simulated accesses (plus one at cell start and one
at cell end), carrying enough to answer "how far along is this sweep
and how fast is it going" without waiting for the matrix to return:

``{"type": "heartbeat", "cell": <plan index>, "workload": ...,
"design": ..., "seed": ..., "attempt": ..., "done": <accesses run>,
"total": <trace length>, "elapsed_s": ..., "accesses_per_s": ...,
"pid": ..., "ts": <unix seconds>}``

Cell completion/failure is reported the same way with ``type``
``"cell_done"`` / ``"cell_failed"``. :data:`HEARTBEAT_SCHEMA` documents
the field sets.

:class:`ProgressTracker` is the parent-side consumer: it folds
heartbeats into per-cell state, computes an aggregate rate and ETA,
optionally re-renders one status line on a terminal stream
(``--progress``), and optionally mirrors every event to a
machine-readable JSONL sink (``--progress-out``). The matrix runner
also feeds the same heartbeats into dead-worker detection: a cell's
deadline is measured from its *last heartbeat*, not its start, so a
slow-but-alive cell is never reaped while a genuinely dead worker still
trips the timeout.
"""

from __future__ import annotations

import json
import sys
from time import monotonic
from time import time as _wall
from typing import Any, Dict, Optional, TextIO

#: Event types a progress stream contains, with their fields (all events
#: also carry ``type`` and ``ts``, unix seconds).
HEARTBEAT_SCHEMA: Dict[str, tuple] = {
    # Periodic worker-side progress report for one running cell.
    "heartbeat": ("cell", "workload", "design", "seed", "attempt",
                  "done", "total", "elapsed_s", "accesses_per_s", "pid"),
    # A cell finished and its payload was accepted by the parent.
    "cell_done": ("cell", "workload", "design", "seed", "attempt",
                  "elapsed_s"),
    # A cell exhausted its retry budget (mirror of MatrixOutcome.failed).
    "cell_failed": ("cell", "workload", "design", "seed", "attempt",
                    "error"),
    # The poison-cell circuit breaker tripped: the cell killed several
    # consecutive workers and was set aside with a degraded partial
    # result (mirror of MatrixOutcome.quarantined).
    "cell_quarantined": ("cell", "workload", "design", "seed", "attempt",
                         "reasons", "done", "total"),
}


def make_heartbeat(cell, attempt: int, done: int, total: int,
                   elapsed_s: float, pid: int) -> Dict[str, Any]:
    """Build one heartbeat event for a plan cell (worker side)."""
    return {
        "type": "heartbeat",
        "ts": _wall(),
        "cell": cell.index,
        "workload": cell.workload,
        "design": cell.design,
        "seed": cell.seed,
        "attempt": attempt,
        "done": done,
        "total": total,
        "elapsed_s": elapsed_s,
        "accesses_per_s": (done / elapsed_s) if elapsed_s > 0 else 0.0,
        "pid": pid,
    }


class ProgressTracker:
    """Parent-side fold of the heartbeat stream into live sweep status.

    ``total_cells``
        Number of cells the sweep will run (for the ``done/total`` line).
    ``stream``
        Terminal stream for the single re-rendered status line; ``None``
        disables rendering (the tracker still aggregates and sinks).
    ``sink``
        Optional text file receiving every event as one JSON line.
    ``min_render_interval_s``
        Floor between terminal repaints so a chatty sweep does not spend
        its time writing carriage returns.
    """

    def __init__(
        self,
        total_cells: int = 0,
        stream: Optional[TextIO] = None,
        sink: Optional[TextIO] = None,
        min_render_interval_s: float = 0.1,
        clock=monotonic,
    ) -> None:
        self.total_cells = total_cells
        self.stream = stream
        self.sink = sink
        self.min_render_interval_s = min_render_interval_s
        self.clock = clock
        self.cells_done = 0
        self.cells_failed = 0
        self.cells_quarantined = 0
        self.events_seen = 0
        self._running: Dict[int, Dict[str, Any]] = {}
        self._last_render = 0.0
        self._rendered = False

    # -- event intake -------------------------------------------------------
    def on_event(self, event: Dict[str, Any]) -> None:
        """Fold one heartbeat/cell_done/cell_failed event in."""
        self.events_seen += 1
        etype = event.get("type")
        index = event.get("cell")
        if etype == "heartbeat":
            self._running[index] = event
        elif etype == "cell_done":
            self._running.pop(index, None)
            self.cells_done += 1
        elif etype == "cell_failed":
            self._running.pop(index, None)
            self.cells_done += 1
            self.cells_failed += 1
        elif etype == "cell_quarantined":
            self._running.pop(index, None)
            self.cells_done += 1
            self.cells_quarantined += 1
        if self.sink is not None:
            self.sink.write(json.dumps(event, separators=(",", ":")) + "\n")
        self._maybe_render()

    # -- aggregate views ----------------------------------------------------
    @property
    def running_cells(self) -> int:
        return len(self._running)

    def _running_items(self):
        """Point-in-time copy of the running map. The serve layer's
        status endpoint reads from the event loop while the runner's
        thread folds events in; a copy taken mid-rehash raises
        ``RuntimeError``, so retake it (the map is small)."""
        for _ in range(8):
            try:
                return list(self._running.items())
            except RuntimeError:
                continue
        return []

    def _active(self):
        """Running entries with work left. A cell's final heartbeat
        (``done == total``) lingers in ``_running`` until the parent
        reaps the worker's payload and emits ``cell_done``; counting it
        would inflate the rate with a cell that contributes no remaining
        work (and drive the ETA negative)."""
        return [
            e for _, e in self._running_items()
            if not (e.get("total", 0) > 0
                    and e.get("done", 0) >= e.get("total", 0))
        ]

    def aggregate_rate(self) -> float:
        """Summed accesses/sec over running cells that still have work
        left (a finished-but-unreaped cell's last beat is excluded)."""
        return sum(e.get("accesses_per_s", 0.0) for e in self._active())

    def eta_s(self) -> Optional[float]:
        """Remaining-work estimate from the live rate, clamped at 0;
        ``None`` when the rate is unknown (no heartbeat yet or nothing
        actively running)."""
        active = self._active()
        rate = sum(e.get("accesses_per_s", 0.0) for e in active)
        if rate <= 0.0:
            return None
        remaining_running = sum(
            max(0, e.get("total", 0) - e.get("done", 0)) for e in active
        )
        per_cell = max((e.get("total", 0) for e in active), default=0)
        queued = max(
            0, self.total_cells - self.cells_done - self.running_cells
        )
        return max(0.0, (remaining_running + queued * per_cell) / rate)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe aggregate view (the serve layer's status payload):
        totals, live rate/ETA, and per-cell progress of running cells."""
        eta = self.eta_s()
        return {
            "total_cells": self.total_cells,
            "cells_done": self.cells_done,
            "cells_failed": self.cells_failed,
            "cells_quarantined": self.cells_quarantined,
            "running_cells": self.running_cells,
            "aggregate_rate": self.aggregate_rate(),
            "eta_s": eta,
            "running": [
                {
                    "cell": e.get("cell"),
                    "workload": e.get("workload"),
                    "design": e.get("design"),
                    "attempt": e.get("attempt"),
                    "done": e.get("done", 0),
                    "total": e.get("total", 0),
                    "accesses_per_s": e.get("accesses_per_s", 0.0),
                }
                for _, e in sorted(self._running_items(), key=lambda kv: str(kv[0]))
            ],
        }

    def status_line(self) -> str:
        rate = self.aggregate_rate()
        eta = self.eta_s()
        parts = [
            f"cells {self.cells_done}/{self.total_cells}",
            f"{self.running_cells} running",
            f"{rate / 1e3:.1f}k acc/s",
            f"eta {eta:.1f}s" if eta is not None else "eta ?",
        ]
        if self.cells_failed:
            parts.append(f"{self.cells_failed} FAILED")
        if self.cells_quarantined:
            parts.append(f"{self.cells_quarantined} quarantined")
        return " | ".join(parts)

    # -- rendering ----------------------------------------------------------
    def _maybe_render(self) -> None:
        if self.stream is None:
            return
        now = self.clock()
        if now - self._last_render < self.min_render_interval_s:
            return
        self._last_render = now
        self.stream.write("\r\x1b[K" + self.status_line())
        self.stream.flush()
        self._rendered = True

    def finish(self) -> None:
        """Final repaint plus newline; flush and detach the sink."""
        if self.stream is not None:
            self.stream.write("\r\x1b[K" + self.status_line() + "\n")
            self.stream.flush()
        if self.sink is not None:
            self.sink.flush()
            self.sink = None


def make_cli_tracker(
    total_cells: int,
    render: bool = False,
    sink: Optional[TextIO] = None,
) -> ProgressTracker:
    """The tracker the CLI wires up for ``--progress``/``--progress-out``."""
    return ProgressTracker(
        total_cells=total_cells,
        stream=sys.stderr if render else None,
        sink=sink,
    )
