"""Hierarchical span tracing for sweep-scale runs.

Where :mod:`repro.obs.tracer` records *point* events inside one
simulation, this module records *intervals* across a whole sweep: an
OpenTelemetry-style tree of spans (``span_id`` / ``parent_id`` /
``name`` / ``attributes`` / timed events) wrapping

``sweep`` → ``cell`` → phase (``plan`` / ``fork`` / ``simulate`` /
``merge`` / ``checkpoint``),

with worker-side spans generated inside the fork pool and re-parented
(:meth:`SpanTracer.adopt`) under the parent's cell span when the
payload comes back.

The same design rules as the event tracer apply:

1. **Zero cost when disabled.** Hook sites guard on
   ``spans.enabled`` against :data:`NULL_SPANS`; a disabled run never
   takes a timestamp or builds a span.
2. **Plain dict transport.** :meth:`Span.to_dict` /
   :meth:`SpanTracer.adopt` move spans across process boundaries as
   JSON-compatible dicts — the same pickle-free discipline the matrix
   runner uses for :class:`~repro.sim.results.SimResult`.
3. **Wall-clock timestamps, monotonic durations.** Span boundaries are
   ``time.time()`` seconds so spans from forked workers align with the
   parent's timeline without cross-process clock translation — but a
   wall clock can step (NTP slew, VM migration), which used to yield
   negative durations. Each span therefore also records ``duration_s``
   measured on a monotonic clock; the wall timestamps remain for
   display and alignment only.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter as _mono
from time import time as _wall
from typing import Any, Dict, Iterator, List, Optional, Sequence


class NullSpanTracer:
    """Disabled span tracer: ``enabled`` False, every call a no-op."""

    enabled = False

    def start(self, name: str, parent: Optional["Span"] = None,
              **attributes: Any) -> None:
        return None

    def end(self, span: Optional["Span"], **attributes: Any) -> None:
        pass

    def event(self, span: Optional["Span"], name: str, **fields: Any) -> None:
        pass

    @contextmanager
    def span(self, name: str, parent: Optional["Span"] = None,
             **attributes: Any) -> Iterator[None]:
        yield None

    def adopt(self, payload: Sequence[Dict[str, Any]],
              parent: Optional["Span"] = None) -> None:
        pass

    def export(self) -> List[Dict[str, Any]]:
        return []

    def __len__(self) -> int:
        return 0


#: Shared no-op span tracer; hook sites default to it.
NULL_SPANS = NullSpanTracer()


@dataclass
class Span:
    """One timed interval in the sweep tree.

    ``start_s``/``end_s`` are wall-clock (``time.time()``) seconds for
    cross-process timeline alignment; ``end_s`` is ``None`` while the
    span is open. ``duration_s`` is measured on a monotonic clock at
    :meth:`SpanTracer.end` time, so a wall-clock step between start and
    end cannot produce a negative (or inflated) duration. ``events``
    are point annotations (``{"t": unix_s, "name": ..., ...fields}``) —
    the resilience layer records requeues, resumes and checkpoint
    writes this way instead of inventing new top-level record types.
    """

    span_id: str
    parent_id: Optional[str]
    name: str
    start_s: float
    end_s: Optional[float] = None
    duration_s: Optional[float] = None
    attributes: Dict[str, Any] = field(default_factory=dict)
    events: List[Dict[str, Any]] = field(default_factory=list)
    #: Monotonic reading taken at :meth:`SpanTracer.start`; process-local
    #: (meaningless across workers), so it never travels in transport
    #: dicts and is excluded from equality.
    mono_start: Optional[float] = field(default=None, repr=False, compare=False)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
            "attributes": dict(self.attributes),
            "events": list(self.events),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Span":
        duration = payload.get("duration_s")
        if duration is None and payload.get("end_s") is not None:
            # Pre-monotonic payloads: wall-clock difference is the best
            # reconstruction available.
            duration = payload["end_s"] - payload["start_s"]
        return cls(
            span_id=payload["span_id"],
            parent_id=payload.get("parent_id"),
            name=payload["name"],
            start_s=payload["start_s"],
            end_s=payload.get("end_s"),
            duration_s=duration,
            attributes=dict(payload.get("attributes", {})),
            events=list(payload.get("events", [])),
        )


class SpanTracer:
    """Records a tree of spans with deterministic, origin-prefixed ids.

    ``origin`` namespaces span ids (e.g. ``"c7"`` for the worker running
    cell 7) so ids minted in forked workers never collide with the
    parent's when adopted. Ids are counter-based — ``sweep-0001`` — and
    therefore reproducible run to run; only timestamps vary.
    """

    enabled = True

    def __init__(self, origin: str = "", clock=_wall) -> None:
        self.origin = origin
        self.clock = clock
        self.finished: List[Span] = []
        self._open = 0
        self._seq = 0

    # -- lifecycle ----------------------------------------------------------
    def _next_id(self) -> str:
        self._seq += 1
        return f"{self.origin}-{self._seq:04d}" if self.origin else f"{self._seq:04d}"

    def start(self, name: str, parent: Optional[Span] = None,
              **attributes: Any) -> Span:
        """Open a span; ``parent`` may be a :class:`Span` or ``None``."""
        span = Span(
            span_id=self._next_id(),
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            start_s=self.clock(),
            attributes=dict(attributes),
            mono_start=_mono(),
        )
        self._open += 1
        return span

    def end(self, span: Optional[Span], **attributes: Any) -> None:
        """Close a span, folding any final attributes in.

        The wall clock stamps ``end_s`` for display; the duration comes
        from the monotonic clock so it stays non-negative even if the
        wall clock stepped mid-span.
        """
        if span is None or span.end_s is not None:
            return
        span.end_s = self.clock()
        if span.mono_start is not None:
            span.duration_s = _mono() - span.mono_start
        else:  # adopted/reconstructed span closed locally
            span.duration_s = span.end_s - span.start_s
        if attributes:
            span.attributes.update(attributes)
        self._open -= 1
        self.finished.append(span)

    def event(self, span: Optional[Span], name: str, **fields: Any) -> None:
        """Attach a timed point annotation to a span (open or closed)."""
        if span is None:
            return
        record: Dict[str, Any] = {"t": self.clock(), "name": name}
        record.update(fields)
        span.events.append(record)

    @contextmanager
    def span(self, name: str, parent: Optional[Span] = None,
             **attributes: Any) -> Iterator[Span]:
        """Context-manager form; exceptions mark the span ``error``."""
        sp = self.start(name, parent=parent, **attributes)
        try:
            yield sp
        except BaseException as err:
            sp.attributes["error"] = f"{type(err).__name__}: {err}"
            raise
        finally:
            self.end(sp)

    # -- cross-process ------------------------------------------------------
    def adopt(self, payload: Sequence[Dict[str, Any]],
              parent: Optional[Span] = None) -> None:
        """Fold spans exported by another tracer (a worker) into this one.

        Root spans of the payload (``parent_id`` ``None``) are
        re-parented under ``parent`` so the worker's subtree hangs off
        the parent-side cell span.
        """
        for item in payload:
            span = Span.from_dict(item)
            if span.parent_id is None and parent is not None:
                span.parent_id = parent.span_id
            self.finished.append(span)

    # -- inspection / persistence -------------------------------------------
    def __len__(self) -> int:
        return len(self.finished)

    @property
    def open_spans(self) -> int:
        return self._open

    def export(self) -> List[Dict[str, Any]]:
        """Finished spans as JSON-compatible dicts (transport form)."""
        return [span.to_dict() for span in self.finished]

    def dump_jsonl(self, path: str) -> int:
        """Write finished spans to ``path`` as JSON lines; returns count."""
        with open(path, "w", encoding="utf-8") as fh:
            for span in self.finished:
                fh.write(json.dumps(span.to_dict(), separators=(",", ":")) + "\n")
        return len(self.finished)

    def format_tree(self) -> str:
        """Indented sweep→cell→phase rendering for terminal output."""
        return format_span_tree(self.export())


def load_spans(path: str) -> List[Dict[str, Any]]:
    """Read a span JSONL file back into a list of span dicts.

    Malformed lines raise :class:`~repro.common.errors.ConfigurationError`
    with the offending line number, mirroring
    :func:`repro.obs.tracer.load_jsonl`.
    """
    from repro.common.errors import ConfigurationError

    spans: List[Dict[str, Any]] = []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    item = json.loads(line)
                except json.JSONDecodeError as err:
                    raise ConfigurationError(
                        f"span file {path!r} is corrupt at line {lineno}: {err}"
                    ) from err
                if not isinstance(item, dict) or "span_id" not in item:
                    raise ConfigurationError(
                        f"span file {path!r} line {lineno} is not a span object"
                    )
                spans.append(item)
    except OSError as err:
        raise ConfigurationError(f"cannot read span file {path!r}: {err}") from err
    return spans


def format_span_tree(spans: Sequence[Dict[str, Any]]) -> str:
    """Render span dicts as an indented tree ordered by start time.

    Orphans (spans whose parent is absent, e.g. a truncated export) are
    promoted to roots rather than dropped.
    """
    by_id = {span["span_id"]: span for span in spans}
    children: Dict[Optional[str], List[Dict[str, Any]]] = {}
    for span in spans:
        parent = span.get("parent_id")
        if parent is not None and parent not in by_id:
            parent = None
        children.setdefault(parent, []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda s: (s["start_s"], s["span_id"]))

    lines: List[str] = []

    def _walk(span: Dict[str, Any], depth: int) -> None:
        end = span.get("end_s")
        duration = span.get("duration_s")
        if duration is None and end is not None:
            duration = end - span["start_s"]
        timing = f"{duration * 1e3:.1f}ms" if duration is not None else "open"
        attrs = span.get("attributes") or {}
        summary = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
        events = len(span.get("events") or ())
        suffix = f" [{events} event(s)]" if events else ""
        lines.append(
            f"{'  ' * depth}{span['name']} ({timing})"
            + (f" {summary}" if summary else "") + suffix
        )
        for child in children.get(span["span_id"], ()):
            _walk(child, depth + 1)

    for root in children.get(None, ()):
        _walk(root, 0)
    return "\n".join(lines)
