"""Cross-shard aggregation of :class:`~repro.obs.metrics.MetricsRegistry`.

The matrix runner's workers each build a private registry (live
histograms plus counter snapshots via
:func:`~repro.obs.collect_run_metrics`) and ship it back as the plain
``to_json()`` snapshot. This module folds those snapshots into one
parent registry:

* **counters** gain a ``shard`` label dimension, so the merged registry
  preserves per-cell attribution while ``sum_over_label`` recovers the
  exact serial totals (bit-identical — counter folding is integer
  addition in the same order-independent form ``CounterGroup.merge``
  uses);
* **histograms** fold element-wise into one global histogram (bucket
  bounds must match — they come from the same code, so a mismatch means
  mixed versions and raises);
* **time series** keep each shard's trajectory intact under a
  ``<name>:<shard>`` metric name (points from different cells are not
  interleavable — each series has its own tick domain).

The merged registry exports through the existing Prometheus/JSON paths
unchanged.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Tuple

from repro.obs.metrics import LabeledCounter, MetricsRegistry

#: Label added to every counter folded in from a shard snapshot.
SHARD_LABEL = "shard"


def merge_snapshot(
    registry: MetricsRegistry,
    snapshot: Mapping[str, Any],
    shard: Optional[str] = None,
) -> MetricsRegistry:
    """Fold one ``MetricsRegistry.to_json()`` snapshot into ``registry``.

    ``shard`` labels the origin (typically the cell's plan index);
    ``None`` merges without the extra dimension (straight accumulation).
    """
    for name, metric in snapshot.items():
        kind = metric.get("kind")
        if kind == "counter":
            _merge_counter(registry, name, metric, shard)
        elif kind == "histogram":
            _merge_histogram(registry, name, metric)
        elif kind == "series":
            _merge_series(registry, name, metric, shard)
        else:
            raise ValueError(
                f"snapshot metric {name!r} has unknown kind {kind!r}"
            )
    return registry


def _merge_counter(
    registry: MetricsRegistry, name: str, metric: Mapping[str, Any],
    shard: Optional[str],
) -> None:
    base_labels = tuple(metric.get("labels", ()))
    labels = ((SHARD_LABEL, *base_labels) if shard is not None else base_labels)
    counter = registry.counter(name, help=metric.get("help", ""), labels=labels)
    for entry in metric.get("values", ()):
        label_values = dict(entry["labels"])
        if shard is not None:
            label_values[SHARD_LABEL] = shard
        counter.inc(entry["value"], **label_values)


def _merge_histogram(
    registry: MetricsRegistry, name: str, metric: Mapping[str, Any]
) -> None:
    buckets = tuple(metric.get("buckets", ()))
    histogram = registry.histogram(
        name, help=metric.get("help", ""), buckets=buckets
    )
    if histogram.bounds != tuple(float(b) for b in buckets):
        raise ValueError(
            f"histogram {name!r} bucket bounds differ across shards: "
            f"{histogram.bounds} vs {buckets}"
        )
    counts = metric.get("counts", ())
    for i, count in enumerate(counts):
        histogram.counts[i] += count
    histogram.total += metric.get("count", 0)
    histogram.sum += metric.get("sum", 0.0)
    for bound, reducer in (("min", min), ("max", max)):
        value = metric.get(bound)
        if value is None:
            continue
        current = getattr(histogram, bound)
        setattr(histogram, bound,
                value if current is None else reducer(current, value))


def _merge_series(
    registry: MetricsRegistry, name: str, metric: Mapping[str, Any],
    shard: Optional[str],
) -> None:
    target = f"{name}:{shard}" if shard is not None else name
    series = registry.series(
        target, help=metric.get("help", ""),
        every=max(1, int(metric.get("every", 1))),
    )
    points = [(int(t), float(v)) for t, v in metric.get("points", ())]
    if shard is not None or not series.points:
        series.points.extend(points)
    else:
        series.points = sorted(set(series.points) | set(points))
    if points:
        series.ticks = max(series.ticks, points[-1][0])


def aggregate_shard_snapshots(
    snapshots: Mapping[Any, Mapping[str, Any]],
    registry: Optional[MetricsRegistry] = None,
) -> MetricsRegistry:
    """Merge many shard snapshots (keyed by shard id) into one registry."""
    registry = registry if registry is not None else MetricsRegistry()
    for shard, snapshot in sorted(snapshots.items(), key=lambda kv: str(kv[0])):
        merge_snapshot(registry, snapshot, shard=str(shard))
    return registry


def sum_over_label(
    counter: LabeledCounter, label: str = SHARD_LABEL
) -> Dict[Tuple[str, ...], float]:
    """Collapse one label dimension of a counter by summation.

    Returns ``{remaining-label-values-tuple: total}`` — with
    ``label="shard"`` this recovers exactly what a single serial
    registry would hold, which the cross-shard equivalence tests assert
    bit for bit.
    """
    if label not in counter.label_names:
        raise ValueError(
            f"counter {counter.name!r} has no label {label!r} "
            f"(labels: {counter.label_names})"
        )
    keep = [i for i, name in enumerate(counter.label_names) if name != label]
    totals: Dict[Tuple[str, ...], float] = {}
    for labels, value in counter.series():
        key = tuple(labels[counter.label_names[i]] for i in keep)
        totals[key] = totals.get(key, 0) + value
    return totals
